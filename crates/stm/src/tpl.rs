//! A pessimistic strict two-phase-locking TM — the *rigorous scheduling*
//! reference point of Section 3.6.
//!
//! Readers take shared locks, writers take exclusive locks, and every lock
//! is held until after the commit/abort event — the discipline of *rigorous
//! scheduling* in the sense of Breitbart et al. (the paper's reference \[4\]).
//! The paper's §3.6 argument is that rigorousness is *sufficient but too
//! strong*: this TM forcefully serializes the overlapping blind writers that
//! optimistic TMs (the commit-time validator, and — serially — TL2) commit.
//! Having it executable lets the criteria lattice be demonstrated on real
//! executions, and gives the throughput benchmark the classical pessimistic
//! baseline.
//!
//! **Rigorousness vs. non-blocking — a measured caveat** (test
//! `tests/rigorous_tm.rs`): conflict wounds (below) repair a victim's lock
//! *before* the victim's abort event is recorded (the model has no way to
//! deliver an abort to a transaction with no pending invocation), so
//! wounding executions are opaque but fail *literal* history-level
//! rigorousness; wound-free executions are rigorous. Literal rigorousness
//! in every history requires conflicting requesters to block, which no
//! non-blocking TM can do — a sharp form of the paper's "too strong"
//! verdict on §3.6.
//!
//! **Non-blocking conflict resolution.** A textbook 2PL blocks on lock
//! conflicts, which would deadlock the single-OS-thread interleaving
//! explorer (`tm-harness::sched`). Instead, conflicts are resolved by
//! *wounding*: the older transaction (smaller identifier) forcibly aborts
//! the younger one by CASing its status word and repairs the lock state
//! itself (restoring the pre-image of a wounded writer); a younger
//! transaction that meets an older lock holder aborts itself ("dies").
//! The globally oldest live transaction therefore never waits and never
//! aborts, so the scheme is deadlock- and livelock-free, and every forceful
//! abort happens at a conflict with a *live* transaction — the TM is
//! progressive in the §6.1 sense.
//!
//! Updates are in-place with per-object pre-images (single-version); reads
//! register the reader in the object's lock word (visible reads). Per-object
//! lock state is one logical base object — a mutex-protected record accessed
//! in O(1) (plus O(concurrent readers) wound scans, which is bounded by the
//! thread count and independent of `k`). Theorem 3 does not apply: the
//! visible-reads hypothesis fails, and indeed every operation costs O(1)
//! steps in `k`.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::api::{Aborted, Stm, StmProperties, Tx, TxResult};
use crate::base::{status, Meter, OpKind, StepReport, TxDesc};
use crate::config::{RetryPolicy, StmConfig};
use crate::recorder::Recorder;
use crate::trace_cells::{AccessKind, CellId, StepProbe};
use tm_model::TxId;

/// Per-object lock word: current value, pre-image while write-locked, and
/// the lock holders. Guarded by one mutex = one base shared object.
#[derive(Debug, Default)]
struct TplCell {
    value: i64,
    /// Pre-image, meaningful only while `writer` is `Some`.
    saved: i64,
    writer: Option<Arc<TxDesc>>,
    readers: Vec<Arc<TxDesc>>,
}

impl TplCell {
    /// Drops lock entries of completed transactions: a committed writer's
    /// value stays (it is the committed state), an aborted writer's
    /// pre-image is restored. Each status inspection is one step.
    fn clean(&mut self, m: &mut Meter) {
        if let Some(w) = &self.writer {
            match m.load_u8(w.status_cell(), &w.status) {
                status::ACTIVE => {}
                status::COMMITTED => self.writer = None,
                _ => {
                    self.value = self.saved;
                    self.writer = None;
                }
            }
        }
        self.readers.retain(|r| {
            m.step();
            r.status_now() == status::ACTIVE
        });
    }
}

/// The strict two-phase-locking TM over `k` registers.
///
/// ```
/// use tm_stm::{TplStm, Stm, Aborted};
///
/// let stm = TplStm::new(1);
/// let mut old = stm.begin(0);
/// old.write(0, 1).unwrap();            // exclusive lock on r0
/// let mut young = stm.begin(1);
/// assert_eq!(young.read(0), Err(Aborted)); // younger dies, never waits
/// old.commit().unwrap();
/// ```
#[derive(Debug)]
pub struct TplStm {
    objs: Vec<Mutex<TplCell>>,
    recorder: Recorder,
    retry: RetryPolicy,
    probe: Option<Arc<dyn StepProbe>>,
}

impl TplStm {
    /// A 2PL TM with `k` registers initialized to 0.
    pub fn new(k: usize) -> Self {
        Self::with_config(&StmConfig::new(k))
    }

    /// A 2PL TM built from an explicit configuration (initial values,
    /// recording, retry policy; conflicts are resolved by seniority, so
    /// neither the clock scheme nor the contention manager is consulted).
    pub fn with_config(cfg: &StmConfig) -> Self {
        TplStm {
            objs: (0..cfg.k())
                .map(|i| {
                    Mutex::new(TplCell {
                        value: cfg.initial(i),
                        ..TplCell::default()
                    })
                })
                .collect(),
            recorder: cfg.build_recorder(),
            retry: cfg.retry_policy(),
            probe: cfg.step_probe(),
        }
    }
}

/// A live 2PL transaction.
pub struct TplTx<'a> {
    stm: &'a TplStm,
    id: TxId,
    desc: Arc<TxDesc>,
    /// Objects whose reader lists contain this transaction.
    read_locked: Vec<usize>,
    /// Objects this transaction write-locked (pre-images live in the cells).
    write_locked: Vec<usize>,
    meter: Meter,
    finished: bool,
}

impl Stm for TplStm {
    fn name(&self) -> &'static str {
        "tpl"
    }

    fn k(&self) -> usize {
        self.objs.len()
    }

    fn begin(&self, _thread: usize) -> Box<dyn Tx + '_> {
        let id = self.recorder.fresh_tx();
        Box::new(TplTx {
            stm: self,
            id,
            desc: Arc::new(TxDesc::new(id.0)),
            read_locked: Vec::new(),
            write_locked: Vec::new(),
            meter: Meter::with_probe(_thread, self.probe.clone()),
            finished: false,
        })
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn properties(&self) -> StmProperties {
        StmProperties {
            progressive: true, // wounds/dies happen only at conflicts with
            // live lock holders
            single_version: true,
            invisible_reads: false, // readers register in the lock word
            opaque_by_design: true, // rigorous ⇒ opaque
            serializable_by_design: true,
        }
    }
}

impl TplTx<'_> {
    /// Is this transaction older (= higher priority) than `other`?
    fn older_than(&self, other: &TxDesc) -> bool {
        self.desc.id < other.id
    }

    /// Resolves a conflict with `holder`: wound it if we are older (the
    /// caller repairs the cell), die otherwise. Returns `Err(Aborted)` on
    /// die — the caller must roll back and finish.
    fn wound_or_die(&mut self, holder: &TxDesc) -> Result<(), Aborted> {
        if self.older_than(holder) {
            // Wound: either we flip it to ABORTED or it already completed;
            // both outcomes let `clean` dispose of the entry.
            let _ = self.meter.cas_u8(
                holder.status_cell(),
                &holder.status,
                status::ACTIVE,
                status::ABORTED,
            );
            Ok(())
        } else {
            Err(Aborted)
        }
    }

    /// Rolls back in-place writes and releases every lock. Safe to call
    /// after a remote wound: only entries still owned are touched.
    fn release_all(&mut self, committed: bool) {
        for &obj in &self.write_locked {
            self.meter
                .touch(CellId::Record(obj as u32), AccessKind::Rmw);
            let mut cell = self.stm.objs[obj].lock();
            let mine = cell.writer.as_ref().is_some_and(|w| w.id == self.desc.id);
            if mine {
                if !committed {
                    cell.value = cell.saved;
                }
                cell.writer = None;
            }
        }
        for &obj in &self.read_locked {
            self.meter
                .touch(CellId::Record(obj as u32), AccessKind::Rmw);
            let mut cell = self.stm.objs[obj].lock();
            cell.readers.retain(|r| r.id != self.desc.id);
        }
        self.write_locked.clear();
        self.read_locked.clear();
    }

    /// Forced-abort epilogue from inside an operation: roll back, release,
    /// record `A`, close the meter.
    fn abort_op(&mut self) -> Aborted {
        self.desc.force_status(status::ABORTED);
        self.release_all(false);
        self.meter.end_op();
        self.finished = true;
        self.stm.recorder.abort(self.id);
        Aborted
    }

    /// True if this transaction was wounded by a peer.
    fn wounded(&mut self) -> bool {
        self.meter
            .load_u8(self.desc.status_cell(), &self.desc.status)
            == status::ABORTED
    }
}

impl Tx for TplTx<'_> {
    fn read(&mut self, obj: usize) -> TxResult<i64> {
        self.stm.recorder.inv_read(self.id, obj);
        self.meter.begin_op(OpKind::Read);
        if self.wounded() {
            return Err(self.abort_op());
        }
        // Lock-word acquisition: reads register in the lock word, so this is
        // an RMW on the object's record.
        self.meter
            .touch(CellId::Record(obj as u32), AccessKind::Rmw);
        let mut cell = self.stm.objs[obj].lock();
        self.meter.begin_atomic();
        cell.clean(&mut self.meter);
        if let Some(w) = cell.writer.clone() {
            if w.id != self.desc.id {
                if self.wound_or_die(&w).is_err() {
                    self.meter.end_atomic();
                    drop(cell);
                    return Err(self.abort_op());
                }
                cell.clean(&mut self.meter); // dispose of the wounded writer
            }
        }
        let v = cell.value;
        let registered = cell.writer.as_ref().is_some_and(|w| w.id == self.desc.id)
            || cell.readers.iter().any(|r| r.id == self.desc.id);
        if !registered {
            cell.readers.push(Arc::clone(&self.desc));
            self.read_locked.push(obj);
        }
        self.meter.end_atomic();
        drop(cell);
        self.meter.end_op();
        self.stm.recorder.ret_read(self.id, obj, v);
        Ok(v)
    }

    fn write(&mut self, obj: usize, v: i64) -> TxResult<()> {
        self.stm.recorder.inv_write(self.id, obj, v);
        self.meter.begin_op(OpKind::Write);
        if self.wounded() {
            return Err(self.abort_op());
        }
        self.meter
            .touch(CellId::Record(obj as u32), AccessKind::Rmw); // lock-word acquisition
        let mut cell = self.stm.objs[obj].lock();
        self.meter.begin_atomic();
        cell.clean(&mut self.meter);
        if let Some(w) = cell.writer.clone() {
            if w.id != self.desc.id {
                if self.wound_or_die(&w).is_err() {
                    self.meter.end_atomic();
                    drop(cell);
                    return Err(self.abort_op());
                }
                cell.clean(&mut self.meter);
            }
        }
        // Exclusive access also requires displacing other readers.
        let mut die = false;
        for r in cell.readers.clone() {
            if r.id == self.desc.id {
                continue;
            }
            if self.wound_or_die(&r).is_err() {
                die = true;
                break;
            }
        }
        if die {
            self.meter.end_atomic();
            drop(cell);
            return Err(self.abort_op());
        }
        cell.clean(&mut self.meter); // drop wounded readers
        if cell.writer.is_none() {
            cell.saved = cell.value;
            cell.writer = Some(Arc::clone(&self.desc));
            self.write_locked.push(obj);
        }
        cell.value = v;
        self.meter.end_atomic();
        drop(cell);
        self.meter.end_op();
        self.stm.recorder.ret_write(self.id, obj);
        Ok(())
    }

    fn commit(mut self: Box<Self>) -> TxResult<()> {
        self.stm.recorder.try_commit(self.id);
        self.meter.begin_op(OpKind::Commit);
        // The commit point: one CAS on the own status word. Failure means a
        // peer wounded us first.
        if !self.meter.cas_u8(
            self.desc.status_cell(),
            &self.desc.status,
            status::ACTIVE,
            status::COMMITTED,
        ) {
            self.release_all(false);
            self.meter.end_op();
            self.finished = true;
            self.stm.recorder.abort(self.id);
            return Err(Aborted);
        }
        self.release_all(true);
        self.meter.end_op();
        self.finished = true;
        self.stm.recorder.commit(self.id);
        Ok(())
    }

    fn abort(mut self: Box<Self>) {
        self.stm.recorder.try_abort(self.id);
        self.desc.force_status(status::ABORTED);
        self.release_all(false);
        self.finished = true;
        self.stm.recorder.abort(self.id);
    }

    fn steps(&self) -> StepReport {
        self.meter.report()
    }

    fn id(&self) -> u32 {
        self.id.0
    }
}

impl Drop for TplTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.stm.recorder.try_abort(self.id);
            self.desc.force_status(status::ABORTED);
            self.release_all(false);
            self.finished = true;
            self.stm.recorder.abort(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_tx;

    #[test]
    fn read_write_commit_roundtrip() {
        let stm = TplStm::new(2);
        let mut tx = stm.begin(0);
        tx.write(0, 9).unwrap();
        assert_eq!(tx.read(0).unwrap(), 9);
        tx.commit().unwrap();
        let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
        assert_eq!(v, 9);
    }

    #[test]
    fn aborted_writer_pre_image_restored() {
        let stm = TplStm::new(1);
        run_tx(&stm, 0, |tx| tx.write(0, 5));
        let mut tx = stm.begin(0);
        tx.write(0, 99).unwrap();
        tx.abort();
        let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
        assert_eq!(v, 5, "in-place write must be rolled back");
    }

    #[test]
    fn older_writer_wounds_younger_reader() {
        let stm = TplStm::new(1);
        let mut old = stm.begin(0); // smaller id = older
        let mut young = stm.begin(1);
        assert_eq!(young.read(0).unwrap(), 0); // young read-locks r0
        old.write(0, 3).unwrap(); // old displaces it
                                  // The young transaction discovers the wound at its next action.
        assert_eq!(young.read(0), Err(Aborted));
        old.commit().unwrap();
    }

    #[test]
    fn younger_dies_on_older_lock() {
        let stm = TplStm::new(1);
        let mut old = stm.begin(0);
        old.write(0, 1).unwrap();
        let mut young = stm.begin(1);
        assert_eq!(young.read(0), Err(Aborted), "younger must die, not wait");
        old.commit().unwrap();
        let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
        assert_eq!(v, 1);
    }

    #[test]
    fn wounded_writer_cleaned_by_wounder() {
        let stm = TplStm::new(1);
        run_tx(&stm, 0, |tx| tx.write(0, 7));
        let mut old = stm.begin(0);
        let mut young = stm.begin(1);
        // Make `old` older than `young`… begin order already guarantees it.
        young.write(0, 99).unwrap();
        // Old reader wounds the younger writer and must see the PRE-image.
        assert_eq!(old.read(0).unwrap(), 7, "wounder repairs the cell");
        old.commit().unwrap();
        assert_eq!(young.commit(), Err(Aborted));
    }

    #[test]
    fn shared_read_locks_coexist() {
        let stm = TplStm::new(1);
        let mut a = stm.begin(0);
        let mut b = stm.begin(1);
        assert_eq!(a.read(0).unwrap(), 0);
        assert_eq!(b.read(0).unwrap(), 0);
        a.commit().unwrap();
        b.commit().unwrap();
    }

    #[test]
    fn blind_writers_serialize_not_interleave() {
        // §3.6: under rigorous scheduling, concurrent blind writers cannot
        // both hold locks — the younger dies or is wounded.
        let stm = TplStm::new(2);
        let mut old = stm.begin(0);
        let mut young = stm.begin(1);
        old.write(0, 1).unwrap();
        assert_eq!(young.write(0, 2), Err(Aborted));
        old.write(1, 1).unwrap();
        old.commit().unwrap();
        // A retry (fresh, now-unconflicted transaction) succeeds.
        run_tx(&stm, 1, |tx| {
            tx.write(0, 2)?;
            tx.write(1, 2)
        });
        let ((x, y), _) = run_tx(&stm, 0, |tx| Ok((tx.read(0)?, tx.read(1)?)));
        assert_eq!((x, y), (2, 2));
    }

    #[test]
    fn reads_cost_constant_steps_in_k() {
        for k in [4usize, 64, 512] {
            let stm = TplStm::new(k);
            let mut tx = stm.begin(0);
            for i in 0..k {
                tx.read(i).unwrap();
            }
            let max = tx.steps().max_of(OpKind::Read);
            assert!(max <= 4, "k={k}: read cost must be O(1), got {max}");
            tx.commit().unwrap();
        }
    }

    #[test]
    fn oldest_transaction_always_wins() {
        // Progress: whatever the interleaving of operations, the oldest
        // live transaction is never aborted.
        let stm = TplStm::new(2);
        let mut old = stm.begin(0);
        for round in 0..5 {
            let mut young = stm.begin(1);
            let _ = young.write(round % 2, 10 + round as i64);
            old.write(round % 2, round as i64).unwrap();
            let _ = young.commit(); // may fail; old must be unaffected
        }
        old.commit().unwrap();
    }

    #[test]
    fn recorded_history_well_formed_and_statuses_match() {
        let stm = TplStm::new(2);
        run_tx(&stm, 0, |tx| tx.write(0, 1));
        let mut t = stm.begin(0);
        let _ = t.read(0).unwrap();
        t.abort();
        let h = stm.recorder().history();
        assert!(tm_model::is_well_formed(&h), "{h}");
        assert_eq!(h.committed_txs().len(), 1);
    }
}
