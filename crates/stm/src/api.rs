//! The common STM interface.
//!
//! Every TM implementation in this crate operates on a fixed universe of `k`
//! integer registers (`Obj = {r0, …, r(k-1)}`, the paper's model of
//! Section 6), records its transactional events into a [`crate::recorder`]
//! history, and meters its *steps* — accesses to base shared objects — per
//! operation, which is exactly the quantity bounded by Theorem 3.

use crate::base::StepReport;
use crate::recorder::Recorder;

/// The error returned when a transaction is (or must be) aborted.
///
/// Mirrors the model: the TM answered some invocation with `A_i`. The caller
/// should retry with a fresh transaction (a retry is a *new* transaction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Aborted;

impl std::fmt::Display for Aborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transaction aborted")
    }
}

impl std::error::Error for Aborted {}

/// Result type of transactional operations.
pub type TxResult<T> = Result<T, Aborted>;

/// Static properties of a TM implementation — the three hypotheses of
/// Theorem 3 plus the intended correctness level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StmProperties {
    /// Forcefully aborts a transaction only upon a conflict with a
    /// concurrent transaction live at the time of the conflict.
    pub progressive: bool,
    /// Stores only the latest committed state of each object.
    pub single_version: bool,
    /// Read-only operations modify no base shared object.
    pub invisible_reads: bool,
    /// The implementation is designed to ensure opacity. `false` for the
    /// commit-time-validation TM (the Section 6 counterexample) and the
    /// snapshot-isolation TM (the SI-STM trade-off named in Section 1).
    pub opaque_by_design: bool,
    /// Committed transactions are guaranteed serializable. `false` only for
    /// the snapshot-isolation TM, whose write-skew anomaly commits outcomes
    /// no sequential execution allows. (The commit-time-validation TM keeps
    /// committed transactions serializable — it fails opacity only on the
    /// states observed by *live* transactions.)
    pub serializable_by_design: bool,
}

/// A live transaction handle.
///
/// Handles are single-threaded (each transaction is executed by one process,
/// Section 6.1); the containing [`Stm`] is shared across threads.
pub trait Tx {
    /// Reads register `obj`, or aborts the transaction.
    fn read(&mut self, obj: usize) -> TxResult<i64>;

    /// Writes `v` to register `obj`, or aborts the transaction.
    fn write(&mut self, obj: usize, v: i64) -> TxResult<()>;

    /// Requests commit (`tryC` … `C`/`A`).
    fn commit(self: Box<Self>) -> TxResult<()>;

    /// Voluntarily aborts (`tryA` … `A`).
    fn abort(self: Box<Self>);

    /// The per-operation step report accumulated so far.
    fn steps(&self) -> StepReport;

    /// The model-level transaction identifier.
    fn id(&self) -> u32;
}

/// A software transactional memory over `k` integer registers.
pub trait Stm: Send + Sync {
    /// A short name ("tl2", "dstm", …) used in benchmark tables.
    fn name(&self) -> &'static str;

    /// The number of shared objects `k = |Obj|`.
    fn k(&self) -> usize;

    /// Starts a new transaction on behalf of `thread`.
    fn begin(&self, thread: usize) -> Box<dyn Tx + '_>;

    /// The history recorder (shared by all transactions of this TM).
    fn recorder(&self) -> &Recorder;

    /// The design-space position of this implementation.
    fn properties(&self) -> StmProperties;

    /// True if transactions of this TM *block* other transactions for their
    /// whole lifetime (the global-lock TM). Blocking TMs cannot be driven
    /// through interleaved schedules on a single OS thread.
    fn blocking(&self) -> bool {
        false
    }
}

/// Statistics from [`run_tx`] retry loops.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Commits (always 1 on success).
    pub commits: u64,
    /// Aborted attempts before the successful one.
    pub aborts: u64,
}

/// Runs `body` as a transaction, retrying on abort (each retry is a fresh
/// transaction with a fresh identifier, as the model requires).
///
/// `body` returning `Err(Aborted)` signals that the transaction was aborted
/// mid-flight by an operation; the loop retries. Panics after `max_retries`
/// to surface livelock in tests and benchmarks.
pub fn run_tx<R>(
    stm: &dyn Stm,
    thread: usize,
    mut body: impl FnMut(&mut dyn Tx) -> TxResult<R>,
) -> (R, RunStats) {
    let max_retries = 1_000_000;
    let mut stats = RunStats::default();
    for _ in 0..max_retries {
        let mut tx = stm.begin(thread);
        match body(tx.as_mut()) {
            Ok(result) => match tx.commit() {
                Ok(()) => {
                    stats.commits += 1;
                    return (result, stats);
                }
                Err(Aborted) => {
                    stats.aborts += 1;
                }
            },
            Err(Aborted) => {
                stats.aborts += 1;
            }
        }
    }
    panic!("transaction did not commit after {max_retries} retries (livelock?)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aborted_displays() {
        assert_eq!(Aborted.to_string(), "transaction aborted");
    }

    #[test]
    fn properties_struct_is_plain_data() {
        let p = StmProperties {
            progressive: true,
            single_version: true,
            invisible_reads: true,
            opaque_by_design: true,
            serializable_by_design: true,
        };
        assert_eq!(p, p);
    }
}
