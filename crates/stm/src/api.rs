//! The common STM interface.
//!
//! Every TM implementation in this crate operates on a fixed universe of `k`
//! integer registers (`Obj = {r0, …, r(k-1)}`, the paper's model of
//! Section 6), records its transactional events into a [`crate::recorder`]
//! history, and meters its *steps* — accesses to base shared objects — per
//! operation, which is exactly the quantity bounded by Theorem 3.

use crate::base::StepReport;
use crate::config::RetryPolicy;
use crate::recorder::Recorder;

/// The error returned when a transaction is (or must be) aborted.
///
/// Mirrors the model: the TM answered some invocation with `A_i`. The caller
/// should retry with a fresh transaction (a retry is a *new* transaction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Aborted;

impl std::fmt::Display for Aborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transaction aborted")
    }
}

impl std::error::Error for Aborted {}

/// Result type of transactional operations.
pub type TxResult<T> = Result<T, Aborted>;

/// The typed error [`try_run_tx`] returns when a transaction exhausts its
/// [`RetryPolicy`] without committing — the retry loop's way of surfacing
/// livelock instead of spinning forever (or panicking, as the historical
/// [`run_tx`] still does for test ergonomics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Livelock {
    /// Attempts made (equals the policy's `max_attempts`).
    pub attempts: u64,
}

impl std::fmt::Display for Livelock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transaction did not commit after {} attempts (livelock?)",
            self.attempts
        )
    }
}

impl std::error::Error for Livelock {}

/// Static properties of a TM implementation — the three hypotheses of
/// Theorem 3 plus the intended correctness level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StmProperties {
    /// Forcefully aborts a transaction only upon a conflict with a
    /// concurrent transaction live at the time of the conflict.
    pub progressive: bool,
    /// Stores only the latest committed state of each object.
    pub single_version: bool,
    /// Read-only operations modify no base shared object.
    pub invisible_reads: bool,
    /// The implementation is designed to ensure opacity. `false` for the
    /// commit-time-validation TM (the Section 6 counterexample) and the
    /// snapshot-isolation TM (the SI-STM trade-off named in Section 1).
    pub opaque_by_design: bool,
    /// Committed transactions are guaranteed serializable. `false` only for
    /// the snapshot-isolation TM, whose write-skew anomaly commits outcomes
    /// no sequential execution allows. (The commit-time-validation TM keeps
    /// committed transactions serializable — it fails opacity only on the
    /// states observed by *live* transactions.)
    pub serializable_by_design: bool,
}

/// A live transaction handle.
///
/// Handles are single-threaded (each transaction is executed by one process,
/// Section 6.1); the containing [`Stm`] is shared across threads.
pub trait Tx {
    /// Reads register `obj`, or aborts the transaction.
    fn read(&mut self, obj: usize) -> TxResult<i64>;

    /// Writes `v` to register `obj`, or aborts the transaction.
    fn write(&mut self, obj: usize, v: i64) -> TxResult<()>;

    /// Requests commit (`tryC` … `C`/`A`).
    fn commit(self: Box<Self>) -> TxResult<()>;

    /// Voluntarily aborts (`tryA` … `A`).
    fn abort(self: Box<Self>);

    /// The per-operation step report accumulated so far.
    fn steps(&self) -> StepReport;

    /// The model-level transaction identifier.
    fn id(&self) -> u32;
}

/// A software transactional memory over `k` integer registers.
pub trait Stm: Send + Sync {
    /// A short name ("tl2", "dstm", …) used in benchmark tables.
    fn name(&self) -> &'static str;

    /// The number of shared objects `k = |Obj|`.
    fn k(&self) -> usize;

    /// Starts a new transaction on behalf of `thread`.
    fn begin(&self, thread: usize) -> Box<dyn Tx + '_>;

    /// The history recorder (shared by all transactions of this TM).
    fn recorder(&self) -> &Recorder;

    /// The design-space position of this implementation.
    fn properties(&self) -> StmProperties;

    /// True if transactions of this TM *block* other transactions for their
    /// whole lifetime (the global-lock TM). Blocking TMs cannot be driven
    /// through interleaved schedules on a single OS thread.
    fn blocking(&self) -> bool {
        false
    }

    /// The retry policy [`run_tx`]/[`try_run_tx`] apply to transactions of
    /// this TM. TMs built through [`crate::StmConfig`] report the
    /// configured policy; the default is the historical million-attempt
    /// cap with no backoff.
    fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy::default()
    }
}

/// Statistics from [`run_tx`] retry loops.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Commits (always 1 on success).
    pub commits: u64,
    /// Aborted attempts before the successful one.
    pub aborts: u64,
}

/// Runs `body` as a transaction under an explicit [`RetryPolicy`],
/// retrying on abort (each retry is a fresh transaction with a fresh
/// identifier, as the model requires).
///
/// `body` returning `Err(Aborted)` signals that the transaction was aborted
/// mid-flight by an operation; the loop retries, applying the policy's
/// backoff between attempts. Returns [`Livelock`] once the attempt cap is
/// exhausted — the typed alternative to [`run_tx`]'s panic.
pub fn try_run_tx_with<R>(
    stm: &dyn Stm,
    thread: usize,
    policy: RetryPolicy,
    mut body: impl FnMut(&mut dyn Tx) -> TxResult<R>,
) -> Result<(R, RunStats), Livelock> {
    let mut stats = RunStats::default();
    for attempt in 0..policy.max_attempts {
        if attempt > 0 {
            if let Some(backoff) = policy.backoff {
                backoff.wait(attempt - 1);
            }
        }
        let mut tx = stm.begin(thread);
        match body(tx.as_mut()) {
            Ok(result) => match tx.commit() {
                Ok(()) => {
                    stats.commits += 1;
                    return Ok((result, stats));
                }
                Err(Aborted) => {
                    stats.aborts += 1;
                }
            },
            Err(Aborted) => {
                stats.aborts += 1;
            }
        }
    }
    Err(Livelock {
        attempts: policy.max_attempts,
    })
}

/// [`try_run_tx_with`] under the TM's own configured policy
/// ([`Stm::retry_policy`]).
pub fn try_run_tx<R>(
    stm: &dyn Stm,
    thread: usize,
    body: impl FnMut(&mut dyn Tx) -> TxResult<R>,
) -> Result<(R, RunStats), Livelock> {
    try_run_tx_with(stm, thread, stm.retry_policy(), body)
}

/// Runs `body` as a transaction, retrying on abort under the TM's
/// configured [`RetryPolicy`].
///
/// # Panics
/// Panics when the policy's attempt cap is exhausted, to surface livelock
/// loudly in tests and benchmarks; use [`try_run_tx`] for the typed
/// [`Livelock`] error instead.
pub fn run_tx<R>(
    stm: &dyn Stm,
    thread: usize,
    body: impl FnMut(&mut dyn Tx) -> TxResult<R>,
) -> (R, RunStats) {
    match try_run_tx(stm, thread, body) {
        Ok(out) => out,
        Err(Livelock { attempts }) => {
            panic!("transaction did not commit after {attempts} retries (livelock?)")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aborted_displays() {
        assert_eq!(Aborted.to_string(), "transaction aborted");
    }

    #[test]
    fn try_run_tx_reports_livelock_instead_of_panicking() {
        let stm = crate::tl2::Tl2Stm::new(1);
        let out: Result<((), RunStats), Livelock> =
            try_run_tx_with(&stm, 0, RetryPolicy::bounded(3), |_tx| Err(Aborted));
        assert_eq!(out, Err(Livelock { attempts: 3 }));
        assert_eq!(
            Livelock { attempts: 3 }.to_string(),
            "transaction did not commit after 3 attempts (livelock?)"
        );
    }

    #[test]
    fn try_run_tx_succeeds_and_counts_aborts() {
        let stm = crate::tl2::Tl2Stm::new(1);
        let mut failures = 2;
        let (v, stats) =
            try_run_tx_with(&stm, 0, RetryPolicy::bounded(10).with_backoff(1, 4), |tx| {
                if failures > 0 {
                    failures -= 1;
                    return Err(Aborted);
                }
                tx.write(0, 5)?;
                tx.read(0)
            })
            .expect("commits within the cap");
        assert_eq!(v, 5);
        assert_eq!(
            stats,
            RunStats {
                commits: 1,
                aborts: 2
            }
        );
    }

    #[test]
    fn configured_retry_policy_reaches_try_run_tx() {
        use crate::config::StmConfig;
        let stm =
            crate::tl2::Tl2Stm::with_config(&StmConfig::new(1).retry(RetryPolicy::bounded(2)));
        assert_eq!(stm.retry_policy(), RetryPolicy::bounded(2));
        let out: Result<((), RunStats), Livelock> = try_run_tx(&stm, 0, |_tx| Err(Aborted));
        assert_eq!(out, Err(Livelock { attempts: 2 }));
    }

    #[test]
    fn properties_struct_is_plain_data() {
        let p = StmProperties {
            progressive: true,
            single_version: true,
            invisible_reads: true,
            opaque_by_design: true,
            serializable_by_design: true,
        };
        assert_eq!(p, p);
    }
}
