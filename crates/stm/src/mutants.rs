//! Deliberately broken TM protocols — mutation testing with the opacity
//! checker as the oracle.
//!
//! The paper's core motivation is that "without such formalization, it is
//! impossible to check the correctness of these implementations". This
//! module closes the loop experimentally: it plants realistic protocol bugs
//! (each one a mutation a TM implementor could plausibly ship) into a
//! TL2-style protocol, and the test-suite demonstrates that the
//! Definition-1 checker over recorded histories *finds every one of them* —
//! while the faithful baseline stays clean. During development of this
//! repository the same harness caught two unplanned bugs (see DESIGN.md);
//! the mutants make that capability a reproducible experiment.
//!
//! | mutation | the bug | violated contract | oracle that catches it |
//! |----------|---------|-------------------|------------------------|
//! | [`Mutation::None`] | — | — | none (baseline stays green) |
//! | [`Mutation::SkipReadValidation`] | reads skip the version/lock check | live transactions observe inconsistent states (the §2 hazard) | `is_opaque` = false |
//! | [`Mutation::SkipCommitValidation`] | commit publishes without revalidating versions | lost updates / write cycles commit | `is_serializable` = false |
//!
//! `SkipReadValidation` keeps committed transactions serializable (commit
//! validation is intact) — precisely the gap between serializability and
//! opacity, detectable *only* by an opacity checker. `SkipCommitValidation`
//! is coarser and already breaks the database-classical criterion.

use crate::api::{Aborted, Stm, StmProperties, Tx, TxResult};
use crate::base::{Meter, OpKind, StepReport};
use crate::clock::VersionClock;
use crate::config::{RetryPolicy, StmConfig};
use crate::recorder::Recorder;
use std::sync::atomic::{AtomicI64, AtomicU64};
use tm_model::TxId;

/// The protocol bug planted into [`MutantStm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Faithful TL2-style protocol (the sanity baseline).
    None,
    /// Reads return the current value without the version/lock check:
    /// live transactions can observe inconsistent snapshots. Commit
    /// validation still rejects them, so committed transactions stay
    /// serializable — the history is broken in exactly the way only
    /// opacity detects.
    SkipReadValidation,
    /// Commit acquires its write locks but publishes without any version
    /// validation (neither the write-set version check nor read-set
    /// revalidation): concurrent read-modify-writes lose updates, which is
    /// visible already to the serializability checker (and to semantic
    /// invariants under real threads).
    SkipCommitValidation,
}

impl Mutation {
    /// All mutations, for sweeping tests.
    pub fn all() -> [Mutation; 3] {
        [
            Mutation::None,
            Mutation::SkipReadValidation,
            Mutation::SkipCommitValidation,
        ]
    }

    /// A short name for tables ("mutant-none", …).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "mutant-none",
            Mutation::SkipReadValidation => "mutant-skip-read-validation",
            Mutation::SkipCommitValidation => "mutant-skip-commit-validation",
        }
    }
}

#[inline]
fn version_of(word: u64) -> u64 {
    word >> 1
}

#[inline]
fn is_locked(word: u64) -> bool {
    word & 1 == 1
}

#[inline]
fn locked(word: u64) -> u64 {
    word | 1
}

#[inline]
fn unlocked_at(version: u64) -> u64 {
    version << 1
}

#[derive(Debug)]
struct MutObj {
    /// `version << 1 | locked`.
    lock: AtomicU64,
    value: AtomicI64,
}

/// A TL2-style TM with a planted [`Mutation`].
#[derive(Debug)]
pub struct MutantStm {
    objs: Vec<MutObj>,
    clock: VersionClock,
    recorder: Recorder,
    mutation: Mutation,
    retry: RetryPolicy,
}

impl MutantStm {
    /// A mutant TM over `k` registers with the given planted bug.
    pub fn new(k: usize, mutation: Mutation) -> Self {
        Self::with_config(&StmConfig::new(k), mutation)
    }

    /// A mutant TM built from an explicit configuration (initial values,
    /// recording, retry policy; the clock stays the plain single counter —
    /// the planted bugs are about validation, not timestamps).
    pub fn with_config(cfg: &StmConfig, mutation: Mutation) -> Self {
        MutantStm {
            objs: (0..cfg.k())
                .map(|i| MutObj {
                    lock: AtomicU64::new(0),
                    value: AtomicI64::new(cfg.initial(i)),
                })
                .collect(),
            clock: VersionClock::new(),
            recorder: cfg.build_recorder(),
            mutation,
            retry: cfg.retry_policy(),
        }
    }

    /// The planted mutation.
    pub fn mutation(&self) -> Mutation {
        self.mutation
    }
}

/// A live transaction of the mutant TM.
pub struct MutantTx<'a> {
    stm: &'a MutantStm,
    id: TxId,
    rv: u64,
    reads: Vec<usize>,
    writes: Vec<(usize, i64)>,
    meter: Meter,
    finished: bool,
}

impl Stm for MutantStm {
    fn name(&self) -> &'static str {
        self.mutation.name()
    }

    fn k(&self) -> usize {
        self.objs.len()
    }

    fn begin(&self, _thread: usize) -> Box<dyn Tx + '_> {
        let id = self.recorder.fresh_tx();
        let rv = self.clock.peek();
        Box::new(MutantTx {
            stm: self,
            id,
            rv,
            reads: Vec::new(),
            writes: Vec::new(),
            meter: Meter::new(),
            finished: false,
        })
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn properties(&self) -> StmProperties {
        StmProperties {
            progressive: false,
            single_version: true,
            invisible_reads: true,
            opaque_by_design: self.mutation == Mutation::None,
            serializable_by_design: self.mutation != Mutation::SkipCommitValidation,
        }
    }
}

impl MutantTx<'_> {
    fn write_slot(&mut self, obj: usize) -> Option<&mut (usize, i64)> {
        self.writes.iter_mut().find(|(o, _)| *o == obj)
    }

    fn abort_op(&mut self) -> Aborted {
        self.meter.end_op();
        self.finished = true;
        self.stm.recorder.abort(self.id);
        Aborted
    }

    fn release_locks(&mut self, held: &[(usize, u64)]) {
        for &(obj, old_word) in held {
            self.meter.store_u64(&self.stm.objs[obj].lock, old_word);
        }
    }
}

impl Tx for MutantTx<'_> {
    fn read(&mut self, obj: usize) -> TxResult<i64> {
        self.stm.recorder.inv_read(self.id, obj);
        self.meter.begin_op(OpKind::Read);
        if let Some(&mut (_, v)) = self.write_slot(obj) {
            self.meter.end_op();
            self.stm.recorder.ret_read(self.id, obj, v);
            return Ok(v);
        }
        let o = &self.stm.objs[obj];
        let pre = self.meter.load_u64(&o.lock);
        let v = self.meter.load_i64(&o.value);
        let post = self.meter.load_u64(&o.lock);
        // THE MUTATION POINT: a faithful protocol validates every read.
        if self.stm.mutation != Mutation::SkipReadValidation
            && (pre != post || is_locked(pre) || version_of(pre) > self.rv)
        {
            return Err(self.abort_op());
        }
        self.reads.push(obj);
        self.meter.end_op();
        self.stm.recorder.ret_read(self.id, obj, v);
        Ok(v)
    }

    fn write(&mut self, obj: usize, v: i64) -> TxResult<()> {
        self.stm.recorder.inv_write(self.id, obj, v);
        self.meter.begin_op(OpKind::Write);
        match self.write_slot(obj) {
            Some(slot) => slot.1 = v,
            None => {
                self.writes.push((obj, v));
                self.writes.sort_unstable_by_key(|(o, _)| *o);
            }
        }
        self.meter.end_op();
        self.stm.recorder.ret_write(self.id, obj);
        Ok(())
    }

    fn commit(mut self: Box<Self>) -> TxResult<()> {
        self.stm.recorder.try_commit(self.id);
        self.meter.begin_op(OpKind::Commit);
        let validate = self.stm.mutation != Mutation::SkipCommitValidation;
        if self.writes.is_empty() {
            // Read-only path. Under SkipReadValidation the reads were never
            // checked, so the (intact) commit validation must run here —
            // that is what keeps this mutant's *committed* transactions
            // serializable while its live reads are broken.
            if self.stm.mutation == Mutation::SkipReadValidation {
                for &obj in &self.reads {
                    let word = self.meter.load_u64(&self.stm.objs[obj].lock);
                    if is_locked(word) || version_of(word) > self.rv {
                        self.meter.end_op();
                        self.finished = true;
                        self.stm.recorder.abort(self.id);
                        return Err(Aborted);
                    }
                }
            }
            self.meter.end_op();
            self.finished = true;
            self.stm.recorder.commit(self.id);
            return Ok(());
        }
        // Phase 1: lock the write set (locks are kept even in the mutant —
        // publication stays atomic; only *validation* is mutated away).
        let mut held: Vec<(usize, u64)> = Vec::with_capacity(self.writes.len());
        let writes = std::mem::take(&mut self.writes);
        for &(obj, _) in &writes {
            let o = &self.stm.objs[obj];
            let word = self.meter.load_u64(&o.lock);
            let stale = validate && version_of(word) > self.rv;
            if is_locked(word) || stale || !self.meter.cas_u64(&o.lock, word, locked(word)) {
                self.release_locks(&held);
                self.meter.end_op();
                self.finished = true;
                self.stm.recorder.abort(self.id);
                return Err(Aborted);
            }
            held.push((obj, word));
        }
        let wv = self.stm.clock.tick(&mut self.meter);
        // Phase 3: read-set validation (THE MUTATION POINT for
        // SkipCommitValidation).
        if validate {
            for &obj in &self.reads {
                if held.iter().any(|&(held_obj, _)| held_obj == obj) {
                    continue;
                }
                let word = self.meter.load_u64(&self.stm.objs[obj].lock);
                if is_locked(word) || version_of(word) > self.rv {
                    self.release_locks(&held);
                    self.meter.end_op();
                    self.finished = true;
                    self.stm.recorder.abort(self.id);
                    return Err(Aborted);
                }
            }
        }
        for &(obj, v) in &writes {
            let o = &self.stm.objs[obj];
            self.meter.store_i64(&o.value, v);
            self.meter.store_u64(&o.lock, unlocked_at(wv));
        }
        self.meter.end_op();
        self.finished = true;
        self.stm.recorder.commit(self.id);
        Ok(())
    }

    fn abort(mut self: Box<Self>) {
        self.stm.recorder.try_abort(self.id);
        self.finished = true;
        self.stm.recorder.abort(self.id);
    }

    fn steps(&self) -> StepReport {
        self.meter.report()
    }

    fn id(&self) -> u32 {
        self.id.0
    }
}

impl Drop for MutantTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.stm.recorder.try_abort(self.id);
            self.stm.recorder.abort(self.id);
            self.finished = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_tx;

    #[test]
    fn baseline_mutant_behaves_like_tl2() {
        let stm = MutantStm::new(2, Mutation::None);
        run_tx(&stm, 0, |tx| {
            tx.write(0, 1)?;
            tx.write(1, 2)
        });
        let ((a, b), _) = run_tx(&stm, 0, |tx| Ok((tx.read(0)?, tx.read(1)?)));
        assert_eq!((a, b), (1, 2));
        assert!(stm.properties().opaque_by_design);
    }

    #[test]
    fn skip_read_validation_returns_inconsistent_snapshot() {
        let stm = MutantStm::new(2, Mutation::SkipReadValidation);
        run_tx(&stm, 0, |tx| {
            tx.write(0, 1)?;
            tx.write(1, 1)
        });
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 1);
        run_tx(&stm, 1, |tx| {
            tx.write(0, 2)?;
            tx.write(1, 2)
        });
        // A faithful TL2 aborts here; the mutant serves the fracture.
        assert_eq!(
            t1.read(1).unwrap(),
            2,
            "the mutant must expose the fracture"
        );
        // Commit validation is intact: the poisoned transaction cannot
        // commit (committed transactions stay serializable).
        assert_eq!(t1.commit(), Err(Aborted));
    }

    #[test]
    fn skip_commit_validation_loses_updates_deterministically() {
        let stm = MutantStm::new(1, Mutation::SkipCommitValidation);
        let mut t1 = stm.begin(0);
        let v1 = t1.read(0).unwrap();
        let mut t2 = stm.begin(1);
        let v2 = t2.read(0).unwrap();
        t1.write(0, v1 + 1).unwrap();
        t2.write(0, v2 + 1).unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap(); // a faithful protocol aborts this one
        let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
        assert_eq!(v, 1, "one increment must be lost — that is the bug");
    }

    #[test]
    fn faithful_baseline_refuses_the_lost_update() {
        let stm = MutantStm::new(1, Mutation::None);
        let mut t1 = stm.begin(0);
        let v1 = t1.read(0).unwrap();
        let mut t2 = stm.begin(1);
        let v2 = t2.read(0).unwrap();
        t1.write(0, v1 + 1).unwrap();
        t2.write(0, v2 + 1).unwrap();
        t1.commit().unwrap();
        assert_eq!(t2.commit(), Err(Aborted));
    }

    #[test]
    fn mutation_names_are_distinct() {
        let names: Vec<&str> = Mutation::all().iter().map(|m| m.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn recorded_histories_stay_well_formed_for_every_mutant() {
        for m in Mutation::all() {
            let stm = MutantStm::new(2, m);
            run_tx(&stm, 0, |tx| tx.write(0, 1));
            let mut t = stm.begin(0);
            let _ = t.read(0);
            t.abort();
            let h = stm.recorder().history();
            assert!(tm_model::is_well_formed(&h), "{}: {h}", m.name());
        }
    }
}
