//! Deliberately broken TM protocols — mutation testing with the opacity
//! checker as the oracle.
//!
//! The paper's core motivation is that "without such formalization, it is
//! impossible to check the correctness of these implementations". This
//! module closes the loop experimentally: it plants realistic protocol bugs
//! (each one a mutation a TM implementor could plausibly ship) into a
//! TL2-style protocol, and the test-suite demonstrates that the
//! Definition-1 checker over recorded histories *finds every one of them* —
//! while the faithful baseline stays clean. During development of this
//! repository the same harness caught two unplanned bugs (see DESIGN.md);
//! the mutants make that capability a reproducible experiment.
//!
//! | mutation | the bug | violated contract | oracle that catches it |
//! |----------|---------|-------------------|------------------------|
//! | [`Mutation::None`] | — | — | none (baseline stays green) |
//! | [`Mutation::SkipReadValidation`] | reads skip the version/lock check | live transactions observe inconsistent states (the §2 hazard) | `is_opaque` = false |
//! | [`Mutation::SkipCommitValidation`] | commit publishes without revalidating versions | lost updates / write cycles commit | `is_serializable` = false |
//!
//! `SkipReadValidation` keeps committed transactions serializable (commit
//! validation is intact) — precisely the gap between serializability and
//! opacity, detectable *only* by an opacity checker. `SkipCommitValidation`
//! is coarser and already breaks the database-classical criterion.
//!
//! Two further mutants are *concurrency* bugs: they are invisible to any
//! single-threaded test (every sequential execution is flawless) and exist
//! to give the step-level race analysis (`tm-harness::dpor` / `::race`)
//! something real to convict:
//!
//! | mutation | the bug | who catches it |
//! |----------|---------|----------------|
//! | [`Mutation::DroppedResidue`] | deferred clock drops the adopter's thread residue, so a CAS loser shares its stamp with the winner | `race::check` (duplicate commit timestamps) |
//! | [`Mutation::UnlicensedFastPath`] | TL2's "clock advanced exactly once" fast path ported to the deferred clock by comparing tick *counts*, without the [`GlobalClock::tick_is_exclusive`] license | `dpor::explore` (a non-serializable write skew on 3 transactions) |

use crate::api::{Aborted, Stm, StmProperties, Tx, TxResult};
use crate::base::{Meter, OpKind, StepReport};
use crate::clock::{DeferredClock, GlobalClock, VersionClock};
use crate::config::{RetryPolicy, StmConfig};
use crate::recorder::Recorder;
use crate::trace_cells::{CellId, StepProbe};
use std::sync::atomic::{AtomicI64, AtomicU64};
use std::sync::Arc;
use tm_model::TxId;

/// The protocol bug planted into [`MutantStm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Faithful TL2-style protocol (the sanity baseline).
    None,
    /// Reads return the current value without the version/lock check:
    /// live transactions can observe inconsistent snapshots. Commit
    /// validation still rejects them, so committed transactions stay
    /// serializable — the history is broken in exactly the way only
    /// opacity detects.
    SkipReadValidation,
    /// Commit acquires its write locks but publishes without any version
    /// validation (neither the write-set version check nor read-set
    /// revalidation): concurrent read-modify-writes lose updates, which is
    /// visible already to the serializability checker (and to semantic
    /// invariants under real threads).
    SkipCommitValidation,
    /// The deferred (GV4-style) clock stamps `count << 8` on *both* the
    /// CAS-win and the adopt-on-failure path, dropping the thread residue
    /// that keeps adopters distinct from winners: two committers racing on
    /// one clock advance share a commit timestamp. Every sequential
    /// execution is perfect — only the step-level race checker (duplicate
    /// stamps across threads) convicts it.
    DroppedResidue,
    /// The protocol keeps the (correct) deferred clock but ports TL2's
    /// read-validation-skipping fast path to it by comparing tick *counts*:
    /// "the clock advanced exactly once since my `rv`, so a single
    /// committer interleaved — skip validation". Under GV1 the licensed
    /// check ([`GlobalClock::tick_is_exclusive`] `&& wv == rv + 1`) proves
    /// *zero* interleaved commits; under a pass-on-failure clock one tick
    /// can carry arbitrarily many adopter commits, each of which may be
    /// skipping the very lock checks it owes the others. Two adopters with
    /// crossing read/write sets plus one count-winner commit a write skew.
    /// Every sequential execution — and every op-granular interleaving —
    /// is flawless; only the step-level explorer convicts it.
    UnlicensedFastPath,
}

impl Mutation {
    /// All mutations, for sweeping tests.
    pub fn all() -> [Mutation; 5] {
        [
            Mutation::None,
            Mutation::SkipReadValidation,
            Mutation::SkipCommitValidation,
            Mutation::DroppedResidue,
            Mutation::UnlicensedFastPath,
        ]
    }

    /// A short name for tables ("mutant-none", …).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "mutant-none",
            Mutation::SkipReadValidation => "mutant-skip-read-validation",
            Mutation::SkipCommitValidation => "mutant-skip-commit-validation",
            Mutation::DroppedResidue => "mutant-dropped-residue",
            Mutation::UnlicensedFastPath => "mutant-unlicensed-fast-path",
        }
    }
}

/// The seeded-bug variant of [`DeferredClock`]: identical protocol, but the
/// stamp drops the ticking thread's residue (see
/// [`Mutation::DroppedResidue`]).
#[derive(Debug, Default)]
struct BrokenDeferredClock {
    now: AtomicU64,
}

impl BrokenDeferredClock {
    const HOME_BITS: u32 = DeferredClock::HOME_BITS;
    const HOME_MASK: u64 = DeferredClock::HOME_MASK;

    /// THE MUTATION POINT: the faithful clock stamps
    /// `count << 8 | thread-residue`; this one loses the residue, so the
    /// adopter of a lost CAS collides with the winner.
    fn stamp(count: u64) -> u64 {
        count << Self::HOME_BITS
    }
}

impl GlobalClock for BrokenDeferredClock {
    fn sample(&self, m: &mut Meter) -> u64 {
        (m.load_u64(CellId::Clock(0), &self.now) << Self::HOME_BITS) | Self::HOME_MASK
    }

    fn tick(&self, _thread: usize, m: &mut Meter) -> u64 {
        let cur = m.load_u64(CellId::Clock(0), &self.now);
        let ts = if m.cas_u64(CellId::Clock(0), &self.now, cur, cur + 1) {
            Self::stamp(cur + 1)
        } else {
            Self::stamp(m.load_u64(CellId::Clock(0), &self.now))
        };
        m.note_stamp(ts);
        ts
    }

    fn reserve(&self, _thread: usize, m: &mut Meter) -> u64 {
        let ts = Self::stamp(m.load_u64(CellId::Clock(0), &self.now) + 1);
        m.note_stamp(ts);
        ts
    }

    fn publish(&self, ts: u64, m: &mut Meter) {
        m.fetch_max_u64(CellId::Clock(0), &self.now, ts >> Self::HOME_BITS);
    }

    fn peek(&self) -> u64 {
        (crate::base::peek_u64(&self.now) << Self::HOME_BITS) | Self::HOME_MASK
    }
}

#[inline]
fn version_of(word: u64) -> u64 {
    word >> 1
}

#[inline]
fn is_locked(word: u64) -> bool {
    word & 1 == 1
}

#[inline]
fn locked(word: u64) -> u64 {
    word | 1
}

#[inline]
fn unlocked_at(version: u64) -> u64 {
    version << 1
}

#[derive(Debug)]
struct MutObj {
    /// `version << 1 | locked`.
    lock: AtomicU64,
    value: AtomicI64,
}

/// A TL2-style TM with a planted [`Mutation`].
#[derive(Debug)]
pub struct MutantStm {
    objs: Vec<MutObj>,
    clock: Box<dyn GlobalClock>,
    recorder: Recorder,
    mutation: Mutation,
    retry: RetryPolicy,
    probe: Option<Arc<dyn StepProbe>>,
}

impl MutantStm {
    /// A mutant TM over `k` registers with the given planted bug.
    pub fn new(k: usize, mutation: Mutation) -> Self {
        Self::with_config(&StmConfig::new(k), mutation)
    }

    /// A mutant TM built from an explicit configuration (initial values,
    /// recording, retry policy). The validation mutants keep the plain
    /// single counter; the two concurrency mutants carry the (broken or
    /// faithfully deferred) clock their bug lives in.
    pub fn with_config(cfg: &StmConfig, mutation: Mutation) -> Self {
        let clock: Box<dyn GlobalClock> = match mutation {
            Mutation::DroppedResidue => Box::<BrokenDeferredClock>::default(),
            Mutation::UnlicensedFastPath => Box::new(DeferredClock::new()),
            _ => Box::new(VersionClock::new()),
        };
        MutantStm {
            objs: (0..cfg.k())
                .map(|i| MutObj {
                    lock: AtomicU64::new(0),
                    value: AtomicI64::new(cfg.initial(i)),
                })
                .collect(),
            clock,
            recorder: cfg.build_recorder(),
            mutation,
            retry: cfg.retry_policy(),
            probe: cfg.step_probe(),
        }
    }

    /// The planted mutation.
    pub fn mutation(&self) -> Mutation {
        self.mutation
    }
}

/// A live transaction of the mutant TM.
pub struct MutantTx<'a> {
    stm: &'a MutantStm,
    id: TxId,
    thread: usize,
    rv: u64,
    reads: Vec<usize>,
    writes: Vec<(usize, i64)>,
    meter: Meter,
    finished: bool,
}

impl Stm for MutantStm {
    fn name(&self) -> &'static str {
        self.mutation.name()
    }

    fn k(&self) -> usize {
        self.objs.len()
    }

    fn begin(&self, thread: usize) -> Box<dyn Tx + '_> {
        let id = self.recorder.fresh_tx();
        let rv = self.clock.peek();
        Box::new(MutantTx {
            stm: self,
            id,
            thread,
            rv,
            reads: Vec::new(),
            writes: Vec::new(),
            meter: Meter::with_probe(thread, self.probe.clone()),
            finished: false,
        })
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn properties(&self) -> StmProperties {
        StmProperties {
            progressive: false,
            single_version: true,
            invisible_reads: true,
            // The two concurrency mutants *claim* correctness — every
            // sequential execution honours it; the step-level race analysis
            // exists to falsify the claim.
            opaque_by_design: !matches!(
                self.mutation,
                Mutation::SkipReadValidation | Mutation::SkipCommitValidation
            ),
            serializable_by_design: self.mutation != Mutation::SkipCommitValidation,
        }
    }
}

impl MutantTx<'_> {
    fn write_slot(&mut self, obj: usize) -> Option<&mut (usize, i64)> {
        self.writes.iter_mut().find(|(o, _)| *o == obj)
    }

    fn abort_op(&mut self) -> Aborted {
        self.meter.end_op();
        self.finished = true;
        self.stm.recorder.abort(self.id);
        Aborted
    }

    fn release_locks(&mut self, held: &[(usize, u64)]) {
        for &(obj, old_word) in held {
            self.meter
                .store_u64(CellId::Lock(obj as u32), &self.stm.objs[obj].lock, old_word);
        }
    }
}

impl Tx for MutantTx<'_> {
    fn read(&mut self, obj: usize) -> TxResult<i64> {
        self.stm.recorder.inv_read(self.id, obj);
        self.meter.begin_op(OpKind::Read);
        if let Some(&mut (_, v)) = self.write_slot(obj) {
            self.meter.end_op();
            self.stm.recorder.ret_read(self.id, obj, v);
            return Ok(v);
        }
        let o = &self.stm.objs[obj];
        let pre = self.meter.load_u64(CellId::Lock(obj as u32), &o.lock);
        let v = self.meter.load_i64(CellId::Value(obj as u32), &o.value);
        let post = self.meter.load_u64(CellId::Lock(obj as u32), &o.lock);
        // THE MUTATION POINT: a faithful protocol validates every read.
        if self.stm.mutation != Mutation::SkipReadValidation
            && (pre != post || is_locked(pre) || version_of(pre) > self.rv)
        {
            return Err(self.abort_op());
        }
        self.reads.push(obj);
        self.meter.end_op();
        self.stm.recorder.ret_read(self.id, obj, v);
        Ok(v)
    }

    fn write(&mut self, obj: usize, v: i64) -> TxResult<()> {
        self.stm.recorder.inv_write(self.id, obj, v);
        self.meter.begin_op(OpKind::Write);
        match self.write_slot(obj) {
            Some(slot) => slot.1 = v,
            None => {
                self.writes.push((obj, v));
                self.writes.sort_unstable_by_key(|(o, _)| *o);
            }
        }
        self.meter.end_op();
        self.stm.recorder.ret_write(self.id, obj);
        Ok(())
    }

    fn commit(mut self: Box<Self>) -> TxResult<()> {
        self.stm.recorder.try_commit(self.id);
        self.meter.begin_op(OpKind::Commit);
        let validate = self.stm.mutation != Mutation::SkipCommitValidation;
        if self.writes.is_empty() {
            // Read-only path. Under SkipReadValidation the reads were never
            // checked, so the (intact) commit validation must run here —
            // that is what keeps this mutant's *committed* transactions
            // serializable while its live reads are broken.
            if self.stm.mutation == Mutation::SkipReadValidation {
                for &obj in &self.reads {
                    let word = self
                        .meter
                        .load_u64(CellId::Lock(obj as u32), &self.stm.objs[obj].lock);
                    if is_locked(word) || version_of(word) > self.rv {
                        self.meter.end_op();
                        self.finished = true;
                        self.stm.recorder.abort(self.id);
                        return Err(Aborted);
                    }
                }
            }
            self.meter.end_op();
            self.finished = true;
            self.stm.recorder.commit(self.id);
            return Ok(());
        }
        // Phase 1: lock the write set (locks are kept even in the mutant —
        // publication stays atomic; only *validation* is mutated away).
        let mut held: Vec<(usize, u64)> = Vec::with_capacity(self.writes.len());
        let writes = std::mem::take(&mut self.writes);
        for &(obj, _) in &writes {
            let o = &self.stm.objs[obj];
            let word = self.meter.load_u64(CellId::Lock(obj as u32), &o.lock);
            let stale = validate && version_of(word) > self.rv;
            if is_locked(word)
                || stale
                || !self
                    .meter
                    .cas_u64(CellId::Lock(obj as u32), &o.lock, word, locked(word))
            {
                self.release_locks(&held);
                self.meter.end_op();
                self.finished = true;
                self.stm.recorder.abort(self.id);
                return Err(Aborted);
            }
            held.push((obj, word));
        }
        let wv = self.stm.clock.tick(self.thread, &mut self.meter);
        // TL2's fast path: `wv == rv + 1` proves no interleaved committer —
        // but only when tick() is the sole way time advances
        // (`tick_is_exclusive`). THE MUTATION POINT for UnlicensedFastPath:
        // it "ports" the fast path to the deferred clock by comparing tick
        // *counts* — "the clock advanced exactly once, so one committer
        // interleaved and it validated against my locks". One pass-on-failure
        // tick can carry many adopter commits, and a fellow adopter taking
        // this same shortcut skips the lock check it owed us: two adopters
        // with crossing read/write sets commit a write skew.
        let fast_path = match self.stm.mutation {
            Mutation::UnlicensedFastPath => {
                wv >> DeferredClock::HOME_BITS == (self.rv >> DeferredClock::HOME_BITS) + 1
            }
            _ => self.stm.clock.tick_is_exclusive() && wv == self.rv + 1,
        };
        // Phase 3: read-set validation (THE MUTATION POINT for
        // SkipCommitValidation).
        if validate && !fast_path {
            for &obj in &self.reads {
                if held.iter().any(|&(held_obj, _)| held_obj == obj) {
                    continue;
                }
                let word = self
                    .meter
                    .load_u64(CellId::Lock(obj as u32), &self.stm.objs[obj].lock);
                if is_locked(word) || version_of(word) > self.rv {
                    self.release_locks(&held);
                    self.meter.end_op();
                    self.finished = true;
                    self.stm.recorder.abort(self.id);
                    return Err(Aborted);
                }
            }
        }
        for &(obj, v) in &writes {
            let o = &self.stm.objs[obj];
            self.meter.store_i64(CellId::Value(obj as u32), &o.value, v);
            self.meter
                .store_u64(CellId::Lock(obj as u32), &o.lock, unlocked_at(wv));
        }
        self.meter.end_op();
        self.finished = true;
        self.stm.recorder.commit(self.id);
        Ok(())
    }

    fn abort(mut self: Box<Self>) {
        self.stm.recorder.try_abort(self.id);
        self.finished = true;
        self.stm.recorder.abort(self.id);
    }

    fn steps(&self) -> StepReport {
        self.meter.report()
    }

    fn id(&self) -> u32 {
        self.id.0
    }
}

impl Drop for MutantTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.stm.recorder.try_abort(self.id);
            self.stm.recorder.abort(self.id);
            self.finished = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_tx;

    #[test]
    fn baseline_mutant_behaves_like_tl2() {
        let stm = MutantStm::new(2, Mutation::None);
        run_tx(&stm, 0, |tx| {
            tx.write(0, 1)?;
            tx.write(1, 2)
        });
        let ((a, b), _) = run_tx(&stm, 0, |tx| Ok((tx.read(0)?, tx.read(1)?)));
        assert_eq!((a, b), (1, 2));
        assert!(stm.properties().opaque_by_design);
    }

    #[test]
    fn skip_read_validation_returns_inconsistent_snapshot() {
        let stm = MutantStm::new(2, Mutation::SkipReadValidation);
        run_tx(&stm, 0, |tx| {
            tx.write(0, 1)?;
            tx.write(1, 1)
        });
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 1);
        run_tx(&stm, 1, |tx| {
            tx.write(0, 2)?;
            tx.write(1, 2)
        });
        // A faithful TL2 aborts here; the mutant serves the fracture.
        assert_eq!(
            t1.read(1).unwrap(),
            2,
            "the mutant must expose the fracture"
        );
        // Commit validation is intact: the poisoned transaction cannot
        // commit (committed transactions stay serializable).
        assert_eq!(t1.commit(), Err(Aborted));
    }

    #[test]
    fn skip_commit_validation_loses_updates_deterministically() {
        let stm = MutantStm::new(1, Mutation::SkipCommitValidation);
        let mut t1 = stm.begin(0);
        let v1 = t1.read(0).unwrap();
        let mut t2 = stm.begin(1);
        let v2 = t2.read(0).unwrap();
        t1.write(0, v1 + 1).unwrap();
        t2.write(0, v2 + 1).unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap(); // a faithful protocol aborts this one
        let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
        assert_eq!(v, 1, "one increment must be lost — that is the bug");
    }

    #[test]
    fn faithful_baseline_refuses_the_lost_update() {
        let stm = MutantStm::new(1, Mutation::None);
        let mut t1 = stm.begin(0);
        let v1 = t1.read(0).unwrap();
        let mut t2 = stm.begin(1);
        let v2 = t2.read(0).unwrap();
        t1.write(0, v1 + 1).unwrap();
        t2.write(0, v2 + 1).unwrap();
        t1.commit().unwrap();
        assert_eq!(t2.commit(), Err(Aborted));
    }

    #[test]
    fn mutation_names_are_distinct() {
        let names: Vec<&str> = Mutation::all().iter().map(|m| m.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn concurrency_mutants_are_sequentially_flawless() {
        // The whole point of the seeded concurrency bugs: no
        // single-threaded execution can tell them from a faithful TL2.
        for m in [Mutation::DroppedResidue, Mutation::UnlicensedFastPath] {
            let stm = MutantStm::new(2, m);
            run_tx(&stm, 0, |tx| {
                tx.write(0, 1)?;
                tx.write(1, 2)
            });
            let ((a, b), _) = run_tx(&stm, 0, |tx| Ok((tx.read(0)?, tx.read(1)?)));
            assert_eq!((a, b), (1, 2), "{}", m.name());
            // The classic lost-update race is still refused sequentially…
            let mut t1 = stm.begin(0);
            let v1 = t1.read(0).unwrap();
            let mut t2 = stm.begin(1);
            let v2 = t2.read(0).unwrap();
            t1.write(0, v1 + 10).unwrap();
            t2.write(0, v2 + 20).unwrap();
            t1.commit().unwrap();
            assert_eq!(t2.commit(), Err(Aborted), "{}", m.name());
            assert!(stm.properties().opaque_by_design, "the mutant's lie");
        }
    }

    #[test]
    fn broken_deferred_clock_duplicates_stamps_only_under_a_race() {
        // Sequentially the broken clock is indistinguishable: each tick's
        // CAS wins, stamps strictly increase.
        let clock = BrokenDeferredClock::default();
        let mut m = Meter::new();
        m.begin_op(OpKind::Commit);
        let a = clock.tick(0, &mut m);
        let b = clock.tick(1, &mut m);
        m.end_op();
        assert!(b > a);
        // The faithful clock keeps adopter ≠ winner even on a lost CAS;
        // the broken stamp is residue-free, so a lost CAS collides.
        assert_eq!(BrokenDeferredClock::stamp(1), 1 << 8);
        assert_eq!(DeferredClock::new().peek() & DeferredClock::HOME_MASK, 0xff);
    }

    #[test]
    fn recorded_histories_stay_well_formed_for_every_mutant() {
        for m in Mutation::all() {
            let stm = MutantStm::new(2, m);
            run_tx(&stm, 0, |tx| tx.write(0, 1));
            let mut t = stm.begin(0);
            let _ = t.read(0);
            t.abort();
            let h = stm.recorder().history();
            assert!(tm_model::is_well_formed(&h), "{}: {h}", m.name());
        }
    }
}
