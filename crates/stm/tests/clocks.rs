//! Property tests for the pluggable global-clock schemes: strictly
//! monotone, unique commit timestamps under genuine multi-threaded
//! contention, for every [`ClockScheme`] — the invariants the TL2-style
//! and multi-version protocols lean on.

use std::sync::atomic::{AtomicU64, Ordering};

use tm_stm::{
    run_tx, ClockScheme, GlobalClock, Meter, MvStm, OpKind, SiStm, Stm, StmConfig, Tl2Stm,
};

const THREADS: usize = 8;
const TICKS_PER_THREAD: usize = 400;

/// Drives `THREADS` threads of interleaved sample/tick traffic and returns
/// every issued timestamp tagged with its thread.
fn storm(clock: &dyn GlobalClock) -> Vec<Vec<u64>> {
    // A coarse global high-water mark: any tick must exceed every
    // timestamp *fully published* before the tick started (the cross-
    // thread happens-before half of strict monotonicity).
    let high_water = AtomicU64::new(0);
    let mut per_thread: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let high_water = &high_water;
                scope.spawn(move || {
                    let mut m = Meter::new();
                    let mut issued = Vec::with_capacity(TICKS_PER_THREAD);
                    m.begin_op(OpKind::Commit);
                    for _ in 0..TICKS_PER_THREAD {
                        let floor = high_water.load(Ordering::SeqCst);
                        let s = clock.sample(&mut m);
                        let ts = clock.tick(t, &mut m);
                        assert!(ts > s, "thread {t}: tick {ts} ≤ own sample {s}");
                        assert!(
                            ts > floor,
                            "thread {t}: tick {ts} ≤ pre-tick high water {floor}"
                        );
                        assert!(
                            clock.sample(&mut m) >= ts,
                            "thread {t}: tick {ts} not sampleable after return"
                        );
                        // Publish to the high-water mark only after the tick
                        // fully completed, so the floor check above is a true
                        // happens-before assertion.
                        high_water.fetch_max(ts, Ordering::SeqCst);
                        issued.push(ts);
                    }
                    m.end_op();
                    issued
                })
            })
            .collect();
        for h in handles {
            per_thread.push(h.join().expect("clock storm thread panicked"));
        }
    });
    per_thread
}

#[test]
fn every_scheme_issues_strictly_monotone_unique_timestamps_under_contention() {
    for scheme in ClockScheme::SWEEP {
        let clock = scheme.build();
        let per_thread = storm(clock.as_ref());
        // Per-thread strict monotonicity.
        for (t, issued) in per_thread.iter().enumerate() {
            assert!(
                issued.windows(2).all(|w| w[0] < w[1]),
                "{scheme}: thread {t} issued a non-increasing timestamp"
            );
        }
        // Global uniqueness.
        let mut all: Vec<u64> = per_thread.iter().flatten().copied().collect();
        assert_eq!(all.len(), THREADS * TICKS_PER_THREAD);
        all.sort_unstable();
        let before = all.len();
        all.dedup();
        assert_eq!(
            all.len(),
            before,
            "{scheme}: duplicate commit timestamps issued under contention"
        );
        // The final sample dominates everything issued.
        let mut m = Meter::new();
        m.begin_op(OpKind::Commit);
        let final_sample = clock.sample(&mut m);
        m.end_op();
        assert!(final_sample >= *all.last().unwrap(), "{scheme}");
    }
}

#[test]
fn sharded_clock_survives_more_threads_than_shards() {
    // Threads 0..8 share 3 home shards: same-shard CAS contention is the
    // hard path of the sharded tick loop.
    let clock = ClockScheme::Sharded(3).build();
    let per_thread = storm(clock.as_ref());
    let mut all: Vec<u64> = per_thread.into_iter().flatten().collect();
    all.sort_unstable();
    let before = all.len();
    all.dedup();
    assert_eq!(all.len(), before, "same-home ticks must stay unique");
}

/// The threaded counter invariant holds for every clocked TM under every
/// scheme — timestamps remain a sound serialization backbone when real
/// threads race on commits.
#[test]
fn clocked_tms_conserve_counter_updates_under_every_scheme() {
    type MakeTm = fn(&StmConfig) -> Box<dyn Stm>;
    let makes: [(&str, MakeTm); 3] = [
        ("tl2", |c| Box::new(Tl2Stm::with_config(c))),
        ("mvstm", |c| Box::new(MvStm::with_config(c))),
        ("sistm", |c| Box::new(SiStm::with_config(c))),
    ];
    for scheme in ClockScheme::SWEEP {
        for (name, make) in makes {
            let stm = make(&StmConfig::new(1).clock(scheme).recording(false));
            let threads = 4;
            let per_thread = 60;
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let stm = stm.as_ref();
                    scope.spawn(move || {
                        for _ in 0..per_thread {
                            // The write set covers the read set, so even
                            // SI's write-only validation must conserve.
                            run_tx(stm, t, |tx| {
                                let v = tx.read(0)?;
                                tx.write(0, v + 1)
                            });
                        }
                    });
                }
            });
            let (v, _) = run_tx(stm.as_ref(), 0, |tx| tx.read(0));
            assert_eq!(
                v,
                (threads * per_thread) as i64,
                "{name}+{scheme}: lost updates"
            );
            assert!(
                stm.recorder().is_empty(),
                "{name}+{scheme}: recording-off TM allocated events"
            );
        }
    }
}

/// The multi-version snapshot contract survives non-single clocks: a
/// reader that began before a flurry of commits keeps its begin snapshot.
#[test]
fn mvstm_snapshots_stay_consistent_under_every_scheme() {
    for scheme in ClockScheme::SWEEP {
        let stm = MvStm::with_config(&StmConfig::new(2).clock(scheme));
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 0, "{scheme}");
        for v in 1..=5 {
            run_tx(&stm, 1, |tx| {
                tx.write(0, v)?;
                tx.write(1, v)
            });
        }
        assert_eq!(
            t1.read(1).unwrap(),
            0,
            "{scheme}: snapshot read must see the begin state"
        );
        t1.commit().unwrap();
        let ((a, b), _) = run_tx(&stm, 0, |tx| Ok((tx.read(0)?, tx.read(1)?)));
        assert_eq!((a, b), (5, 5), "{scheme}");
    }
}

/// Only the single GV1 counter may license TL2's `wv == rv + 1`
/// validation-skip fast path: sharded and deferred ticks cannot prove
/// that no concurrent committer advanced time, so TL2 must always run its
/// read-set validation under them (the classical GV4/GV5 trade-off).
#[test]
fn only_the_single_scheme_proves_tick_exclusivity() {
    assert!(ClockScheme::Single.build().tick_is_exclusive());
    assert!(!ClockScheme::Sharded(4).build().tick_is_exclusive());
    assert!(!ClockScheme::Sharded(1).build().tick_is_exclusive());
    assert!(!ClockScheme::Deferred.build().tick_is_exclusive());
}

/// TL2's stale-read abort (the non-progressive rv check) fires identically
/// under every scheme.
#[test]
fn tl2_rv_check_aborts_stale_reads_under_every_scheme() {
    for scheme in ClockScheme::SWEEP {
        let stm = Tl2Stm::with_config(&StmConfig::new(2).clock(scheme));
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 0, "{scheme}");
        run_tx(&stm, 1, |tx| tx.write(1, 5));
        assert!(
            t1.read(1).is_err(),
            "{scheme}: version > rv must abort the reader"
        );
    }
}
