//! Concurrency stress tests for every TM implementation.
//!
//! Real threads, real contention, semantic invariants checked after every
//! run (the workload helpers panic on violation), plus recorded-history
//! well-formedness and serializability of committed transactions under
//! randomized deterministic interleavings.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tm_model::SpecRegistry;
use tm_opacity::criteria::is_serializable;
use tm_opacity::opacity::is_opaque;
use tm_stm::{all_stms, run_tx, Stm};

#[test]
fn four_thread_bank_on_every_stm() {
    for stm in all_stms(12) {
        stm.recorder().set_enabled(false);
        // `bank` (in tm-harness) isn't available here without a cycle;
        // inline a minimal version: threads transfer, then conservation.
        let stm = stm.as_ref();
        run_tx(stm, 0, |tx| {
            for a in 0..12 {
                tx.write(a, 100)?;
            }
            Ok(())
        });
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(1000 + t as u64);
                    for _ in 0..50 {
                        let from = rng.gen_range(0..12);
                        let to = (from + 1 + rng.gen_range(0..11usize)) % 12;
                        run_tx(stm, t, |tx| {
                            let a = tx.read(from)?;
                            let b = tx.read(to)?;
                            tx.write(from, a - 3)?;
                            tx.write(to, b + 3)
                        });
                    }
                });
            }
        });
        let (sum, _) = run_tx(stm, 0, |tx| {
            let mut s = 0;
            for a in 0..12 {
                s += tx.read(a)?;
            }
            Ok(s)
        });
        assert_eq!(sum, 1200, "{}: conservation violated", stm.name());
    }
}

#[test]
fn recorded_threaded_histories_are_well_formed_everywhere() {
    for stm in all_stms(4) {
        let stm = stm.as_ref();
        std::thread::scope(|scope| {
            for t in 0..3 {
                scope.spawn(move || {
                    for i in 0..3 {
                        run_tx(stm, t, |tx| {
                            let v = tx.read(t)?;
                            tx.write((t + 1) % 4, v + i)
                        });
                    }
                });
            }
        });
        let h = stm.recorder().history();
        assert!(tm_model::is_well_formed(&h), "{}: {h}", stm.name());
        assert_eq!(h.committed_txs().len(), 9, "{}", stm.name());
    }
}

/// Regression stress for the MvStm publish-last ordering: sustained
/// two-thread counter contention with fresh transactions beginning
/// constantly — the begin/commit race (snapshot timestamp adopted before
/// its versions are visible) loses updates within a few thousand
/// increments if present.
#[test]
fn mvstm_counter_no_lost_updates_under_sustained_contention() {
    for _round in 0..5 {
        let stm = tm_stm::MvStm::new(1);
        stm.recorder().set_enabled(false);
        let per_thread = 400;
        std::thread::scope(|scope| {
            for t in 0..2 {
                let stm = &stm;
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        run_tx(stm, t, |tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        });
                    }
                });
            }
        });
        let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
        assert_eq!(v, 2 * per_thread, "lost updates in MvStm");
    }
}

/// Two-thread concurrent snapshot reads: any opaque TM must never let a
/// reader commit with a fractured view of a two-register invariant.
#[test]
fn snapshot_invariant_under_real_races() {
    for stm in tm_stm::opaque_stms(2) {
        let stm = stm.as_ref();
        stm.recorder().set_enabled(false);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 1..100i64 {
                    run_tx(stm, 0, |tx| {
                        tx.write(0, i)?;
                        tx.write(1, i)
                    });
                }
            });
            scope.spawn(move || {
                for _ in 0..100 {
                    let ((a, b), _) = run_tx(stm, 1, |tx| {
                        let a = tx.read(0)?;
                        let b = tx.read(1)?;
                        Ok((a, b))
                    });
                    assert_eq!(a, b, "{}: fractured snapshot committed", stm.name());
                }
            });
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random programs under random interleavings: every recorded history
    /// has serializable committed transactions; for opaque-by-design TMs
    /// the whole history is opaque.
    #[test]
    fn random_interleavings_preserve_contracts(
        seed in 0u64..100_000,
        ops_a in 1usize..4,
        ops_b in 1usize..4,
    ) {
        use tm_harness_shim::*;
        let specs = SpecRegistry::registers();
        let mut rng = StdRng::seed_from_u64(seed);
        // Two scripted transactions over 3 registers with random ops.
        let mk = |rng: &mut StdRng, n: usize, base: i64| -> Vec<(bool, usize, i64)> {
            (0..n)
                .map(|i| (rng.gen_bool(0.5), rng.gen_range(0..3usize), base + i as i64))
                .collect()
        };
        let a = mk(&mut rng, ops_a, 100);
        let b = mk(&mut rng, ops_b, 200);
        // A random interleaving of (ops+commit) actions.
        let mut actions: Vec<usize> = std::iter::repeat(0)
            .take(ops_a + 1)
            .chain(std::iter::repeat(1).take(ops_b + 1))
            .collect();
        use rand::seq::SliceRandom;
        actions.shuffle(&mut rng);

        for stm in all_stms(3) {
            if stm.blocking() {
                continue;
            }
            let stm = stm.as_ref();
            run_scripted(stm, &[&a, &b], &actions);
            let h = stm.recorder().history();
            prop_assert!(tm_model::is_well_formed(&h), "{}: {}", stm.name(), h);
            if stm.properties().serializable_by_design {
                prop_assert!(
                    is_serializable(&h, &specs).unwrap(),
                    "{}: committed txs not serializable: {}",
                    stm.name(),
                    h
                );
            } else {
                // The snapshot-isolation TM forfeits serializability (write
                // skew) but must still deliver its advertised criterion.
                prop_assert!(
                    tm_opacity::criteria::snapshot_isolated(&h, &specs).unwrap(),
                    "{}: history not snapshot-isolated: {}",
                    stm.name(),
                    h
                );
            }
            if stm.properties().opaque_by_design {
                prop_assert!(
                    is_opaque(&h, &specs).unwrap().opaque,
                    "{}: non-opaque history: {}",
                    stm.name(),
                    h
                );
            }
        }
    }
}

/// A minimal scripted executor local to this test crate (tm-harness cannot
/// be a dev-dependency here without a cycle through tm-stm).
mod tm_harness_shim {
    use tm_stm::Stm;

    /// Runs scripts `(is_read, obj, value)` interleaved per `actions`
    /// (thread indices; each entry executes that thread's next op, the
    /// final one its commit). Aborted threads go inert.
    pub fn run_scripted(stm: &dyn Stm, scripts: &[&Vec<(bool, usize, i64)>], actions: &[usize]) {
        let mut txs: Vec<_> = (0..scripts.len()).map(|_| None).collect();
        let mut pcs = vec![0usize; scripts.len()];
        let mut dead = vec![false; scripts.len()];
        for &ti in actions {
            if dead[ti] {
                continue;
            }
            if txs[ti].is_none() {
                txs[ti] = Some(stm.begin(ti));
            }
            let script = scripts[ti];
            if pcs[ti] < script.len() {
                let (is_read, obj, v) = script[pcs[ti]];
                let tx = txs[ti].as_mut().unwrap();
                let r = if is_read {
                    tx.read(obj).map(|_| ())
                } else {
                    tx.write(obj, v)
                };
                pcs[ti] += 1;
                if r.is_err() {
                    dead[ti] = true;
                    txs[ti] = None;
                }
            } else {
                let tx = txs[ti].take().unwrap();
                let _ = tx.commit();
                dead[ti] = true;
            }
        }
        // Anything still live: voluntary abort for a complete history.
        for tx in txs.into_iter().flatten() {
            tx.abort();
        }
    }
}
