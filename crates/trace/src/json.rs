//! The versioned JSON trace format.
//!
//! Mirror types keep `tm-model` free of serialization concerns; conversion
//! to and from [`History`] is total in one direction and validated in the
//! other. Serialization is hand-rolled over a tiny internal JSON document
//! model (`Json`) — the build environment vendors no `serde`/`serde_json`,
//! and the trace schema is small enough that a direct implementation is
//! clearer than a stubbed derive. The wire format follows the serde
//! conventions the schema was designed with: externally tagged values
//! (`"unit"`, `{"int": 5}`) and internally tagged events
//! (`{"kind": "inv", ...}`), so traces are interchangeable with a
//! serde-derived reader.

use std::fmt::Write as _;

use crate::{op_from_str, ParseError};
use tm_model::{Event, History, ObjId, TxId, Value};

/// The format version emitted by [`to_json`].
pub const FORMAT_VERSION: u32 = 1;

/// JSON mirror of [`Value`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonValue {
    /// `⊥`.
    Unit,
    /// `ok`.
    Ok,
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An ordered pair.
    Pair(Box<JsonValue>, Box<JsonValue>),
    /// A sequence.
    List(Vec<JsonValue>),
}

impl From<&Value> for JsonValue {
    fn from(v: &Value) -> Self {
        match v {
            Value::Unit => JsonValue::Unit,
            Value::Ok => JsonValue::Ok,
            Value::Int(i) => JsonValue::Int(*i),
            Value::Bool(b) => JsonValue::Bool(*b),
            Value::Pair(a, b) => {
                JsonValue::Pair(Box::new(a.as_ref().into()), Box::new(b.as_ref().into()))
            }
            Value::List(vs) => JsonValue::List(vs.iter().map(Into::into).collect()),
        }
    }
}

impl From<&JsonValue> for Value {
    fn from(v: &JsonValue) -> Self {
        match v {
            JsonValue::Unit => Value::Unit,
            JsonValue::Ok => Value::Ok,
            JsonValue::Int(i) => Value::Int(*i),
            JsonValue::Bool(b) => Value::Bool(*b),
            JsonValue::Pair(a, b) => Value::pair(a.as_ref().into(), b.as_ref().into()),
            JsonValue::List(vs) => Value::List(vs.iter().map(Into::into).collect()),
        }
    }
}

/// JSON mirror of [`Event`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonEvent {
    /// Operation invocation.
    Inv {
        /// Transaction number (the `i` of `T_i`).
        tx: u32,
        /// Object name.
        obj: String,
        /// Operation name.
        op: String,
        /// Operation arguments (omitted from the wire format when empty).
        args: Vec<JsonValue>,
    },
    /// Operation response.
    Ret {
        /// Transaction number.
        tx: u32,
        /// Object name.
        obj: String,
        /// Operation name.
        op: String,
        /// Returned value.
        val: JsonValue,
    },
    /// `tryC`.
    TryCommit {
        /// Transaction number.
        tx: u32,
    },
    /// `tryA`.
    TryAbort {
        /// Transaction number.
        tx: u32,
    },
    /// `C`.
    Commit {
        /// Transaction number.
        tx: u32,
    },
    /// `A`.
    Abort {
        /// Transaction number.
        tx: u32,
    },
}

/// The top-level JSON document: a version tag and the event sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonTrace {
    /// Format version; [`from_json`] accepts only [`FORMAT_VERSION`].
    pub version: u32,
    /// The history's events, in order.
    pub events: Vec<JsonEvent>,
}

impl From<&Event> for JsonEvent {
    fn from(e: &Event) -> Self {
        match e {
            Event::Inv { tx, obj, op, args } => JsonEvent::Inv {
                tx: tx.0,
                obj: obj.name().to_string(),
                op: op.to_string(),
                args: args.iter().map(Into::into).collect(),
            },
            Event::Ret { tx, obj, op, val } => JsonEvent::Ret {
                tx: tx.0,
                obj: obj.name().to_string(),
                op: op.to_string(),
                val: val.into(),
            },
            Event::TryCommit(tx) => JsonEvent::TryCommit { tx: tx.0 },
            Event::TryAbort(tx) => JsonEvent::TryAbort { tx: tx.0 },
            Event::Commit(tx) => JsonEvent::Commit { tx: tx.0 },
            Event::Abort(tx) => JsonEvent::Abort { tx: tx.0 },
        }
    }
}

impl From<&JsonEvent> for Event {
    fn from(e: &JsonEvent) -> Self {
        match e {
            JsonEvent::Inv { tx, obj, op, args } => Event::Inv {
                tx: TxId(*tx),
                obj: ObjId::new(obj),
                op: op_from_str(op),
                args: args.iter().map(Into::into).collect(),
            },
            JsonEvent::Ret { tx, obj, op, val } => Event::Ret {
                tx: TxId(*tx),
                obj: ObjId::new(obj),
                op: op_from_str(op),
                val: val.into(),
            },
            JsonEvent::TryCommit { tx } => Event::TryCommit(TxId(*tx)),
            JsonEvent::TryAbort { tx } => Event::TryAbort(TxId(*tx)),
            JsonEvent::Commit { tx } => Event::Commit(TxId(*tx)),
            JsonEvent::Abort { tx } => Event::Abort(TxId(*tx)),
        }
    }
}

// ---------------------------------------------------------------------------
// The JSON document model.
//
// Originally internal to this module; made public for the `tm-serve` wire
// protocol (`tm-serve/v1` frames carry trace events inside framing objects),
// which reuses this hand-rolled layer rather than growing a dependency.

/// A parsed JSON document node. Numbers are restricted to `i64`: every
/// number in the trace schema (versions, transaction ids, integer values)
/// fits, and anything else is a schema violation anyway.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the only number shape the trace formats use).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object's fields in source order, plus the 1-based source line of
    /// the opening brace so schema errors can point at the offending node
    /// (0 when built by a serializer, which never reports errors).
    Obj(usize, Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object node (`None` for other node shapes and
    /// missing keys).
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(_, fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Source line of this node, when known (objects only).
    pub fn line(&self) -> usize {
        match self {
            Json::Obj(line, _) => *line,
            _ => 0,
        }
    }

    /// Parses one JSON document (rejecting trailing input), tracking source
    /// lines for [`ParseError`] positions.
    pub fn parse(s: &str) -> Result<Json, ParseError> {
        Parser::new(s).parse_document()
    }

    /// Renders this node as compact (single-line) JSON.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(_, fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + STEP);
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(_, fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + STEP);
                    write_json_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push(' ');
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A recursive-descent JSON parser that tracks the current line for error
/// reporting (1-based, as [`ParseError`] documents).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), ParseError> {
        self.skip_ws();
        match self.bump() {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(self.err(format!(
                "expected `{}`, found `{}`",
                want as char, b as char
            ))),
            None => Err(self.err(format!("expected `{}`, found end of input", want as char))),
        }
    }

    fn parse_document(mut self) -> Result<Json, ParseError> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.peek().is_some() {
            return Err(self.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't' | b'f') => self.parse_keyword(),
            Some(b'n') => self.parse_keyword(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let line = self.line;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Json::Obj(line, fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string object key"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(line, fields)),
                Some(b) => {
                    return Err(self.err(format!(
                        "expected `,` or `}}` in object, found `{}`",
                        b as char
                    )))
                }
                None => return Err(self.err("unterminated object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                Some(b) => {
                    return Err(self.err(format!(
                        "expected `,` or `]` in array, found `{}`",
                        b as char
                    )))
                }
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0C),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        let c = match code {
                            // High surrogate: a low surrogate must follow
                            // (the JSON encoding of astral-plane chars).
                            0xD800..=0xDBFF => {
                                if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                    return Err(self.err("unpaired high surrogate in \\u escape"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(self.err("invalid low surrogate in \\u escape"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            }
                            0xDC00..=0xDFFF => {
                                return Err(self.err("unpaired low surrogate in \\u escape"))
                            }
                            c => char::from_u32(c).ok_or_else(|| self.err("invalid \\u escape"))?,
                        };
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    Some(b) => return Err(self.err(format!("invalid escape `\\{}`", b as char))),
                    None => return Err(self.err("unterminated string escape")),
                },
                Some(b) => out.push(b),
            }
        }
        String::from_utf8(out).map_err(|_| self.err("invalid UTF-8 in string"))
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn parse_keyword(&mut self) -> Result<Json, ParseError> {
        for (word, value) in [
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("null", Json::Null),
        ] {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                return Ok(value);
            }
        }
        Err(self.err("invalid keyword (expected true/false/null)"))
    }

    fn parse_number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("non-integer numbers are not used by the trace format"));
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are valid UTF-8");
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

// ---------------------------------------------------------------------------
// Schema mapping: mirror types ↔ the document model.

impl JsonValue {
    fn to_doc(&self) -> Json {
        match self {
            JsonValue::Unit => Json::Str("unit".into()),
            JsonValue::Ok => Json::Str("ok".into()),
            JsonValue::Int(i) => Json::Obj(0, vec![("int".into(), Json::Int(*i))]),
            JsonValue::Bool(b) => Json::Obj(0, vec![("bool".into(), Json::Bool(*b))]),
            JsonValue::Pair(a, b) => Json::Obj(
                0,
                vec![("pair".into(), Json::Arr(vec![a.to_doc(), b.to_doc()]))],
            ),
            JsonValue::List(vs) => Json::Obj(
                0,
                vec![(
                    "list".into(),
                    Json::Arr(vs.iter().map(JsonValue::to_doc).collect()),
                )],
            ),
        }
    }

    fn from_doc(doc: &Json) -> Result<JsonValue, ParseError> {
        let schema_err = |msg: &str| ParseError {
            line: doc.line(),
            message: format!("invalid value: {msg}"),
        };
        match doc {
            Json::Str(s) => match s.as_str() {
                "unit" => Ok(JsonValue::Unit),
                "ok" => Ok(JsonValue::Ok),
                other => Err(schema_err(&format!("unknown value tag `{other}`"))),
            },
            Json::Obj(_, fields) => {
                let [(tag, body)] = fields.as_slice() else {
                    return Err(schema_err("expected exactly one tag field"));
                };
                match (tag.as_str(), body) {
                    ("int", Json::Int(i)) => Ok(JsonValue::Int(*i)),
                    ("bool", Json::Bool(b)) => Ok(JsonValue::Bool(*b)),
                    ("pair", Json::Arr(items)) => match items.as_slice() {
                        [a, b] => Ok(JsonValue::Pair(
                            Box::new(JsonValue::from_doc(a)?),
                            Box::new(JsonValue::from_doc(b)?),
                        )),
                        _ => Err(schema_err("`pair` requires exactly two elements")),
                    },
                    ("list", Json::Arr(items)) => Ok(JsonValue::List(
                        items
                            .iter()
                            .map(JsonValue::from_doc)
                            .collect::<Result<_, _>>()?,
                    )),
                    (other, _) => Err(schema_err(&format!("unknown value tag `{other}`"))),
                }
            }
            _ => Err(schema_err("expected a string tag or a tagged object")),
        }
    }
}

impl JsonEvent {
    /// Renders this event as its wire-format document node (the element
    /// shape of the trace's `events` array, e.g.
    /// `{"kind":"inv","tx":1,"obj":"x","op":"read"}`).
    pub fn to_doc(&self) -> Json {
        let kind = |k: &str| ("kind".to_string(), Json::Str(k.to_string()));
        let tx_field = |tx: u32| ("tx".to_string(), Json::Int(i64::from(tx)));
        match self {
            JsonEvent::Inv { tx, obj, op, args } => {
                let mut fields = vec![
                    kind("inv"),
                    tx_field(*tx),
                    ("obj".into(), Json::Str(obj.clone())),
                    ("op".into(), Json::Str(op.clone())),
                ];
                if !args.is_empty() {
                    fields.push((
                        "args".into(),
                        Json::Arr(args.iter().map(JsonValue::to_doc).collect()),
                    ));
                }
                Json::Obj(0, fields)
            }
            JsonEvent::Ret { tx, obj, op, val } => Json::Obj(
                0,
                vec![
                    kind("ret"),
                    tx_field(*tx),
                    ("obj".into(), Json::Str(obj.clone())),
                    ("op".into(), Json::Str(op.clone())),
                    ("val".into(), val.to_doc()),
                ],
            ),
            JsonEvent::TryCommit { tx } => Json::Obj(0, vec![kind("try_commit"), tx_field(*tx)]),
            JsonEvent::TryAbort { tx } => Json::Obj(0, vec![kind("try_abort"), tx_field(*tx)]),
            JsonEvent::Commit { tx } => Json::Obj(0, vec![kind("commit"), tx_field(*tx)]),
            JsonEvent::Abort { tx } => Json::Obj(0, vec![kind("abort"), tx_field(*tx)]),
        }
    }

    /// Parses one event from its wire-format document node, reporting the
    /// node's source line on schema violations.
    pub fn from_doc(doc: &Json) -> Result<JsonEvent, ParseError> {
        let schema_err = |msg: String| ParseError {
            line: doc.line(),
            message: format!("invalid event: {msg}"),
        };
        let tx_of = |doc: &Json| -> Result<u32, ParseError> {
            match doc.get("tx") {
                Some(Json::Int(i)) => u32::try_from(*i)
                    .map_err(|_| schema_err(format!("transaction id {i} out of range"))),
                _ => Err(schema_err("missing integer `tx` field".into())),
            }
        };
        let str_of = |doc: &Json, key: &str| -> Result<String, ParseError> {
            match doc.get(key) {
                Some(Json::Str(s)) => Ok(s.clone()),
                _ => Err(schema_err(format!("missing string `{key}` field"))),
            }
        };
        let Some(Json::Str(k)) = doc.get("kind") else {
            return Err(schema_err("missing string `kind` field".into()));
        };
        match k.as_str() {
            "inv" => {
                let args = match doc.get("args") {
                    None => Vec::new(),
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(JsonValue::from_doc)
                        .collect::<Result<_, _>>()?,
                    Some(_) => return Err(schema_err("`args` must be an array".into())),
                };
                Ok(JsonEvent::Inv {
                    tx: tx_of(doc)?,
                    obj: str_of(doc, "obj")?,
                    op: str_of(doc, "op")?,
                    args,
                })
            }
            "ret" => Ok(JsonEvent::Ret {
                tx: tx_of(doc)?,
                obj: str_of(doc, "obj")?,
                op: str_of(doc, "op")?,
                val: JsonValue::from_doc(
                    doc.get("val")
                        .ok_or_else(|| schema_err("missing `val` field".into()))?,
                )?,
            }),
            "try_commit" => Ok(JsonEvent::TryCommit { tx: tx_of(doc)? }),
            "try_abort" => Ok(JsonEvent::TryAbort { tx: tx_of(doc)? }),
            "commit" => Ok(JsonEvent::Commit { tx: tx_of(doc)? }),
            "abort" => Ok(JsonEvent::Abort { tx: tx_of(doc)? }),
            other => Err(schema_err(format!("unknown event kind `{other}`"))),
        }
    }
}

impl JsonTrace {
    fn to_doc(&self) -> Json {
        Json::Obj(
            0,
            vec![
                ("version".into(), Json::Int(i64::from(self.version))),
                (
                    "events".into(),
                    Json::Arr(self.events.iter().map(JsonEvent::to_doc).collect()),
                ),
            ],
        )
    }

    fn from_doc(doc: &Json) -> Result<JsonTrace, ParseError> {
        let schema_err = |msg: &str| ParseError {
            line: doc.line(),
            message: format!("invalid trace: {msg}"),
        };
        let version = match doc.get("version") {
            Some(Json::Int(i)) => {
                u32::try_from(*i).map_err(|_| schema_err("version out of range"))?
            }
            _ => return Err(schema_err("missing integer `version` field")),
        };
        let events = match doc.get("events") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(JsonEvent::from_doc)
                .collect::<Result<_, _>>()?,
            _ => return Err(schema_err("missing `events` array")),
        };
        Ok(JsonTrace { version, events })
    }
}

// ---------------------------------------------------------------------------
// Public entry points.

/// Renders a model [`Event`] as its wire-format document node — the shape
/// carried by the trace's `events` array and by `tm-serve/v1` `feed` frames.
pub fn event_to_doc(e: &Event) -> Json {
    JsonEvent::from(e).to_doc()
}

/// Parses one model [`Event`] from its wire-format document node.
pub fn event_from_doc(doc: &Json) -> Result<Event, ParseError> {
    Ok((&JsonEvent::from_doc(doc)?).into())
}

/// Serializes a history to the compact JSON trace format.
///
/// ```
/// use tm_model::HistoryBuilder;
/// use tm_trace::{to_json, from_json};
///
/// let h = HistoryBuilder::new().write(1, "x", 1).commit_ok(1).build();
/// let encoded = to_json(&h);
/// assert!(encoded.contains("\"version\":1"));
/// assert_eq!(from_json(&encoded).unwrap().events(), h.events());
/// ```
pub fn to_json(h: &History) -> String {
    let trace = JsonTrace {
        version: FORMAT_VERSION,
        events: h.events().iter().map(Into::into).collect(),
    };
    let mut out = String::new();
    trace.to_doc().write_compact(&mut out);
    out
}

/// Serializes a history to human-indented JSON.
pub fn to_json_pretty(h: &History) -> String {
    let trace = JsonTrace {
        version: FORMAT_VERSION,
        events: h.events().iter().map(Into::into).collect(),
    };
    let mut out = String::new();
    trace.to_doc().write_pretty(&mut out, 0);
    out
}

/// Parses a JSON trace back into a [`History`].
///
/// Rejects unknown format versions and JSON that does not match the schema.
/// The resulting history is *not* implicitly validated for well-formedness —
/// callers that require it (the checkers do) run
/// [`tm_model::check_well_formed`] themselves, which keeps this crate usable
/// for deliberately ill-formed fixtures.
pub fn from_json(s: &str) -> Result<History, ParseError> {
    let doc = Json::parse(s)?;
    let trace = JsonTrace::from_doc(&doc)?;
    if trace.version != FORMAT_VERSION {
        return Err(ParseError {
            line: 0,
            message: format!(
                "unsupported trace version {} (this build reads version {FORMAT_VERSION})",
                trace.version
            ),
        });
    }
    Ok(History::from_events(
        trace.events.iter().map(Into::into).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::HistoryBuilder;

    fn sample() -> History {
        HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 1)
            .try_commit(2)
            .abort(2)
            .build()
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let h = sample();
        for s in [to_json(&h), to_json_pretty(&h)] {
            let back = from_json(&s).unwrap();
            assert_eq!(back.events(), h.events());
        }
    }

    #[test]
    fn version_is_checked() {
        let s = to_json(&sample()).replace("\"version\":1", "\"version\":99");
        let e = from_json(&s).unwrap_err();
        assert!(e.message.contains("unsupported trace version 99"), "{e}");
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let e = from_json("{\n  \"version\": 1,\n  events: []\n}").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn all_value_shapes_roundtrip() {
        let vals = [
            Value::Unit,
            Value::Ok,
            Value::int(-7),
            Value::Bool(true),
            Value::pair(Value::int(1), Value::Ok),
            Value::List(vec![Value::int(1), Value::Bool(false), Value::Unit]),
        ];
        for v in vals {
            let j: JsonValue = (&v).into();
            let back: Value = (&j).into();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn custom_ops_survive() {
        let h = History::from_events(vec![
            Event::Inv {
                tx: TxId(1),
                obj: ObjId::new("widget"),
                op: op_from_str("frobnicate"),
                args: vec![Value::int(3)],
            },
            Event::Ret {
                tx: TxId(1),
                obj: ObjId::new("widget"),
                op: op_from_str("frobnicate"),
                val: Value::Bool(true),
            },
        ]);
        let back = from_json(&to_json(&h)).unwrap();
        assert_eq!(back.events(), h.events());
    }

    #[test]
    fn empty_history_roundtrips() {
        let h = History::new();
        assert_eq!(from_json(&to_json(&h)).unwrap().events(), h.events());
    }

    #[test]
    fn args_field_is_optional() {
        let s = r#"{"version":1,"events":[
            {"kind":"inv","tx":1,"obj":"x","op":"read"},
            {"kind":"ret","tx":1,"obj":"x","op":"read","val":{"int":0}}
        ]}"#;
        let h = from_json(s).unwrap();
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn escaped_strings_roundtrip() {
        let h = History::from_events(vec![Event::Inv {
            tx: TxId(1),
            obj: ObjId::new("a\"b\\c\nd"),
            op: op_from_str("read"),
            args: vec![],
        }]);
        let back = from_json(&to_json(&h)).unwrap();
        assert_eq!(back.events(), h.events());
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // An ASCII-escaping writer (e.g. Python's json.dumps) encodes 😀 as
        // a surrogate pair; interchange requires accepting it.
        let s = r#"{"version":1,"events":[
            {"kind":"inv","tx":1,"obj":"😀","op":"read"}
        ]}"#;
        let h = from_json(s).unwrap();
        match &h.events()[0] {
            Event::Inv { obj, .. } => assert_eq!(obj.name(), "😀"),
            other => panic!("unexpected event {other:?}"),
        }
        // Astral-plane characters emitted raw by to_json round-trip too.
        let back = from_json(&to_json(&h)).unwrap();
        assert_eq!(back.events(), h.events());
    }

    #[test]
    fn lone_surrogates_are_rejected() {
        for bad in [
            r#"{"version":1,"events":[{"kind":"inv","tx":1,"obj":"\ud83d","op":"read"}]}"#,
            r#"{"version":1,"events":[{"kind":"inv","tx":1,"obj":"\ude00","op":"read"}]}"#,
            r#"{"version":1,"events":[{"kind":"inv","tx":1,"obj":"\ud83dx","op":"read"}]}"#,
        ] {
            let e = from_json(bad).unwrap_err();
            assert!(e.message.contains("surrogate"), "{e}");
        }
    }

    #[test]
    fn schema_errors_carry_the_event_line() {
        // The typo'd event sits on line 4 of the pretty document.
        let s =
            "{\n  \"version\": 1,\n  \"events\": [\n    {\"kind\": \"comit\", \"tx\": 1}\n  ]\n}";
        let e = from_json(s).unwrap_err();
        assert!(e.message.contains("unknown event kind `comit`"), "{e}");
        assert_eq!(e.line, 4, "{e}");
    }

    #[test]
    fn public_doc_api_roundtrips_events_and_framing() {
        // The surface tm-serve builds its wire frames on: parse a document,
        // pull an embedded event out by key, convert it to a model event,
        // and render frames compactly.
        let doc =
            Json::parse(r#"{"frame":"feed","session":"s1","event":{"kind":"commit","tx":3}}"#)
                .unwrap();
        assert_eq!(doc.get("frame"), Some(&Json::Str("feed".into())));
        let event = event_from_doc(doc.get("event").unwrap()).unwrap();
        assert_eq!(event, Event::Commit(TxId(3)));
        let back = event_to_doc(&event);
        assert_eq!(back.to_compact_string(), r#"{"kind":"commit","tx":3}"#);
        assert_eq!(back.line(), 0, "serializer-built nodes carry no line");
        // Schema errors out of an embedded event still carry its line.
        let bad = Json::parse("{\n \"event\": {\"kind\": \"zap\"}\n}").unwrap();
        let err = event_from_doc(bad.get("event").unwrap()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown event kind"), "{err}");
    }

    #[test]
    fn schema_violations_are_rejected() {
        for bad in [
            r#"{"version":1,"events":[{"kind":"zap","tx":1}]}"#,
            r#"{"version":1,"events":[{"kind":"commit"}]}"#,
            r#"{"version":1}"#,
            r#"{"events":[]}"#,
            r#"[1,2,3]"#,
            r#"{"version":1,"events":[{"kind":"ret","tx":1,"obj":"x","op":"read","val":{"nope":1}}]}"#,
        ] {
            assert!(from_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
