//! The versioned JSON trace format.
//!
//! Mirror types with `serde` derives keep `tm-model` free of serialization
//! concerns; conversion to and from [`History`] is total in one direction
//! and validated in the other.

use serde::{Deserialize, Serialize};

use crate::{op_from_str, ParseError};
use tm_model::{Event, History, ObjId, TxId, Value};

/// The format version emitted by [`to_json`].
pub const FORMAT_VERSION: u32 = 1;

/// JSON mirror of [`Value`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum JsonValue {
    /// `⊥`.
    Unit,
    /// `ok`.
    Ok,
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An ordered pair.
    Pair(Box<JsonValue>, Box<JsonValue>),
    /// A sequence.
    List(Vec<JsonValue>),
}

impl From<&Value> for JsonValue {
    fn from(v: &Value) -> Self {
        match v {
            Value::Unit => JsonValue::Unit,
            Value::Ok => JsonValue::Ok,
            Value::Int(i) => JsonValue::Int(*i),
            Value::Bool(b) => JsonValue::Bool(*b),
            Value::Pair(a, b) => {
                JsonValue::Pair(Box::new(a.as_ref().into()), Box::new(b.as_ref().into()))
            }
            Value::List(vs) => JsonValue::List(vs.iter().map(Into::into).collect()),
        }
    }
}

impl From<&JsonValue> for Value {
    fn from(v: &JsonValue) -> Self {
        match v {
            JsonValue::Unit => Value::Unit,
            JsonValue::Ok => Value::Ok,
            JsonValue::Int(i) => Value::Int(*i),
            JsonValue::Bool(b) => Value::Bool(*b),
            JsonValue::Pair(a, b) => {
                Value::pair(a.as_ref().into(), b.as_ref().into())
            }
            JsonValue::List(vs) => Value::List(vs.iter().map(Into::into).collect()),
        }
    }
}

/// JSON mirror of [`Event`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum JsonEvent {
    /// Operation invocation.
    Inv {
        /// Transaction number (the `i` of `T_i`).
        tx: u32,
        /// Object name.
        obj: String,
        /// Operation name.
        op: String,
        /// Operation arguments.
        #[serde(default, skip_serializing_if = "Vec::is_empty")]
        args: Vec<JsonValue>,
    },
    /// Operation response.
    Ret {
        /// Transaction number.
        tx: u32,
        /// Object name.
        obj: String,
        /// Operation name.
        op: String,
        /// Returned value.
        val: JsonValue,
    },
    /// `tryC`.
    TryCommit {
        /// Transaction number.
        tx: u32,
    },
    /// `tryA`.
    TryAbort {
        /// Transaction number.
        tx: u32,
    },
    /// `C`.
    Commit {
        /// Transaction number.
        tx: u32,
    },
    /// `A`.
    Abort {
        /// Transaction number.
        tx: u32,
    },
}

/// The top-level JSON document: a version tag and the event sequence.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonTrace {
    /// Format version; [`from_json`] accepts only [`FORMAT_VERSION`].
    pub version: u32,
    /// The history's events, in order.
    pub events: Vec<JsonEvent>,
}

impl From<&Event> for JsonEvent {
    fn from(e: &Event) -> Self {
        match e {
            Event::Inv { tx, obj, op, args } => JsonEvent::Inv {
                tx: tx.0,
                obj: obj.name().to_string(),
                op: op.to_string(),
                args: args.iter().map(Into::into).collect(),
            },
            Event::Ret { tx, obj, op, val } => JsonEvent::Ret {
                tx: tx.0,
                obj: obj.name().to_string(),
                op: op.to_string(),
                val: val.into(),
            },
            Event::TryCommit(tx) => JsonEvent::TryCommit { tx: tx.0 },
            Event::TryAbort(tx) => JsonEvent::TryAbort { tx: tx.0 },
            Event::Commit(tx) => JsonEvent::Commit { tx: tx.0 },
            Event::Abort(tx) => JsonEvent::Abort { tx: tx.0 },
        }
    }
}

impl From<&JsonEvent> for Event {
    fn from(e: &JsonEvent) -> Self {
        match e {
            JsonEvent::Inv { tx, obj, op, args } => Event::Inv {
                tx: TxId(*tx),
                obj: ObjId::new(obj),
                op: op_from_str(op),
                args: args.iter().map(Into::into).collect(),
            },
            JsonEvent::Ret { tx, obj, op, val } => Event::Ret {
                tx: TxId(*tx),
                obj: ObjId::new(obj),
                op: op_from_str(op),
                val: val.into(),
            },
            JsonEvent::TryCommit { tx } => Event::TryCommit(TxId(*tx)),
            JsonEvent::TryAbort { tx } => Event::TryAbort(TxId(*tx)),
            JsonEvent::Commit { tx } => Event::Commit(TxId(*tx)),
            JsonEvent::Abort { tx } => Event::Abort(TxId(*tx)),
        }
    }
}

/// Serializes a history to the compact JSON trace format.
///
/// ```
/// use tm_model::HistoryBuilder;
/// use tm_trace::{to_json, from_json};
///
/// let h = HistoryBuilder::new().write(1, "x", 1).commit_ok(1).build();
/// let encoded = to_json(&h);
/// assert!(encoded.contains("\"version\":1"));
/// assert_eq!(from_json(&encoded).unwrap().events(), h.events());
/// ```
pub fn to_json(h: &History) -> String {
    let trace = JsonTrace {
        version: FORMAT_VERSION,
        events: h.events().iter().map(Into::into).collect(),
    };
    serde_json::to_string(&trace).expect("trace serialization is infallible")
}

/// Serializes a history to human-indented JSON.
pub fn to_json_pretty(h: &History) -> String {
    let trace = JsonTrace {
        version: FORMAT_VERSION,
        events: h.events().iter().map(Into::into).collect(),
    };
    serde_json::to_string_pretty(&trace).expect("trace serialization is infallible")
}

/// Parses a JSON trace back into a [`History`].
///
/// Rejects unknown format versions and JSON that does not match the schema.
/// The resulting history is *not* implicitly validated for well-formedness —
/// callers that require it (the checkers do) run
/// [`tm_model::check_well_formed`] themselves, which keeps this crate usable
/// for deliberately ill-formed fixtures.
pub fn from_json(s: &str) -> Result<History, ParseError> {
    let trace: JsonTrace =
        serde_json::from_str(s).map_err(|e| ParseError { line: e.line(), message: e.to_string() })?;
    if trace.version != FORMAT_VERSION {
        return Err(ParseError {
            line: 0,
            message: format!(
                "unsupported trace version {} (this build reads version {FORMAT_VERSION})",
                trace.version
            ),
        });
    }
    Ok(History::from_events(trace.events.iter().map(Into::into).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::HistoryBuilder;

    fn sample() -> History {
        HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 1)
            .try_commit(2)
            .abort(2)
            .build()
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let h = sample();
        for s in [to_json(&h), to_json_pretty(&h)] {
            let back = from_json(&s).unwrap();
            assert_eq!(back.events(), h.events());
        }
    }

    #[test]
    fn version_is_checked() {
        let s = to_json(&sample()).replace("\"version\":1", "\"version\":99");
        let e = from_json(&s).unwrap_err();
        assert!(e.message.contains("unsupported trace version 99"), "{e}");
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let e = from_json("{\n  \"version\": 1,\n  events: []\n}").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn all_value_shapes_roundtrip() {
        let vals = [
            Value::Unit,
            Value::Ok,
            Value::int(-7),
            Value::Bool(true),
            Value::pair(Value::int(1), Value::Ok),
            Value::List(vec![Value::int(1), Value::Bool(false), Value::Unit]),
        ];
        for v in vals {
            let j: JsonValue = (&v).into();
            let back: Value = (&j).into();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn custom_ops_survive() {
        let h = History::from_events(vec![
            Event::Inv {
                tx: TxId(1),
                obj: ObjId::new("widget"),
                op: op_from_str("frobnicate"),
                args: vec![Value::int(3)],
            },
            Event::Ret {
                tx: TxId(1),
                obj: ObjId::new("widget"),
                op: op_from_str("frobnicate"),
                val: Value::Bool(true),
            },
        ]);
        let back = from_json(&to_json(&h)).unwrap();
        assert_eq!(back.events(), h.events());
    }

    #[test]
    fn empty_history_roundtrips() {
        let h = History::new();
        assert_eq!(from_json(&to_json(&h)).unwrap().events(), h.events());
    }

    #[test]
    fn args_field_is_optional() {
        let s = r#"{"version":1,"events":[
            {"kind":"inv","tx":1,"obj":"x","op":"read"},
            {"kind":"ret","tx":1,"obj":"x","op":"read","val":{"int":0}}
        ]}"#;
        let h = from_json(s).unwrap();
        assert_eq!(h.len(), 2);
    }
}
