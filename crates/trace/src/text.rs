//! The compact line-oriented text trace format.
//!
//! One event per line; `#` starts a comment; blank lines are ignored.
//!
//! ```text
//! # Figure 1 (history H1)
//! inv T1 x write 1
//! ret T1 x write ok
//! tryC T1
//! C T1
//! inv T2 x read
//! ret T2 x read 1
//! ```
//!
//! * Transactions are written `T1` (the bare number `1` is also accepted).
//! * Values: integers (`-3`), `ok`, `unit` (also `_` and `⊥`), `true` /
//!   `false`, lists `[1,2,ok]`, pairs `(1,ok)` — all without internal
//!   whitespace, so events tokenize on spaces.
//! * Commit/abort lines: `tryC T1`, `tryA T1`, `C T1`, `A T1`.

use crate::{op_from_str, ParseError};
use tm_model::{Event, History, ObjId, TxId, Value};

/// Renders a value in the text format (ASCII-safe, no internal spaces).
fn value_to_text(v: &Value) -> String {
    match v {
        Value::Unit => "unit".to_string(),
        Value::Ok => "ok".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Pair(a, b) => format!("({},{})", value_to_text(a), value_to_text(b)),
        Value::List(vs) => {
            let inner: Vec<String> = vs.iter().map(value_to_text).collect();
            format!("[{}]", inner.join(","))
        }
    }
}

/// Serializes a history to the line-oriented text format.
pub fn to_text(h: &History) -> String {
    let mut out = String::new();
    for e in h.events() {
        match e {
            Event::Inv { tx, obj, op, args } => {
                out.push_str(&format!("inv T{} {} {}", tx.0, obj.name(), op));
                for a in args {
                    out.push(' ');
                    out.push_str(&value_to_text(a));
                }
            }
            Event::Ret { tx, obj, op, val } => {
                out.push_str(&format!(
                    "ret T{} {} {} {}",
                    tx.0,
                    obj.name(),
                    op,
                    value_to_text(val)
                ));
            }
            Event::TryCommit(tx) => out.push_str(&format!("tryC T{}", tx.0)),
            Event::TryAbort(tx) => out.push_str(&format!("tryA T{}", tx.0)),
            Event::Commit(tx) => out.push_str(&format!("C T{}", tx.0)),
            Event::Abort(tx) => out.push_str(&format!("A T{}", tx.0)),
        }
        out.push('\n');
    }
    out
}

/// Parses the line-oriented text format into a [`History`].
///
/// As with the JSON reader, well-formedness is *not* implicitly enforced —
/// fixtures for negative tests are legitimate inputs.
///
/// ```
/// let h = tm_trace::from_text("
///     inv T1 x write 5     # histories can be written by hand
///     ret T1 x write ok
///     tryC T1
///     C T1
/// ").unwrap();
/// assert!(tm_model::is_well_formed(&h));
/// assert_eq!(h.committed_txs().len(), 1);
/// ```
pub fn from_text(s: &str) -> Result<History, ParseError> {
    let mut events = Vec::new();
    for (i, raw) in s.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        events.push(parse_event(&tokens, line_no)?);
    }
    Ok(History::from_events(events))
}

fn parse_event(tokens: &[&str], line: usize) -> Result<Event, ParseError> {
    let kind = tokens[0];
    match kind {
        "inv" => {
            if tokens.len() < 4 {
                return Err(ParseError::at(
                    line,
                    "inv needs: inv <tx> <obj> <op> [args…]",
                ));
            }
            let tx = parse_tx(tokens[1], line)?;
            let obj = ObjId::new(tokens[2]);
            let op = op_from_str(tokens[3]);
            let args = tokens[4..]
                .iter()
                .map(|t| parse_value(t, line))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Event::Inv { tx, obj, op, args })
        }
        "ret" => {
            if tokens.len() != 5 {
                return Err(ParseError::at(line, "ret needs: ret <tx> <obj> <op> <val>"));
            }
            let tx = parse_tx(tokens[1], line)?;
            let obj = ObjId::new(tokens[2]);
            let op = op_from_str(tokens[3]);
            let val = parse_value(tokens[4], line)?;
            Ok(Event::Ret { tx, obj, op, val })
        }
        "tryC" | "tryA" | "C" | "A" => {
            if tokens.len() != 2 {
                return Err(ParseError::at(
                    line,
                    format!("{kind} needs exactly one transaction"),
                ));
            }
            let tx = parse_tx(tokens[1], line)?;
            Ok(match kind {
                "tryC" => Event::TryCommit(tx),
                "tryA" => Event::TryAbort(tx),
                "C" => Event::Commit(tx),
                _ => Event::Abort(tx),
            })
        }
        other => Err(ParseError::at(
            line,
            format!("unknown event kind '{other}' (expected inv/ret/tryC/tryA/C/A)"),
        )),
    }
}

fn parse_tx(token: &str, line: usize) -> Result<TxId, ParseError> {
    let digits = token.strip_prefix('T').unwrap_or(token);
    digits
        .parse::<u32>()
        .map(TxId)
        .map_err(|_| ParseError::at(line, format!("bad transaction id '{token}'")))
}

/// Parses one value token (recursive descent; no internal whitespace).
fn parse_value(token: &str, line: usize) -> Result<Value, ParseError> {
    let (v, rest) = parse_value_inner(token, line)?;
    if !rest.is_empty() {
        return Err(ParseError::at(
            line,
            format!("trailing input '{rest}' after value"),
        ));
    }
    Ok(v)
}

fn parse_value_inner(s: &str, line: usize) -> Result<(Value, &str), ParseError> {
    if let Some(rest) = s.strip_prefix('[') {
        let mut items = Vec::new();
        let mut cur = rest;
        if let Some(r) = cur.strip_prefix(']') {
            return Ok((Value::List(items), r));
        }
        loop {
            let (v, r) = parse_value_inner(cur, line)?;
            items.push(v);
            if let Some(r2) = r.strip_prefix(',') {
                cur = r2;
            } else if let Some(r2) = r.strip_prefix(']') {
                return Ok((Value::List(items), r2));
            } else {
                return Err(ParseError::at(
                    line,
                    format!("expected ',' or ']' in list near '{r}'"),
                ));
            }
        }
    }
    if let Some(rest) = s.strip_prefix('(') {
        let (a, r) = parse_value_inner(rest, line)?;
        let r = r
            .strip_prefix(',')
            .ok_or_else(|| ParseError::at(line, format!("expected ',' in pair near '{r}'")))?;
        let (b, r) = parse_value_inner(r, line)?;
        let r = r
            .strip_prefix(')')
            .ok_or_else(|| ParseError::at(line, format!("expected ')' in pair near '{r}'")))?;
        return Ok((Value::pair(a, b), r));
    }
    // Atom: longest prefix up to a delimiter.
    let end = s.find([',', ']', ')']).unwrap_or(s.len());
    let (atom, rest) = s.split_at(end);
    let v = match atom {
        "ok" => Value::Ok,
        "unit" | "_" | "⊥" => Value::Unit,
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        other => Value::Int(
            other
                .parse::<i64>()
                .map_err(|_| ParseError::at(line, format!("bad value atom '{other}'")))?,
        ),
    };
    Ok((v, rest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::HistoryBuilder;

    #[test]
    fn roundtrip_simple_history() {
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 1)
            .try_abort(2)
            .abort(2)
            .build();
        let back = from_text(&to_text(&h)).unwrap();
        assert_eq!(back.events(), h.events());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let src = "\n# a history\ninv T1 x write 5   # the write\nret T1 x write ok\n\n";
        let h = from_text(src).unwrap();
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn bare_numeric_tx_ids_accepted() {
        let h = from_text("tryC 3\nC 3\n").unwrap();
        assert_eq!(h.events()[0], Event::TryCommit(TxId(3)));
    }

    #[test]
    fn nested_values_roundtrip() {
        for src in ["[1,2,ok]", "(1,ok)", "[(1,true),[],unit]", "[]"] {
            let v = parse_value(src, 1).unwrap();
            assert_eq!(value_to_text(&v), src);
            let again = parse_value(&value_to_text(&v), 1).unwrap();
            assert_eq!(again, v);
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = from_text("inv T1 x write 1\nret T1 x\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("ret needs"));
        let e = from_text("boom T1\n").unwrap_err();
        assert!(e.message.contains("unknown event kind"));
        let e = from_text("inv Tx x read\n").unwrap_err();
        assert!(e.message.contains("bad transaction id"));
        let e = from_text("ret T1 x read 1]\n").unwrap_err();
        assert!(e.message.contains("trailing input"));
    }

    #[test]
    fn unicode_bottom_is_accepted_on_input() {
        let h = from_text("ret T1 q deq ⊥\n").unwrap();
        match &h.events()[0] {
            Event::Ret { val, .. } => assert_eq!(*val, Value::Unit),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn figure1_fixture_parses_and_checks() {
        // The paper's H1 as a text fixture — parsable and well-formed.
        let src = "\
# Figure 1 (H1): global atomicity + recoverability hold, opacity fails
inv T1 x write 1\nret T1 x write ok\ntryC T1\nC T1
inv T2 x read\nret T2 x read 1
inv T3 x write 2\nret T3 x write ok
inv T3 y write 2\nret T3 y write ok\ntryC T3\nC T3
inv T2 y read\nret T2 y read 2\ntryC T2\nA T2\n";
        let h = from_text(src).unwrap();
        assert!(tm_model::is_well_formed(&h));
        assert_eq!(h.committed_txs().len(), 2);
    }
}
