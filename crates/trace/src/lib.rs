//! # tm-trace — history interchange formats
//!
//! The checkers in `tm-opacity` operate on in-memory [`tm_model::History`]
//! values. For a checker to be *usable* — against traces recorded by other
//! TM implementations, in CI pipelines, or from the `tmcheck` command-line
//! tool — histories need a durable surface syntax. This crate provides two:
//!
//! * **JSON** ([`json`]) — a versioned, self-describing format for
//!   machine-to-machine interchange:
//!
//!   ```json
//!   { "version": 1,
//!     "events": [
//!       { "kind": "inv", "tx": 1, "obj": "x", "op": "write", "args": [{"int": 1}] },
//!       { "kind": "ret", "tx": 1, "obj": "x", "op": "write", "val": "ok" },
//!       { "kind": "try_commit", "tx": 1 },
//!       { "kind": "commit", "tx": 1 } ] }
//!   ```
//!
//! * **text** ([`text`]) — a compact line-oriented format for hand-written
//!   histories and test fixtures, one event per line, `#` comments:
//!
//!   ```text
//!   # Figure 1 of the paper
//!   inv  T1 x write 1
//!   ret  T1 x write ok
//!   tryC T1
//!   C    T1
//!   ```
//!
//! Both formats round-trip losslessly through [`tm_model::History`]
//! (property-tested against the random history generator), and both reject
//! malformed input with positioned errors rather than panics.
//!
//! A third, write-only surface ([`spans`]) renders `tm-obs` span records
//! as Chrome Trace Event JSON (`chrome://tracing` / Perfetto) — the
//! `tmcheck … --trace-out` artifact.
//!
//! Dependency note: the JSON surface is hand-rolled over a tiny internal
//! document model (see [`json`]) rather than pulling in `serde`/`serde_json`
//! — the build environment is offline and the schema is small. The wire
//! format keeps serde's tagging conventions, so traces remain interchangeable
//! with serde-derived readers and the dependency can be reinstated without a
//! format change.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod spans;
pub mod text;

use std::fmt;
use std::sync::Arc;

use tm_model::OpName;

pub use json::{event_from_doc, event_to_doc, from_json, to_json, to_json_pretty, Json};
pub use spans::{chrome_trace_json, TRACE_SCHEMA_VERSION};
pub use text::{from_text, to_text};

/// An error produced while parsing a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 when the format has no line structure, e.g.
    /// a JSON syntax error reported by the underlying parser).
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses an operation name; unknown names become [`OpName::Custom`].
pub fn op_from_str(s: &str) -> OpName {
    match s {
        "read" => OpName::Read,
        "write" => OpName::Write,
        "inc" => OpName::Inc,
        "dec" => OpName::Dec,
        "get" => OpName::Get,
        "enq" => OpName::Enq,
        "deq" => OpName::Deq,
        "push" => OpName::Push,
        "pop" => OpName::Pop,
        "insert" => OpName::Insert,
        "remove" => OpName::Remove,
        "contains" => OpName::Contains,
        "cas" => OpName::Cas,
        "append" => OpName::Append,
        other => OpName::Custom(Arc::from(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_names_roundtrip_through_display() {
        for name in [
            "read",
            "write",
            "inc",
            "dec",
            "get",
            "enq",
            "deq",
            "push",
            "pop",
            "insert",
            "remove",
            "contains",
            "cas",
            "append",
            "frobnicate",
        ] {
            assert_eq!(op_from_str(name).to_string(), name);
        }
    }

    #[test]
    fn parse_error_display() {
        assert_eq!(ParseError::at(3, "bad").to_string(), "line 3: bad");
        assert_eq!(ParseError::at(0, "syntax").to_string(), "syntax");
    }
}
