//! Chrome-trace emission for `tm-obs` span records.
//!
//! Renders the spans drained from an observability sink as the Chrome
//! Trace Event JSON format (the `chrome://tracing` / Perfetto "JSON object
//! format"): a top-level object whose `traceEvents` array holds one
//! complete (`"ph": "X"`) event per span, microsecond timestamps, one
//! `pid`, and the sink's dense thread ids as `tid` lanes. A
//! `schemaVersion` tag versions *our* envelope; trace viewers ignore
//! unknown top-level keys, so the file loads in Perfetto as-is.
//!
//! Schema policy (see DESIGN.md): `schemaVersion` only ever increments,
//! and existing keys are never repurposed — a future reader can always
//! dispatch on the tag.

use tm_obs::SpanRecord;

/// Version tag of the trace envelope written by [`chrome_trace_json`].
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Renders span records as a Chrome Trace Event JSON document.
///
/// Span names and categories are compile-time identifiers in this
/// workspace, but they are escaped anyway so the emitter never produces
/// invalid JSON.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\n\"schemaVersion\": ");
    out.push_str(&TRACE_SCHEMA_VERSION.to_string());
    out.push_str(",\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"name\": \"");
        escape_into(&mut out, s.name);
        out.push_str("\", \"cat\": \"");
        escape_into(&mut out, s.cat);
        out.push_str("\", \"ph\": \"X\", \"ts\": ");
        out.push_str(&s.ts_us.to_string());
        out.push_str(", \"dur\": ");
        out.push_str(&s.dur_us.to_string());
        out.push_str(", \"pid\": 1, \"tid\": ");
        out.push_str(&s.tid.to_string());
        out.push('}');
    }
    if !spans.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::from_json;

    fn record(name: &'static str, ts_us: u64, dur_us: u64, tid: u64) -> SpanRecord {
        SpanRecord {
            name,
            cat: "test",
            ts_us,
            dur_us,
            tid,
            seq: ts_us,
        }
    }

    #[test]
    fn emits_complete_events_with_schema_tag() {
        let json = chrome_trace_json(&[record("check", 10, 250, 0), record("task", 40, 9, 1)]);
        assert!(json.contains("\"schemaVersion\": 1"), "{json}");
        assert!(json.contains("\"traceEvents\": ["), "{json}");
        assert!(
            json.contains("\"name\": \"check\", \"cat\": \"test\", \"ph\": \"X\", \"ts\": 10, \"dur\": 250, \"pid\": 1, \"tid\": 0"),
            "{json}"
        );
        assert!(json.contains("\"tid\": 1"), "{json}");
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("\"traceEvents\": []"), "{json}");
    }

    #[test]
    fn output_is_well_formed_json() {
        // The history JSON parser rejects any syntactically invalid JSON
        // before it ever looks at the schema — reuse it as a syntax check.
        for spans in [
            vec![],
            vec![record("a", 0, 1, 0)],
            vec![record("a", 0, 1, 0), record("quote\"back\\slash", 2, 3, 7)],
        ] {
            let json = chrome_trace_json(&spans);
            // A syntactically broken document fails in the JSON parser
            // ("expected …"/"unterminated …"); a well-formed one reaches
            // the history schema check and is rejected for lacking the
            // `version` field.
            let err = from_json(&json).expect_err("not a history document");
            assert!(
                err.message.contains("missing integer `version` field"),
                "emitter produced syntactically invalid JSON: {} in {json}",
                err.message
            );
        }
    }

    #[test]
    fn real_spans_from_a_sink_render() {
        let obs = tm_obs::ObsHandle::install();
        {
            let _outer = obs.span("check", "search");
            let _inner = obs.span("dfs", "search");
        }
        let json = chrome_trace_json(&obs.spans());
        assert!(json.contains("\"name\": \"check\""), "{json}");
        assert!(json.contains("\"name\": \"dfs\""), "{json}");
        assert!(json.contains("\"cat\": \"search\""), "{json}");
    }
}
