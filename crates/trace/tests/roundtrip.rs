//! Property tests: both trace formats round-trip random well-formed
//! histories losslessly, and the composition of the two formats is also
//! lossless (JSON → History → text → History).

use proptest::prelude::*;

use tm_harness::{random_history, GenConfig};
use tm_trace::{from_json, from_text, to_json, to_json_pretty, to_text};

fn config(txs: usize, objs: usize, max_ops: usize, noise: f64) -> GenConfig {
    GenConfig {
        txs,
        objs,
        max_ops,
        noise,
        commit_pending: 0.2,
        abort: 0.25,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn json_roundtrips_random_histories(
        seed in 0u64..1_000_000,
        txs in 1usize..6,
        objs in 1usize..4,
        ops in 1usize..6,
    ) {
        let h = random_history(&config(txs, objs, ops, 0.3), seed);
        let back = from_json(&to_json(&h)).unwrap();
        prop_assert_eq!(back.events(), h.events());
        let back = from_json(&to_json_pretty(&h)).unwrap();
        prop_assert_eq!(back.events(), h.events());
    }

    #[test]
    fn text_roundtrips_random_histories(
        seed in 0u64..1_000_000,
        txs in 1usize..6,
        objs in 1usize..4,
        ops in 1usize..6,
    ) {
        let h = random_history(&config(txs, objs, ops, 0.3), seed);
        let back = from_text(&to_text(&h)).unwrap();
        prop_assert_eq!(back.events(), h.events());
    }

    #[test]
    fn formats_compose(
        seed in 0u64..1_000_000,
    ) {
        let h = random_history(&GenConfig::default(), seed);
        let via_both = from_text(&to_text(&from_json(&to_json(&h)).unwrap())).unwrap();
        prop_assert_eq!(via_both.events(), h.events());
    }

    #[test]
    fn wellformedness_is_preserved(
        seed in 0u64..1_000_000,
    ) {
        // The generator emits well-formed histories; parsing must not
        // perturb that (nor silently reorder events).
        let h = random_history(&GenConfig::default(), seed);
        prop_assume!(tm_model::is_well_formed(&h));
        let back = from_json(&to_json(&h)).unwrap();
        prop_assert!(tm_model::is_well_formed(&back));
    }
}

#[test]
fn paper_histories_roundtrip_both_formats() {
    use tm_model::builder::paper;
    for h in [
        paper::h1(),
        paper::h2(),
        paper::h3(),
        paper::h4(),
        paper::h5(),
    ] {
        assert_eq!(from_json(&to_json(&h)).unwrap().events(), h.events());
        assert_eq!(from_text(&to_text(&h)).unwrap().events(), h.events());
    }
}
