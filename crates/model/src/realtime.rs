//! The real-time (happen-before) order of transactions, `≺_H` (Section 4).
//!
//! For transactions `Ti, Tj ∈ H`: `Ti ≺_H Tj` iff `Ti` is completed and the
//! first event of `Tj` follows the last event of `Ti` in `H`. Transactions
//! unordered by `≺_H` are *concurrent*. A history `H'` preserves the
//! real-time order of `H` iff `≺_H ⊆ ≺_H'`.

use crate::event::TxId;
use crate::history::History;
use std::collections::HashMap;

/// The real-time partial order of a history, pre-computed for O(1) queries.
#[derive(Clone, Debug)]
pub struct RealTimeOrder {
    /// For each transaction: (first event index, last event index, completed).
    spans: HashMap<TxId, (usize, usize, bool)>,
    /// Transactions in first-event order.
    txs: Vec<TxId>,
}

impl RealTimeOrder {
    /// Computes `≺_H` for `h`.
    pub fn of(h: &History) -> Self {
        let mut spans = HashMap::new();
        let txs = h.txs();
        for &t in &txs {
            let first = h.first_event_index(t).expect("tx in txs() has events");
            let last = h.last_event_index(t).expect("tx in txs() has events");
            let completed = h.status(t).is_completed();
            spans.insert(t, (first, last, completed));
        }
        RealTimeOrder { spans, txs }
    }

    /// The transactions covered by this order.
    pub fn txs(&self) -> &[TxId] {
        &self.txs
    }

    /// `Ti ≺_H Tj`?
    pub fn precedes(&self, ti: TxId, tj: TxId) -> bool {
        if ti == tj {
            return false;
        }
        match (self.spans.get(&ti), self.spans.get(&tj)) {
            (Some(&(_, last_i, completed_i)), Some(&(first_j, _, _))) => {
                completed_i && last_i < first_j
            }
            _ => false,
        }
    }

    /// True if `ti` and `tj` are concurrent (both in `H`, unordered by `≺_H`).
    pub fn concurrent(&self, ti: TxId, tj: TxId) -> bool {
        ti != tj
            && self.spans.contains_key(&ti)
            && self.spans.contains_key(&tj)
            && !self.precedes(ti, tj)
            && !self.precedes(tj, ti)
    }

    /// All ordered pairs `(Ti, Tj)` with `Ti ≺_H Tj`.
    pub fn pairs(&self) -> Vec<(TxId, TxId)> {
        let mut out = Vec::new();
        for &a in &self.txs {
            for &b in &self.txs {
                if self.precedes(a, b) {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// The real-time predecessors of `t`.
    pub fn predecessors(&self, t: TxId) -> Vec<TxId> {
        self.txs
            .iter()
            .copied()
            .filter(|&s| self.precedes(s, t))
            .collect()
    }

    /// True if `other`'s real-time order contains this one (`≺_H ⊆ ≺_H'`),
    /// i.e. `H'` preserves the real-time order of `H`.
    pub fn preserved_by(&self, other: &RealTimeOrder) -> bool {
        self.pairs().iter().all(|&(a, b)| other.precedes(a, b))
    }
}

/// True if `h_prime` preserves the real-time order of `h`.
pub fn preserves_real_time(h: &History, h_prime: &History) -> bool {
    RealTimeOrder::of(h).preserved_by(&RealTimeOrder::of(h_prime))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{paper, HistoryBuilder};

    #[test]
    fn h1_order_matches_paper() {
        // "In H1, transactions T2 and T3 are concurrent, T1 ≺ T2, T1 ≺ T3."
        let rt = RealTimeOrder::of(&paper::h1());
        assert!(rt.precedes(TxId(1), TxId(2)));
        assert!(rt.precedes(TxId(1), TxId(3)));
        assert!(rt.concurrent(TxId(2), TxId(3)));
        assert!(!rt.precedes(TxId(2), TxId(3)));
        assert!(!rt.precedes(TxId(3), TxId(2)));
        let mut pairs = rt.pairs();
        pairs.sort();
        assert_eq!(pairs, vec![(TxId(1), TxId(2)), (TxId(1), TxId(3))]);
    }

    #[test]
    fn h2_preserves_real_time_of_h1() {
        // "Any history H for which T1 ≺ T2 and T1 ≺ T3 (e.g. H2) preserves
        // the real-time order of H1."
        assert!(preserves_real_time(&paper::h1(), &paper::h2()));
        // H1 does NOT preserve the real-time order of H2 (H2 adds T3 ≺ T2).
        assert!(!preserves_real_time(&paper::h2(), &paper::h1()));
    }

    #[test]
    fn incomplete_tx_precedes_nothing() {
        // A live transaction is not ordered before anything, even if its
        // events all occur earlier.
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .read(2, "x", 0)
            .commit_ok(2)
            .build();
        let rt = RealTimeOrder::of(&h);
        assert!(!rt.precedes(TxId(1), TxId(2)));
        assert!(rt.concurrent(TxId(1), TxId(2)));
    }

    #[test]
    fn h4_all_pairwise_concurrent() {
        // "the three transactions in H4 are pairwise concurrent"
        let rt = RealTimeOrder::of(&paper::h4());
        for a in [1, 2, 3] {
            for b in [1, 2, 3] {
                if a != b {
                    assert!(rt.concurrent(TxId(a), TxId(b)), "T{a} vs T{b}");
                }
            }
        }
        assert!(rt.pairs().is_empty());
    }

    #[test]
    fn predecessors_and_self() {
        let rt = RealTimeOrder::of(&paper::h1());
        assert_eq!(rt.predecessors(TxId(2)), vec![TxId(1)]);
        assert_eq!(rt.predecessors(TxId(1)), vec![]);
        assert!(!rt.precedes(TxId(1), TxId(1)));
        assert!(!rt.concurrent(TxId(1), TxId(1)));
    }

    #[test]
    fn empty_history_trivial() {
        let rt = RealTimeOrder::of(&History::new());
        assert!(rt.pairs().is_empty());
        assert!(rt.txs().is_empty());
    }

    #[test]
    fn unknown_tx_not_ordered() {
        let rt = RealTimeOrder::of(&paper::h1());
        assert!(!rt.precedes(TxId(1), TxId(42)));
        assert!(!rt.concurrent(TxId(1), TxId(42)));
    }

    use crate::history::History;
}
