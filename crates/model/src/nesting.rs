//! Nested transactions (Section 7).
//!
//! The paper sketches how the flat model extends to nesting:
//!
//! * **closed nesting** (Moss): "we can treat events of each committed
//!   nested transaction as if they were executed directly by the parent
//!   transaction";
//! * **open nesting**: a committed open-nested transaction commits
//!   *independently* of its parent — its effects become visible immediately
//!   and survive a later parent abort;
//! * aborted and live nested transactions "can be accounted for in a
//!   similar way as we deal with aborted and live (flat) transactions",
//!   with one addition: "a nested transaction should observe the changes
//!   done by its parent. We can capture this by always considering
//!   operations of a nested transaction together with all the preceding
//!   operations of its parent transaction."
//!
//! [`flatten`] implements exactly this translation: given a history whose
//! transactions carry parent/mode annotations, it produces the flat history
//! that the ordinary opacity machinery can check:
//!
//! * committed **closed** children are re-attributed to their parent (their
//!   `tryC`/`C` events disappear — a closed commit is internal);
//! * committed **open** children stay as independent committed
//!   transactions;
//! * aborted/live children (either mode) become flat transactions whose
//!   operation sequence is *prefixed with the parent's operations that
//!   preceded the child* — so their legality is judged against the state
//!   the child actually observed.
//!
//! The translation supports one level of nesting (children of top-level
//! transactions), matching the paper's discussion; deeper trees can be
//! flattened by applying the translation bottom-up.

use std::collections::HashMap;

use crate::event::{Event, TxId};
use crate::history::History;
use crate::ops::TxStatus;

/// Nesting semantics of one nested transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NestingMode {
    /// Closed nesting: a commit merges the child into the parent.
    Closed,
    /// Open nesting: a commit publishes immediately, independent of the
    /// parent.
    Open,
}

/// The nesting structure of a history: which transactions are children of
/// which parents, and with which semantics.
#[derive(Clone, Debug, Default)]
pub struct NestingInfo {
    children: HashMap<TxId, (TxId, NestingMode)>,
}

impl NestingInfo {
    /// No nesting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `child` as a nested transaction of `parent`.
    pub fn child(mut self, child: u32, parent: u32, mode: NestingMode) -> Self {
        self.children.insert(TxId(child), (TxId(parent), mode));
        self
    }

    /// The parent and mode of `t`, if it is nested.
    pub fn parent_of(&self, t: TxId) -> Option<(TxId, NestingMode)> {
        self.children.get(&t).copied()
    }
}

/// Flattens a nested history into an equivalent flat history per the
/// Section 7 translation (see the module docs).
///
/// Panics if a declared child's parent does not appear in the history or if
/// nesting is deeper than one level (flatten bottom-up instead).
pub fn flatten(h: &History, nesting: &NestingInfo) -> History {
    for (child, (parent, _)) in &nesting.children {
        assert!(
            h.contains_tx(*parent),
            "parent {parent} of {child} not in history"
        );
        assert!(
            nesting.parent_of(*parent).is_none(),
            "nesting deeper than one level: flatten bottom-up"
        );
    }

    let mut out = History::new();
    for (i, e) in h.events().iter().enumerate() {
        let t = e.tx();
        match nesting.parent_of(t) {
            None => out.push(e.clone()),
            Some((parent, mode)) => {
                let status = h.status(t);
                match (mode, status) {
                    // Committed closed child: events belong to the parent;
                    // the internal tryC/C vanish.
                    (NestingMode::Closed, TxStatus::Committed) => match e {
                        Event::TryCommit(_) | Event::Commit(_) => {}
                        Event::Inv { obj, op, args, .. } => out.push(Event::Inv {
                            tx: parent,
                            obj: obj.clone(),
                            op: op.clone(),
                            args: args.clone(),
                        }),
                        Event::Ret { obj, op, val, .. } => out.push(Event::Ret {
                            tx: parent,
                            obj: obj.clone(),
                            op: op.clone(),
                            val: val.clone(),
                        }),
                        other => panic!("unexpected child event {other}"),
                    },
                    // Committed open child: an independent transaction.
                    (NestingMode::Open, TxStatus::Committed) => out.push(e.clone()),
                    // Aborted/live child (either mode): keep its events
                    // under its own id, and splice in the parent's preceding
                    // operations at the child's first event so its legality
                    // is judged with the parent context.
                    _ => {
                        if h.first_event_index(t) == Some(i) {
                            for pe in h.events().iter().take(i) {
                                if pe.tx() == parent {
                                    match pe {
                                        Event::Inv { obj, op, args, .. } => out.push(Event::Inv {
                                            tx: t,
                                            obj: obj.clone(),
                                            op: op.clone(),
                                            args: args.clone(),
                                        }),
                                        Event::Ret { obj, op, val, .. } => out.push(Event::Ret {
                                            tx: t,
                                            obj: obj.clone(),
                                            op: op.clone(),
                                            val: val.clone(),
                                        }),
                                        _ => {}
                                    }
                                }
                            }
                        }
                        out.push(e.clone());
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::wellformed::is_well_formed;

    /// Parent T1 writes x; closed child T10 reads the parent's write and
    /// writes y; child commits; parent commits.
    fn closed_commit_history() -> (History, NestingInfo) {
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .read(10, "x", 1) // child sees the parent's buffered write
            .write(10, "y", 2)
            .commit_ok(10) // closed commit: internal
            .commit_ok(1)
            .build();
        (h, NestingInfo::new().child(10, 1, NestingMode::Closed))
    }

    #[test]
    fn committed_closed_child_merges_into_parent() {
        let (h, n) = closed_commit_history();
        let flat = flatten(&h, &n);
        assert!(is_well_formed(&flat), "{flat}");
        // Single committed transaction T1 with the child's ops inlined.
        assert_eq!(flat.txs(), vec![TxId(1)]);
        let ops = flat.tx_view(TxId(1)).ops;
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[1].to_string(), "read1(x,1)");
        assert_eq!(ops[2].to_string(), "write1(y,2)");
    }

    #[test]
    fn aborted_closed_child_keeps_parent_context() {
        // Child reads the parent's uncommitted write then aborts; the
        // parent commits. Without the parent-prefix splice, the child's
        // read of x = 1 would look illegal (x was never committed as 1 at
        // that point by anyone else).
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .read(20, "x", 1)
            .try_abort(20)
            .abort(20)
            .commit_ok(1)
            .build();
        let n = NestingInfo::new().child(20, 1, NestingMode::Closed);
        let flat = flatten(&h, &n);
        assert!(is_well_formed(&flat), "{flat}");
        // The child survives as an aborted flat transaction whose first op
        // is the spliced parent write.
        let child_ops = flat.tx_view(TxId(20)).ops;
        assert_eq!(child_ops.len(), 2);
        assert_eq!(child_ops[0].to_string(), "write20(x,1)");
        assert_eq!(child_ops[1].to_string(), "read20(x,1)");
        assert!(flat.status(TxId(20)).is_aborted());
        assert!(flat.status(TxId(1)).is_committed());
    }

    #[test]
    fn committed_open_child_stays_independent() {
        // Open child T30 commits while parent T1 is live; parent later
        // aborts — the child's effects must survive.
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .write(30, "y", 5)
            .commit_ok(30) // open commit: real
            .read(2, "y", 5) // another transaction sees it immediately
            .commit_ok(2)
            .try_abort(1)
            .abort(1)
            .build();
        let n = NestingInfo::new().child(30, 1, NestingMode::Open);
        let flat = flatten(&h, &n);
        assert!(is_well_formed(&flat), "{flat}");
        assert!(flat.status(TxId(30)).is_committed());
        assert!(flat.status(TxId(1)).is_aborted());
        assert!(flat.status(TxId(2)).is_committed());
    }

    #[test]
    #[should_panic(expected = "parent")]
    fn missing_parent_panics() {
        let h = HistoryBuilder::new().read(5, "x", 0).commit_ok(5).build();
        let n = NestingInfo::new().child(5, 99, NestingMode::Closed);
        flatten(&h, &n);
    }

    #[test]
    #[should_panic(expected = "bottom-up")]
    fn deep_nesting_rejected() {
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .read(2, "x", 0)
            .read(3, "x", 0)
            .commit_ok(3)
            .commit_ok(2)
            .commit_ok(1)
            .build();
        let n =
            NestingInfo::new()
                .child(2, 1, NestingMode::Closed)
                .child(3, 2, NestingMode::Closed);
        flatten(&h, &n);
    }

    #[test]
    fn unnested_history_is_unchanged() {
        let h = HistoryBuilder::new().write(1, "x", 1).commit_ok(1).build();
        assert_eq!(flatten(&h, &NestingInfo::new()), h);
    }
}
