//! Completions of a history: the set `Complete(H)` (Section 4).
//!
//! A history `H'` is in `Complete(H)` iff it is well-formed, obtained from
//! `H` by inserting commit-try, commit, and abort events for live
//! transactions, such that every live non-commit-pending transaction of `H`
//! is aborted in `H'`, and every commit-pending transaction of `H` is either
//! committed or aborted in `H'`.
//!
//! Definition 1 quantifies the real-time requirement over `H` itself (not the
//! completion), and history equivalence only inspects per-transaction event
//! sequences, so for checking purposes it suffices to enumerate completions
//! that append the inserted events at the end of `H`. This module enumerates
//! those canonical members: one per assignment of commit/abort to the
//! commit-pending transactions (`2^p` members for `p` commit-pending
//! transactions).

use crate::event::{Event, TxId};
use crate::history::History;
use crate::ops::TxStatus;

/// The decision taken for one commit-pending transaction in a completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommitDecision {
    /// The commit-pending transaction is committed in the completion.
    Commit,
    /// The commit-pending transaction is aborted in the completion.
    Abort,
}

/// One completion choice: which commit-pending transactions commit.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Completion {
    /// Per-commit-pending-transaction decisions, in `H.txs()` order.
    pub decisions: Vec<(TxId, CommitDecision)>,
}

/// Applies a completion choice to `h`, appending terminal events at the end.
///
/// * commit-pending transactions get `C` or `A` per the decision;
/// * abort-pending transactions get `A`;
/// * live transactions with a pending operation invocation get `A` (the
///   abort answers the pending invocation, terminal shape `⟨inv, A⟩`);
/// * other live transactions get `tryC · A` — the definition only allows
///   inserting commit-try, commit, and abort events, so the forceful-abort
///   shape `⟨tryC, A⟩` is the only well-formed choice (this matches the
///   paper's `H″3`, where `T2` ends with `tryC2, A2` and is *forcefully*
///   aborted).
pub fn apply_completion(h: &History, completion: &Completion) -> History {
    let mut out = h.clone();
    for t in h.txs() {
        match h.status(t) {
            TxStatus::Committed | TxStatus::Aborted | TxStatus::ForcefullyAborted => {}
            TxStatus::CommitPending => {
                let d = completion
                    .decisions
                    .iter()
                    .find(|(ct, _)| *ct == t)
                    .map(|(_, d)| *d)
                    .unwrap_or(CommitDecision::Abort);
                match d {
                    CommitDecision::Commit => out.push(Event::Commit(t)),
                    CommitDecision::Abort => out.push(Event::Abort(t)),
                }
            }
            TxStatus::AbortPending => out.push(Event::Abort(t)),
            TxStatus::Live => {
                if h.has_pending_invocation(t) {
                    out.push(Event::Abort(t));
                } else {
                    out.push(Event::TryCommit(t));
                    out.push(Event::Abort(t));
                }
            }
        }
    }
    out
}

/// Enumerates the canonical members of `Complete(H)`: all `2^p` assignments
/// of commit/abort to the `p` commit-pending transactions of `H`.
///
/// Returns the completion choices; pair each with [`apply_completion`] to
/// materialize the history. Panics if `p > 20` (the checker never needs such
/// histories; this guards against runaway enumeration).
pub fn completions(h: &History) -> Vec<Completion> {
    let pending = h.commit_pending_txs();
    assert!(
        pending.len() <= 20,
        "refusing to enumerate 2^{} completions",
        pending.len()
    );
    let p = pending.len();
    let mut out = Vec::with_capacity(1 << p);
    for mask in 0u32..(1u32 << p) {
        let decisions = pending
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let d = if mask & (1 << i) != 0 {
                    CommitDecision::Commit
                } else {
                    CommitDecision::Abort
                };
                (t, d)
            })
            .collect();
        out.push(Completion { decisions });
    }
    out
}

/// Enumerates the canonical completed histories of `Complete(H)` directly.
pub fn complete_histories(h: &History) -> Vec<History> {
    completions(h)
        .iter()
        .map(|c| apply_completion(h, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{paper, HistoryBuilder};
    use crate::wellformed::is_well_formed;

    #[test]
    fn complete_history_is_untouched() {
        // H1 is complete: Complete(H1) = {H1}.
        let h = paper::h1();
        let cs = complete_histories(&h);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0], h);
    }

    #[test]
    fn h3_completions_match_paper() {
        // In each member of Complete(H3): T1 is committed or aborted and T2
        // is forcefully aborted (Section 4).
        let h = paper::h3();
        let cs = complete_histories(&h);
        assert_eq!(cs.len(), 2); // one commit-pending transaction: T1
        for c in &cs {
            assert!(is_well_formed(c), "{c}");
            assert!(c.is_complete());
            assert!(c.status(TxId(1)).is_completed());
            assert_eq!(c.status(TxId(2)), TxStatus::ForcefullyAborted);
        }
        // Exactly one completion commits T1.
        let committed: Vec<_> = cs
            .iter()
            .filter(|c| c.status(TxId(1)).is_committed())
            .collect();
        assert_eq!(committed.len(), 1);
    }

    #[test]
    fn h4_has_two_completions_for_t2() {
        let h = paper::h4();
        // T2 is commit-pending; T1 and T3 are live (aborted in completions).
        let cs = complete_histories(&h);
        assert_eq!(cs.len(), 2);
        for c in &cs {
            assert!(is_well_formed(c), "{c}");
            assert!(c.status(TxId(1)).is_aborted());
            assert!(c.status(TxId(3)).is_aborted());
        }
    }

    #[test]
    fn pending_invocation_answered_by_abort() {
        let h = HistoryBuilder::new().inv_read(1, "x").build();
        let cs = complete_histories(&h);
        assert_eq!(cs.len(), 1);
        assert!(is_well_formed(&cs[0]), "{}", cs[0]);
        assert_eq!(cs[0].status(TxId(1)), TxStatus::ForcefullyAborted);
        // The completion must NOT insert a tryA before the abort (that would
        // be ill-formed while an operation invocation is pending).
        assert_eq!(cs[0].len(), h.len() + 1);
    }

    #[test]
    fn abort_pending_gets_abort() {
        let h = HistoryBuilder::new().read(1, "x", 0).try_abort(1).build();
        let cs = complete_histories(&h);
        assert_eq!(cs.len(), 1);
        assert!(is_well_formed(&cs[0]));
        assert_eq!(cs[0].status(TxId(1)), TxStatus::Aborted);
    }

    #[test]
    fn idle_live_tx_gets_forceful_abort() {
        let h = HistoryBuilder::new().read(1, "x", 0).build();
        let cs = complete_histories(&h);
        assert_eq!(cs.len(), 1);
        assert!(is_well_formed(&cs[0]));
        // Only tryC/C/A may be inserted: the shape is ⟨tryC, A⟩.
        assert_eq!(cs[0].len(), h.len() + 2);
        assert_eq!(cs[0].status(TxId(1)), TxStatus::ForcefullyAborted);
    }

    #[test]
    fn two_commit_pending_gives_four_completions() {
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .try_commit(1)
            .write(2, "y", 1)
            .try_commit(2)
            .build();
        let cs = complete_histories(&h);
        assert_eq!(cs.len(), 4);
        let mut outcomes: Vec<(bool, bool)> = cs
            .iter()
            .map(|c| {
                (
                    c.status(TxId(1)).is_committed(),
                    c.status(TxId(2)).is_committed(),
                )
            })
            .collect();
        outcomes.sort();
        assert_eq!(
            outcomes,
            vec![(false, false), (false, true), (true, false), (true, true)]
        );
    }

    #[test]
    fn all_completions_well_formed_for_paper_histories() {
        for h in [
            paper::h1(),
            paper::h2(),
            paper::h3(),
            paper::h4(),
            paper::h5(),
        ] {
            for c in complete_histories(&h) {
                assert!(is_well_formed(&c), "completion of {h}");
                assert!(c.is_complete());
            }
        }
    }
}
