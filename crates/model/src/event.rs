//! Transactional events: the alphabet of histories.
//!
//! Following Section 4 of the paper, a transaction `Ti` communicates with the
//! TM through six kinds of events:
//!
//! * an *operation invocation* `inv_i(ob, op, args)`,
//! * a matching *operation response* `ret_i(ob, op, val)`,
//! * a *commit-try* event `tryC_i` and matching *commit* `C_i` / *abort*
//!   `A_i`,
//! * an *abort-try* event `tryA_i` and matching *abort* `A_i`.
//!
//! An abort event may also answer a pending operation invocation (the TM
//! aborts a transaction instead of responding to its operation).
//!
//! Invocation events (operation invocations, `tryC`, `tryA`) are initiated by
//! transactions; response events (operation responses, `C`, `A`) by the TM.

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A transaction identifier, the `Ti` of the paper.
///
/// Identifiers are unique per history; retrying an aborted transaction is a
/// *new* transaction with a fresh identifier (Section 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub u32);

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A shared-object identifier.
///
/// Backed by a reference-counted string so that hand-written histories can use
/// the paper's names (`x`, `y`, `z`) while generated workloads use `r0..r{k}`.
/// Cloning is cheap (an `Arc` bump).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(Arc<str>);

impl ObjId {
    /// Creates an object identifier from a name.
    pub fn new(name: &str) -> Self {
        ObjId(Arc::from(name))
    }

    /// Creates the identifier `r{index}`, the convention used by generated
    /// workloads over a dense universe of `k` registers.
    pub fn register(index: usize) -> Self {
        ObjId(Arc::from(format!("r{index}").as_str()))
    }

    /// The object's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl From<&str> for ObjId {
    fn from(name: &str) -> Self {
        ObjId::new(name)
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The name of an operation exported by a shared object.
///
/// Common operations get dedicated variants so sequential specifications can
/// match on them cheaply; arbitrary further operations use
/// [`OpName::Custom`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpName {
    /// `read() -> v` on a register.
    Read,
    /// `write(v) -> ok` on a register.
    Write,
    /// `inc() -> ok` on a counter (the commutative update of Section 3.4).
    Inc,
    /// `dec() -> ok` on a counter.
    Dec,
    /// `get() -> v` on a counter.
    Get,
    /// `enq(v) -> ok` on a FIFO queue.
    Enq,
    /// `deq() -> v | ⊥` on a FIFO queue.
    Deq,
    /// `push(v) -> ok` on a stack.
    Push,
    /// `pop() -> v | ⊥` on a stack.
    Pop,
    /// `insert(v) -> bool` on a set.
    Insert,
    /// `remove(v) -> bool` on a set.
    Remove,
    /// `contains(v) -> bool` on a set.
    Contains,
    /// `cas(expected, new) -> bool` on a compare-and-swap register.
    Cas,
    /// `append(v) -> ok` on an append-only log (write-only, commutative-ish).
    Append,
    /// An operation of a user-defined object.
    Custom(Arc<str>),
}

impl OpName {
    /// Creates a custom operation name.
    pub fn custom(name: &str) -> Self {
        OpName::Custom(Arc::from(name))
    }
}

impl fmt::Display for OpName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpName::Read => "read",
            OpName::Write => "write",
            OpName::Inc => "inc",
            OpName::Dec => "dec",
            OpName::Get => "get",
            OpName::Enq => "enq",
            OpName::Deq => "deq",
            OpName::Push => "push",
            OpName::Pop => "pop",
            OpName::Insert => "insert",
            OpName::Remove => "remove",
            OpName::Contains => "contains",
            OpName::Cas => "cas",
            OpName::Append => "append",
            OpName::Custom(name) => name,
        };
        write!(f, "{s}")
    }
}

/// A single transactional event.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Event {
    /// `inv_i(ob, op, args)` — transaction `tx` invokes `op` on `obj`.
    Inv {
        /// The invoking transaction.
        tx: TxId,
        /// The target shared object.
        obj: ObjId,
        /// The invoked operation.
        op: OpName,
        /// The operation arguments.
        args: Vec<Value>,
    },
    /// `ret_i(ob, op, val)` — the TM responds to the matching invocation.
    Ret {
        /// The transaction receiving the response.
        tx: TxId,
        /// The target shared object.
        obj: ObjId,
        /// The operation being answered.
        op: OpName,
        /// The returned value.
        val: Value,
    },
    /// `tryC_i` — the transaction requests to commit.
    TryCommit(TxId),
    /// `tryA_i` — the transaction requests to abort.
    TryAbort(TxId),
    /// `C_i` — the TM commits the transaction.
    Commit(TxId),
    /// `A_i` — the TM aborts the transaction.
    Abort(TxId),
}

impl Event {
    /// The transaction this event belongs to.
    pub fn tx(&self) -> TxId {
        match self {
            Event::Inv { tx, .. }
            | Event::Ret { tx, .. }
            | Event::TryCommit(tx)
            | Event::TryAbort(tx)
            | Event::Commit(tx)
            | Event::Abort(tx) => *tx,
        }
    }

    /// The shared object this event refers to, if it is an operation event.
    pub fn obj(&self) -> Option<&ObjId> {
        match self {
            Event::Inv { obj, .. } | Event::Ret { obj, .. } => Some(obj),
            _ => None,
        }
    }

    /// True for invocation events (operation invocations, `tryC`, `tryA`),
    /// i.e. events initiated by transactions.
    pub fn is_invocation(&self) -> bool {
        matches!(
            self,
            Event::Inv { .. } | Event::TryCommit(_) | Event::TryAbort(_)
        )
    }

    /// True for response events (operation responses, `C`, `A`), i.e. events
    /// issued by the TM.
    pub fn is_response(&self) -> bool {
        !self.is_invocation()
    }

    /// True if this event is a matching response for `inv` (same transaction,
    /// object, and operation), or an abort answering the pending invocation.
    pub fn matches_invocation(&self, inv: &Event) -> bool {
        match (inv, self) {
            (
                Event::Inv {
                    tx: ti,
                    obj: oi,
                    op: pi,
                    ..
                },
                Event::Ret {
                    tx: tr,
                    obj: or,
                    op: pr,
                    ..
                },
            ) => ti == tr && oi == or && pi == pr,
            (Event::Inv { tx: ti, .. }, Event::Abort(tr)) => ti == tr,
            (Event::TryCommit(ti), Event::Commit(tr)) => ti == tr,
            (Event::TryCommit(ti), Event::Abort(tr)) => ti == tr,
            (Event::TryAbort(ti), Event::Abort(tr)) => ti == tr,
            _ => false,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Inv { tx, obj, op, args } => {
                write!(f, "inv{}({obj},{op}", tx.0)?;
                for a in args {
                    write!(f, ",{a}")?;
                }
                write!(f, ")")
            }
            Event::Ret { tx, obj, op, val } => {
                write!(f, "ret{}({obj},{op})→{val}", tx.0)
            }
            Event::TryCommit(tx) => write!(f, "tryC{}", tx.0),
            Event::TryAbort(tx) => write!(f, "tryA{}", tx.0),
            Event::Commit(tx) => write!(f, "C{}", tx.0),
            Event::Abort(tx) => write!(f, "A{}", tx.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(tx: u32, obj: &str, op: OpName, args: Vec<Value>) -> Event {
        Event::Inv {
            tx: TxId(tx),
            obj: obj.into(),
            op,
            args,
        }
    }

    fn ret(tx: u32, obj: &str, op: OpName, val: Value) -> Event {
        Event::Ret {
            tx: TxId(tx),
            obj: obj.into(),
            op,
            val,
        }
    }

    #[test]
    fn tx_extraction() {
        assert_eq!(Event::Commit(TxId(3)).tx(), TxId(3));
        assert_eq!(inv(1, "x", OpName::Read, vec![]).tx(), TxId(1));
    }

    #[test]
    fn invocation_response_partition() {
        let i = inv(1, "x", OpName::Read, vec![]);
        let r = ret(1, "x", OpName::Read, Value::int(0));
        assert!(i.is_invocation() && !i.is_response());
        assert!(r.is_response() && !r.is_invocation());
        assert!(Event::TryCommit(TxId(1)).is_invocation());
        assert!(Event::TryAbort(TxId(1)).is_invocation());
        assert!(Event::Commit(TxId(1)).is_response());
        assert!(Event::Abort(TxId(1)).is_response());
    }

    #[test]
    fn matching() {
        let i = inv(1, "x", OpName::Read, vec![]);
        assert!(ret(1, "x", OpName::Read, Value::int(5)).matches_invocation(&i));
        // An abort may answer a pending operation invocation.
        assert!(Event::Abort(TxId(1)).matches_invocation(&i));
        // Wrong transaction / object / op do not match.
        assert!(!ret(2, "x", OpName::Read, Value::int(5)).matches_invocation(&i));
        assert!(!ret(1, "y", OpName::Read, Value::int(5)).matches_invocation(&i));
        assert!(!ret(1, "x", OpName::Write, Value::Ok).matches_invocation(&i));
        // tryC can be answered by C or A; tryA only by A.
        assert!(Event::Commit(TxId(2)).matches_invocation(&Event::TryCommit(TxId(2))));
        assert!(Event::Abort(TxId(2)).matches_invocation(&Event::TryCommit(TxId(2))));
        assert!(Event::Abort(TxId(2)).matches_invocation(&Event::TryAbort(TxId(2))));
        assert!(!Event::Commit(TxId(2)).matches_invocation(&Event::TryAbort(TxId(2))));
    }

    #[test]
    fn obj_accessor() {
        let i = inv(1, "x", OpName::Read, vec![]);
        assert_eq!(i.obj().unwrap().name(), "x");
        assert_eq!(Event::Commit(TxId(1)).obj(), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        let w = inv(2, "x", OpName::Write, vec![Value::int(1)]);
        assert_eq!(w.to_string(), "inv2(x,write,1)");
        let r = ret(2, "x", OpName::Read, Value::int(1));
        assert_eq!(r.to_string(), "ret2(x,read)→1");
        assert_eq!(Event::TryCommit(TxId(2)).to_string(), "tryC2");
        assert_eq!(Event::Abort(TxId(1)).to_string(), "A1");
    }

    #[test]
    fn register_obj_naming() {
        assert_eq!(ObjId::register(7).name(), "r7");
        assert_eq!(ObjId::new("x"), ObjId::from("x"));
    }
}
