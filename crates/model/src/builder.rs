//! An ergonomic DSL for constructing histories.
//!
//! Hand-transcribing the paper's example histories (H1–H5) requires both
//! whole-operation shorthands (`read`, `write`) and split
//! invocation/response events for interleaved operations (history H5 in
//! Section 5.3 interleaves at event granularity).

use crate::event::{Event, ObjId, OpName, TxId};
use crate::history::History;
use crate::value::Value;

/// A chainable builder for [`History`] values.
///
/// ```
/// use tm_model::builder::HistoryBuilder;
///
/// // Figure 1 of the paper:
/// let h1 = HistoryBuilder::new()
///     .write(1, "x", 1).try_commit(1).commit(1)
///     .read(2, "x", 1)
///     .write(3, "x", 2).write(3, "y", 2).try_commit(3).commit(3)
///     .read(2, "y", 2).try_commit(2).abort(2)
///     .build();
/// assert_eq!(h1.len(), 16);
/// ```
#[derive(Default, Clone, Debug)]
pub struct HistoryBuilder {
    events: Vec<Event>,
}

impl HistoryBuilder {
    /// Starts an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes and returns the history.
    pub fn build(self) -> History {
        History::from_events(self.events)
    }

    /// Appends a raw event.
    pub fn event(mut self, e: Event) -> Self {
        self.events.push(e);
        self
    }

    // ----- whole-operation shorthands ------------------------------------

    /// `read_t(obj, v)` — a complete register read returning `v`.
    pub fn read(self, tx: u32, obj: &str, v: i64) -> Self {
        self.inv_read(tx, obj).ret_read(tx, obj, v)
    }

    /// `write_t(obj, v)` — a complete register write of `v`.
    pub fn write(self, tx: u32, obj: &str, v: i64) -> Self {
        self.inv_write(tx, obj, v).ret_write(tx, obj)
    }

    /// A complete operation execution with explicit name, args and result.
    pub fn op(mut self, tx: u32, obj: &str, op: OpName, args: Vec<Value>, val: Value) -> Self {
        self.events.push(Event::Inv {
            tx: TxId(tx),
            obj: ObjId::new(obj),
            op: op.clone(),
            args,
        });
        self.events.push(Event::Ret {
            tx: TxId(tx),
            obj: ObjId::new(obj),
            op,
            val,
        });
        self
    }

    /// `inc_t(obj)` — a complete counter increment (Section 3.4).
    pub fn inc(self, tx: u32, obj: &str) -> Self {
        self.op(tx, obj, OpName::Inc, vec![], Value::Ok)
    }

    /// `get_t(obj) -> v` — a complete counter read.
    pub fn get(self, tx: u32, obj: &str, v: i64) -> Self {
        self.op(tx, obj, OpName::Get, vec![], Value::int(v))
    }

    // ----- split invocation / response events -----------------------------

    /// `inv_t(obj, read, ⊥)`.
    pub fn inv_read(mut self, tx: u32, obj: &str) -> Self {
        self.events.push(Event::Inv {
            tx: TxId(tx),
            obj: ObjId::new(obj),
            op: OpName::Read,
            args: vec![],
        });
        self
    }

    /// `ret_t(obj, read) → v`.
    pub fn ret_read(mut self, tx: u32, obj: &str, v: i64) -> Self {
        self.events.push(Event::Ret {
            tx: TxId(tx),
            obj: ObjId::new(obj),
            op: OpName::Read,
            val: Value::int(v),
        });
        self
    }

    /// `inv_t(obj, write, v)`.
    pub fn inv_write(mut self, tx: u32, obj: &str, v: i64) -> Self {
        self.events.push(Event::Inv {
            tx: TxId(tx),
            obj: ObjId::new(obj),
            op: OpName::Write,
            args: vec![Value::int(v)],
        });
        self
    }

    /// `ret_t(obj, write) → ok`.
    pub fn ret_write(mut self, tx: u32, obj: &str) -> Self {
        self.events.push(Event::Ret {
            tx: TxId(tx),
            obj: ObjId::new(obj),
            op: OpName::Write,
            val: Value::Ok,
        });
        self
    }

    // ----- terminal events -------------------------------------------------

    /// `tryC_t`.
    pub fn try_commit(mut self, tx: u32) -> Self {
        self.events.push(Event::TryCommit(TxId(tx)));
        self
    }

    /// `tryA_t`.
    pub fn try_abort(mut self, tx: u32) -> Self {
        self.events.push(Event::TryAbort(TxId(tx)));
        self
    }

    /// `C_t`.
    pub fn commit(mut self, tx: u32) -> Self {
        self.events.push(Event::Commit(TxId(tx)));
        self
    }

    /// `A_t`.
    pub fn abort(mut self, tx: u32) -> Self {
        self.events.push(Event::Abort(TxId(tx)));
        self
    }

    /// `tryC_t · C_t` — the common commit-and-succeed pair.
    pub fn commit_ok(self, tx: u32) -> Self {
        self.try_commit(tx).commit(tx)
    }
}

/// Constructs the paper's example histories, used throughout the tests and
/// benchmarks of this workspace.
pub mod paper {
    use super::*;

    /// History H1 (Figure 1): satisfies global atomicity and recoverability,
    /// but forcefully aborted `T2` observes an inconsistent state — H1 is
    /// **not** opaque.
    pub fn h1() -> History {
        HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 1)
            .write(3, "x", 2)
            .write(3, "y", 2)
            .commit_ok(3)
            .read(2, "y", 2)
            .try_commit(2)
            .abort(2)
            .build()
    }

    /// History H2: the sequentialization of H1 used in Section 4 to
    /// illustrate equivalence.
    pub fn h2() -> History {
        HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .write(3, "x", 2)
            .write(3, "y", 2)
            .commit_ok(3)
            .read(2, "x", 1)
            .read(2, "y", 2)
            .try_commit(2)
            .abort(2)
            .build()
    }

    /// History H3: `⟨write1(x,1), tryC1, read2(x,1)⟩`, used in Section 4 to
    /// illustrate `Complete(H)`.
    pub fn h3() -> History {
        HistoryBuilder::new()
            .write(1, "x", 1)
            .try_commit(1)
            .read(2, "x", 1)
            .build()
    }

    /// History H4 (Section 5.2): a commit-pending `T2` appears committed to
    /// `T3` and aborted to `T1` — H4 is opaque. Registers start at 0.
    pub fn h4() -> History {
        HistoryBuilder::new()
            .read(1, "x", 0)
            .write(2, "x", 5)
            .write(2, "y", 5)
            .try_commit(2)
            .read(3, "y", 5)
            .read(1, "y", 0)
            .build()
    }

    /// History H5 (Figure 2 / Section 5.3): an opaque history with
    /// event-level interleaving; the witness is `S = H5|T2 · H5|T1 · H5|T3`.
    pub fn h5() -> History {
        HistoryBuilder::new()
            .write(2, "x", 1)
            .write(2, "y", 2)
            .try_commit(2)
            .inv_read(1, "x")
            .commit(2)
            .inv_write(3, "y", 3)
            .ret_read(1, "x", 1)
            .inv_write(1, "x", 5)
            .ret_write(3, "y")
            .ret_write(1, "x")
            .inv_read(1, "y")
            .inv_read(3, "x")
            .ret_read(1, "y", 2)
            .try_commit(1)
            .ret_read(3, "x", 1)
            .try_commit(3)
            .abort(1)
            .commit(3)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::paper;
    use super::*;
    use crate::ops::TxStatus;

    #[test]
    fn h1_shape() {
        let h = paper::h1();
        assert_eq!(h.len(), 16);
        assert_eq!(h.txs(), vec![TxId(1), TxId(2), TxId(3)]);
        assert!(h.is_complete());
        assert_eq!(h.status(TxId(2)), TxStatus::ForcefullyAborted);
    }

    #[test]
    fn h2_is_equivalent_sequentialization_of_h1() {
        assert!(paper::h1().equivalent(&paper::h2()));
        assert!(paper::h2().is_sequential());
    }

    #[test]
    fn h3_shape() {
        let h = paper::h3();
        assert_eq!(h.status(TxId(1)), TxStatus::CommitPending);
        assert_eq!(h.status(TxId(2)), TxStatus::Live);
        assert!(!h.is_complete());
    }

    #[test]
    fn h4_statuses() {
        let h = paper::h4();
        assert_eq!(h.status(TxId(1)), TxStatus::Live);
        assert_eq!(h.status(TxId(2)), TxStatus::CommitPending);
        assert_eq!(h.status(TxId(3)), TxStatus::Live);
    }

    #[test]
    fn h5_matches_paper_event_listing() {
        let h = paper::h5();
        // The listing in Section 5.3 has 20 events:
        // T2: write2(x,1), write2(y,2) (4 events) + tryC2 + C2 = 6
        // T1: read x, write x, read y (6 events) + tryC1 + A1 = 8
        // T3: write y, read x (4 events) + tryC3 + C3 = 6
        assert_eq!(h.len(), 20);
        assert_eq!(h.status(TxId(1)), TxStatus::ForcefullyAborted);
        assert_eq!(h.status(TxId(2)), TxStatus::Committed);
        assert_eq!(h.status(TxId(3)), TxStatus::Committed);
        assert!(h.is_complete());
        assert!(!h.is_sequential());
    }

    #[test]
    fn custom_op_builder() {
        let h = HistoryBuilder::new()
            .op(1, "q", OpName::Enq, vec![Value::int(7)], Value::Ok)
            .op(1, "q", OpName::Deq, vec![], Value::int(7))
            .commit_ok(1)
            .build();
        let ops = h.all_ops();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].op, OpName::Enq);
        assert_eq!(ops[1].val, Value::int(7));
    }

    #[test]
    fn counter_builder_ops() {
        let h = HistoryBuilder::new().inc(1, "c").get(2, "c", 1).build();
        assert_eq!(h.all_ops().len(), 2);
    }
}
