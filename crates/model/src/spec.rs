//! Sequential specifications of shared objects (Section 4).
//!
//! A sequential specification `Seq(ob)` is a prefix-closed set of
//! object-local histories describing which operation sequences are correct
//! outside any transactional context. The paper treats the specification as
//! an *input parameter* of the correctness criterion — this module provides
//! the trait and a per-object registry; concrete objects live in
//! [`crate::objects`].
//!
//! For deterministic objects a specification is most naturally given as a
//! state machine: [`SeqSpec::step`] computes the unique next state and return
//! value of an operation. Non-deterministic objects override
//! [`SeqSpec::accepts`], which validates an observed return value and yields
//! the (chosen) successor state.

use crate::event::{ObjId, OpName};
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A sequential specification of one shared object.
pub trait SeqSpec: Send + Sync + fmt::Debug {
    /// The object's initial state.
    fn initial(&self) -> Value;

    /// Deterministic transition: applies `op(args)` to `state`, returning the
    /// successor state and the operation's return value, or `None` if the
    /// operation/arguments are not part of the object's interface.
    fn step(&self, state: &Value, op: &OpName, args: &[Value]) -> Option<(Value, Value)>;

    /// Validation: does `op(args) → ret` belong to `Seq(ob)` after `state`?
    /// Returns the successor state if so.
    ///
    /// The default implementation delegates to [`SeqSpec::step`] and compares
    /// return values; non-deterministic objects should override this.
    fn accepts(&self, state: &Value, op: &OpName, args: &[Value], ret: &Value) -> Option<Value> {
        let (next, expected) = self.step(state, op, args)?;
        if &expected == ret {
            Some(next)
        } else {
            None
        }
    }

    /// A short human-readable name for diagnostics.
    fn name(&self) -> &'static str {
        "object"
    }
}

/// Maps shared objects to their sequential specifications.
///
/// A registry may carry a *default* specification applied to objects with no
/// explicit entry — convenient for the ubiquitous "every object is a
/// register" histories of the paper.
#[derive(Clone, Debug, Default)]
pub struct SpecRegistry {
    specs: BTreeMap<ObjId, Arc<dyn SeqSpec>>,
    default: Option<Arc<dyn SeqSpec>>,
}

impl SpecRegistry {
    /// An empty registry with no default: every object must be registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry whose default object is an integer register initialized to
    /// 0 — the model used by all of the paper's register examples.
    pub fn registers() -> Self {
        SpecRegistry {
            specs: BTreeMap::new(),
            default: Some(Arc::new(crate::objects::register::Register::new(0))),
        }
    }

    /// Sets the default specification for unregistered objects.
    pub fn with_default(mut self, spec: Arc<dyn SeqSpec>) -> Self {
        self.default = Some(spec);
        self
    }

    /// Registers `spec` for object `obj` (overriding any previous entry).
    pub fn insert(&mut self, obj: ObjId, spec: Arc<dyn SeqSpec>) {
        self.specs.insert(obj, spec);
    }

    /// Builder-style [`SpecRegistry::insert`].
    pub fn with(mut self, obj: &str, spec: Arc<dyn SeqSpec>) -> Self {
        self.insert(ObjId::new(obj), spec);
        self
    }

    /// The specification governing `obj`, if any.
    pub fn spec_for(&self, obj: &ObjId) -> Option<&Arc<dyn SeqSpec>> {
        self.specs.get(obj).or(self.default.as_ref())
    }

    /// The initial state of `obj` under this registry.
    pub fn initial_of(&self, obj: &ObjId) -> Option<Value> {
        self.spec_for(obj).map(|s| s.initial())
    }
}

/// The states of all touched objects during a legality replay.
///
/// Untouched objects are implicitly in their initial state. The map is
/// ordered so that snapshots hash deterministically (the opacity checker
/// memoizes on them).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct ObjStates {
    states: BTreeMap<ObjId, Value>,
}

impl ObjStates {
    /// All objects in their initial states.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current state of `obj`, materializing the initial state from the
    /// registry on first access. Returns `None` if `obj` has no spec.
    pub fn get(&self, obj: &ObjId, specs: &SpecRegistry) -> Option<Value> {
        match self.states.get(obj) {
            Some(v) => Some(v.clone()),
            None => specs.initial_of(obj),
        }
    }

    /// Overwrites the state of `obj`.
    pub fn set(&mut self, obj: ObjId, state: Value) {
        self.states.insert(obj, state);
    }

    /// Canonicalizes by dropping entries equal to the object's initial state,
    /// so memoization keys do not distinguish "never touched" from "restored
    /// to initial".
    pub fn canonical(mut self, specs: &SpecRegistry) -> Self {
        self.states
            .retain(|obj, v| specs.initial_of(obj).as_ref() != Some(v));
        self
    }

    /// Iterates over explicitly materialized (touched) object states.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjId, &Value)> {
        self.states.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::counter::Counter;
    use crate::objects::register::Register;

    #[test]
    fn default_register_registry() {
        let reg = SpecRegistry::registers();
        let x = ObjId::new("x");
        assert_eq!(reg.initial_of(&x), Some(Value::int(0)));
        let spec = reg.spec_for(&x).unwrap();
        let (s1, r) = spec
            .step(&Value::int(0), &OpName::Write, &[Value::int(5)])
            .unwrap();
        assert_eq!(r, Value::Ok);
        assert_eq!(s1, Value::int(5));
    }

    #[test]
    fn explicit_entry_overrides_default() {
        let reg = SpecRegistry::registers().with("c", Arc::new(Counter));
        let c = ObjId::new("c");
        let spec = reg.spec_for(&c).unwrap();
        assert_eq!(spec.name(), "counter");
        // Unregistered objects still fall back to the register default.
        assert_eq!(reg.spec_for(&ObjId::new("x")).unwrap().name(), "register");
    }

    #[test]
    fn empty_registry_knows_nothing() {
        let reg = SpecRegistry::new();
        assert!(reg.spec_for(&ObjId::new("x")).is_none());
        assert!(reg.initial_of(&ObjId::new("x")).is_none());
    }

    #[test]
    fn default_accepts_checks_return_value() {
        let r = Register::new(0);
        let st = Value::int(0);
        assert!(r.accepts(&st, &OpName::Read, &[], &Value::int(0)).is_some());
        assert!(r.accepts(&st, &OpName::Read, &[], &Value::int(1)).is_none());
        assert!(r
            .accepts(&st, &OpName::Write, &[Value::int(3)], &Value::Ok)
            .is_some());
    }

    #[test]
    fn obj_states_materialize_and_canonicalize() {
        let reg = SpecRegistry::registers();
        let mut st = ObjStates::new();
        let x = ObjId::new("x");
        assert_eq!(st.get(&x, &reg), Some(Value::int(0)));
        st.set(x.clone(), Value::int(7));
        assert_eq!(st.get(&x, &reg), Some(Value::int(7)));
        // Restoring the initial value canonicalizes away.
        st.set(x.clone(), Value::int(0));
        let canon = st.clone().canonical(&reg);
        assert_eq!(canon, ObjStates::new());
        assert_eq!(canon.get(&x, &reg), Some(Value::int(0)));
    }

    #[test]
    fn obj_states_hashable_and_ordered() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        let mut a = ObjStates::new();
        a.set(ObjId::new("x"), Value::int(1));
        let mut b = ObjStates::new();
        b.set(ObjId::new("x"), Value::int(1));
        set.insert(a);
        assert!(set.contains(&b));
    }
}
