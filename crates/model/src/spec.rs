//! Sequential specifications of shared objects (Section 4).
//!
//! A sequential specification `Seq(ob)` is a prefix-closed set of
//! object-local histories describing which operation sequences are correct
//! outside any transactional context. The paper treats the specification as
//! an *input parameter* of the correctness criterion — this module provides
//! the trait and a per-object registry; concrete objects live in
//! [`crate::objects`].
//!
//! For deterministic objects a specification is most naturally given as a
//! state machine: [`SeqSpec::step`] computes the unique next state and return
//! value of an operation. Non-deterministic objects override
//! [`SeqSpec::accepts`], which validates an observed return value and yields
//! the (chosen) successor state.

use crate::event::{ObjId, OpName};
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A sequential specification of one shared object.
pub trait SeqSpec: Send + Sync + fmt::Debug {
    /// The object's initial state.
    fn initial(&self) -> Value;

    /// Deterministic transition: applies `op(args)` to `state`, returning the
    /// successor state and the operation's return value, or `None` if the
    /// operation/arguments are not part of the object's interface.
    fn step(&self, state: &Value, op: &OpName, args: &[Value]) -> Option<(Value, Value)>;

    /// Validation: does `op(args) → ret` belong to `Seq(ob)` after `state`?
    /// Returns the successor state if so.
    ///
    /// The default implementation delegates to [`SeqSpec::step`] and compares
    /// return values; non-deterministic objects should override this.
    fn accepts(&self, state: &Value, op: &OpName, args: &[Value], ret: &Value) -> Option<Value> {
        let (next, expected) = self.step(state, op, args)?;
        if &expected == ret {
            Some(next)
        } else {
            None
        }
    }

    /// A short human-readable name for diagnostics.
    fn name(&self) -> &'static str {
        "object"
    }
}

/// Maps shared objects to their sequential specifications.
///
/// A registry may carry a *default* specification applied to objects with no
/// explicit entry — convenient for the ubiquitous "every object is a
/// register" histories of the paper.
#[derive(Clone, Debug, Default)]
pub struct SpecRegistry {
    specs: BTreeMap<ObjId, Arc<dyn SeqSpec>>,
    default: Option<Arc<dyn SeqSpec>>,
}

impl SpecRegistry {
    /// An empty registry with no default: every object must be registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry whose default object is an integer register initialized to
    /// 0 — the model used by all of the paper's register examples.
    pub fn registers() -> Self {
        SpecRegistry {
            specs: BTreeMap::new(),
            default: Some(Arc::new(crate::objects::register::Register::new(0))),
        }
    }

    /// Sets the default specification for unregistered objects.
    pub fn with_default(mut self, spec: Arc<dyn SeqSpec>) -> Self {
        self.default = Some(spec);
        self
    }

    /// Registers `spec` for object `obj` (overriding any previous entry).
    pub fn insert(&mut self, obj: ObjId, spec: Arc<dyn SeqSpec>) {
        self.specs.insert(obj, spec);
    }

    /// Builder-style [`SpecRegistry::insert`].
    pub fn with(mut self, obj: &str, spec: Arc<dyn SeqSpec>) -> Self {
        self.insert(ObjId::new(obj), spec);
        self
    }

    /// The specification governing `obj`, if any.
    pub fn spec_for(&self, obj: &ObjId) -> Option<&Arc<dyn SeqSpec>> {
        self.specs.get(obj).or(self.default.as_ref())
    }

    /// The initial state of `obj` under this registry.
    pub fn initial_of(&self, obj: &ObjId) -> Option<Value> {
        self.spec_for(obj).map(|s| s.initial())
    }
}

/// The states of all touched objects during a legality replay.
///
/// Untouched objects are implicitly in their initial state. The map is
/// ordered so that snapshots render deterministically, and the structure
/// maintains an incremental *fingerprint* — the XOR of one hash per `(obj,
/// state)` entry — so the opacity checker can key its memo tables on a
/// snapshot in O(1) instead of rehashing the whole map at every lookup.
/// Updates through [`ObjStates::set`] (or the delta-tracked
/// [`ObjStates::set_canonical`]) keep the fingerprint in sync in O(1).
#[derive(Clone, Debug, Default)]
pub struct ObjStates {
    states: BTreeMap<ObjId, Value>,
    fingerprint: u64,
}

/// The per-entry hash folded (by XOR) into an [`ObjStates`] fingerprint.
///
/// `DefaultHasher::new()` uses fixed keys, so the fingerprint is
/// deterministic within a process — exactly what a memo key needs.
fn entry_hash(obj: &ObjId, state: &Value) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    obj.hash(&mut h);
    state.hash(&mut h);
    h.finish()
}

impl PartialEq for ObjStates {
    fn eq(&self, other: &Self) -> bool {
        self.states == other.states
    }
}

impl Eq for ObjStates {}

impl Hash for ObjStates {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The fingerprint is a pure function of `states`, so hashing it is
        // consistent with `Eq` — and O(1) instead of O(entries).
        state.write_u64(self.fingerprint);
    }
}

impl ObjStates {
    /// All objects in their initial states.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current state of `obj`, materializing the initial state from the
    /// registry on first access. Returns `None` if `obj` has no spec.
    pub fn get(&self, obj: &ObjId, specs: &SpecRegistry) -> Option<Value> {
        match self.states.get(obj) {
            Some(v) => Some(v.clone()),
            None => specs.initial_of(obj),
        }
    }

    /// The incremental XOR fingerprint over all materialized entries.
    ///
    /// Equal states always have equal fingerprints; the converse holds up to
    /// hash collisions, so the fingerprint is a *pre-filter* (and a cheap
    /// `Hash` implementation), not an equality proof.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Inserts or replaces the entry for `obj`, maintaining the fingerprint,
    /// and returns the previous entry (`None` if `obj` was untouched).
    fn set_raw(&mut self, obj: ObjId, state: Value) -> Option<Value> {
        self.fingerprint ^= entry_hash(&obj, &state);
        let old = self.states.insert(obj.clone(), state);
        if let Some(prev) = &old {
            self.fingerprint ^= entry_hash(&obj, prev);
        }
        old
    }

    /// Removes the entry for `obj`, maintaining the fingerprint, and returns
    /// it (`None` if `obj` was untouched).
    fn remove_raw(&mut self, obj: &ObjId) -> Option<Value> {
        let old = self.states.remove(obj);
        if let Some(prev) = &old {
            self.fingerprint ^= entry_hash(obj, prev);
        }
        old
    }

    /// Overwrites the state of `obj`.
    pub fn set(&mut self, obj: ObjId, state: Value) {
        self.set_raw(obj, state);
    }

    /// Overwrites the state of `obj` **canonically** — an entry equal to the
    /// object's initial state is dropped instead of stored — and records the
    /// previous entry in `delta` so the write can be undone in place.
    ///
    /// A snapshot mutated only through this method stays canonical at all
    /// times, which is what lets the search engine use live snapshots as
    /// memo keys without per-node clones.
    pub fn set_canonical(
        &mut self,
        obj: ObjId,
        state: Value,
        specs: &SpecRegistry,
        delta: &mut StatesDelta,
    ) {
        let old = if specs.initial_of(&obj).as_ref() == Some(&state) {
            self.remove_raw(&obj)
        } else {
            self.set_raw(obj.clone(), state)
        };
        delta.entries.push((obj, old));
    }

    /// Canonicalizes by dropping entries equal to the object's initial state,
    /// so memoization keys do not distinguish "never touched" from "restored
    /// to initial".
    pub fn canonical(mut self, specs: &SpecRegistry) -> Self {
        self.states
            .retain(|obj, v| specs.initial_of(obj).as_ref() != Some(v));
        self.fingerprint = self
            .states
            .iter()
            .fold(0, |acc, (obj, v)| acc ^ entry_hash(obj, v));
        self
    }

    /// Iterates over explicitly materialized (touched) object states.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjId, &Value)> {
        self.states.iter()
    }
}

/// An undo log for in-place [`ObjStates`] mutation.
///
/// Every [`ObjStates::set_canonical`] pushes the displaced entry here;
/// [`StatesDelta::rollback_to`] pops entries (down to a [`StatesDelta::mark`]
/// taken earlier) and restores them, fingerprint included. This is the
/// "delta" half of the memo-key API: the search engine explores placements by
/// applying a transaction's effects in place and rolling them back on
/// backtrack, instead of cloning the whole state map per branch.
#[derive(Clone, Debug, Default)]
pub struct StatesDelta {
    entries: Vec<(ObjId, Option<Value>)>,
}

impl StatesDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// A position in the log to roll back to later.
    pub fn mark(&self) -> usize {
        self.entries.len()
    }

    /// Number of recorded (not yet rolled back) writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Undoes every write recorded after `mark`, restoring `states` (and its
    /// fingerprint) to exactly what it was when the mark was taken.
    pub fn rollback_to(&mut self, states: &mut ObjStates, mark: usize) {
        while self.entries.len() > mark {
            let (obj, old) = self.entries.pop().expect("len > mark");
            match old {
                Some(v) => {
                    states.set_raw(obj, v);
                }
                None => {
                    states.remove_raw(&obj);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::counter::Counter;
    use crate::objects::register::Register;

    #[test]
    fn default_register_registry() {
        let reg = SpecRegistry::registers();
        let x = ObjId::new("x");
        assert_eq!(reg.initial_of(&x), Some(Value::int(0)));
        let spec = reg.spec_for(&x).unwrap();
        let (s1, r) = spec
            .step(&Value::int(0), &OpName::Write, &[Value::int(5)])
            .unwrap();
        assert_eq!(r, Value::Ok);
        assert_eq!(s1, Value::int(5));
    }

    #[test]
    fn explicit_entry_overrides_default() {
        let reg = SpecRegistry::registers().with("c", Arc::new(Counter));
        let c = ObjId::new("c");
        let spec = reg.spec_for(&c).unwrap();
        assert_eq!(spec.name(), "counter");
        // Unregistered objects still fall back to the register default.
        assert_eq!(reg.spec_for(&ObjId::new("x")).unwrap().name(), "register");
    }

    #[test]
    fn empty_registry_knows_nothing() {
        let reg = SpecRegistry::new();
        assert!(reg.spec_for(&ObjId::new("x")).is_none());
        assert!(reg.initial_of(&ObjId::new("x")).is_none());
    }

    #[test]
    fn default_accepts_checks_return_value() {
        let r = Register::new(0);
        let st = Value::int(0);
        assert!(r.accepts(&st, &OpName::Read, &[], &Value::int(0)).is_some());
        assert!(r.accepts(&st, &OpName::Read, &[], &Value::int(1)).is_none());
        assert!(r
            .accepts(&st, &OpName::Write, &[Value::int(3)], &Value::Ok)
            .is_some());
    }

    #[test]
    fn obj_states_materialize_and_canonicalize() {
        let reg = SpecRegistry::registers();
        let mut st = ObjStates::new();
        let x = ObjId::new("x");
        assert_eq!(st.get(&x, &reg), Some(Value::int(0)));
        st.set(x.clone(), Value::int(7));
        assert_eq!(st.get(&x, &reg), Some(Value::int(7)));
        // Restoring the initial value canonicalizes away.
        st.set(x.clone(), Value::int(0));
        let canon = st.clone().canonical(&reg);
        assert_eq!(canon, ObjStates::new());
        assert_eq!(canon.get(&x, &reg), Some(Value::int(0)));
    }

    #[test]
    fn obj_states_hashable_and_ordered() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        let mut a = ObjStates::new();
        a.set(ObjId::new("x"), Value::int(1));
        let mut b = ObjStates::new();
        b.set(ObjId::new("x"), Value::int(1));
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn fingerprint_tracks_mutation_and_is_order_independent() {
        let mut a = ObjStates::new();
        assert_eq!(a.fingerprint(), 0);
        a.set(ObjId::new("x"), Value::int(1));
        a.set(ObjId::new("y"), Value::int(2));
        let mut b = ObjStates::new();
        b.set(ObjId::new("y"), Value::int(2));
        b.set(ObjId::new("x"), Value::int(1));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
        // Overwriting and removing keep the incremental fingerprint equal to
        // the from-scratch one.
        a.set(ObjId::new("x"), Value::int(9));
        let fresh = {
            let mut f = ObjStates::new();
            f.set(ObjId::new("x"), Value::int(9));
            f.set(ObjId::new("y"), Value::int(2));
            f
        };
        assert_eq!(a.fingerprint(), fresh.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn canonical_recomputes_fingerprint() {
        let reg = SpecRegistry::registers();
        let mut st = ObjStates::new();
        st.set(ObjId::new("x"), Value::int(0)); // initial value: drops
        st.set(ObjId::new("y"), Value::int(3));
        let canon = st.canonical(&reg);
        let mut expect = ObjStates::new();
        expect.set(ObjId::new("y"), Value::int(3));
        assert_eq!(canon, expect);
        assert_eq!(canon.fingerprint(), expect.fingerprint());
    }

    #[test]
    fn set_canonical_with_delta_rolls_back_exactly() {
        let reg = SpecRegistry::registers();
        let mut st = ObjStates::new();
        st.set(ObjId::new("x"), Value::int(7));
        let snapshot = st.clone();
        let mut delta = StatesDelta::new();
        assert!(delta.is_empty());
        let mark = delta.mark();
        // Overwrite x, touch y, restore z to initial (no-op entry).
        st.set_canonical(ObjId::new("x"), Value::int(8), &reg, &mut delta);
        st.set_canonical(ObjId::new("y"), Value::int(1), &reg, &mut delta);
        st.set_canonical(ObjId::new("z"), Value::int(0), &reg, &mut delta);
        assert_eq!(delta.len(), 3);
        assert_eq!(st.get(&ObjId::new("x"), &reg), Some(Value::int(8)));
        // z stayed canonical: writing the initial value created no entry.
        assert!(st.iter().all(|(o, _)| o.name() != "z"));
        delta.rollback_to(&mut st, mark);
        assert_eq!(st, snapshot);
        assert_eq!(st.fingerprint(), snapshot.fingerprint());
        assert!(delta.is_empty());
    }

    #[test]
    fn partial_rollback_to_mark() {
        let reg = SpecRegistry::registers();
        let mut st = ObjStates::new();
        let mut delta = StatesDelta::new();
        st.set_canonical(ObjId::new("x"), Value::int(1), &reg, &mut delta);
        let mid = st.clone();
        let mark = delta.mark();
        st.set_canonical(ObjId::new("x"), Value::int(2), &reg, &mut delta);
        st.set_canonical(ObjId::new("y"), Value::int(2), &reg, &mut delta);
        delta.rollback_to(&mut st, mark);
        assert_eq!(st, mid);
        assert_eq!(delta.len(), 1, "entries before the mark survive");
    }
}
