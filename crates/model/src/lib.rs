//! # tm-model — the formal model of transactional memory
//!
//! This crate mechanizes Section 4 of Guerraoui & Kapałka, *On the
//! Correctness of Transactional Memory* (PPoPP 2008): transactions, shared
//! objects with arbitrary sequential specifications, transactional events and
//! histories, well-formedness, equivalence, real-time order, completions
//! `Complete(H)`, and legality.
//!
//! The model is the substrate for the `tm-opacity` crate (the opacity
//! checker, its graph characterization, and the comparison criteria) and for
//! the recorded histories produced by the `tm-stm` implementations.
//!
//! ## Quick tour
//!
//! ```
//! use tm_model::builder::HistoryBuilder;
//! use tm_model::spec::SpecRegistry;
//! use tm_model::legal::all_txs_legal;
//! use tm_model::TxId;
//!
//! // A sequential history in which T2 reads T1's committed write:
//! let s = HistoryBuilder::new()
//!     .write(1, "x", 1).try_commit(1).commit(1)
//!     .read(2, "x", 1).try_commit(2).commit(2)
//!     .build();
//! assert!(s.is_sequential());
//! assert!(all_txs_legal(&s, &SpecRegistry::registers()).is_ok());
//! ```
//!
//! The paper's example histories H1–H5 are available in
//! [`builder::paper`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod complete;
pub mod event;
pub mod history;
pub mod legal;
pub mod nesting;
pub mod nontx;
pub mod objects;
pub mod ops;
pub mod realtime;
pub mod spec;
pub mod value;
pub mod wellformed;

pub use builder::HistoryBuilder;
pub use complete::{apply_completion, complete_histories, completions, CommitDecision, Completion};
pub use event::{Event, ObjId, OpName, TxId};
pub use history::History;
pub use legal::{
    all_txs_legal, apply_op_canonical, replay_tx_mut, sequential_history_legal, tx_legal_in,
    LegalityError,
};
pub use nesting::{flatten, NestingInfo, NestingMode};
pub use nontx::NonTxWrapper;
pub use ops::{OpExec, TxStatus, TxView};
pub use realtime::{preserves_real_time, RealTimeOrder};
pub use spec::{ObjStates, SeqSpec, SpecRegistry, StatesDelta};
pub use value::Value;
pub use wellformed::{check_well_formed, is_well_formed, WfError};
