//! Operation executions: matched invocation/response pairs.
//!
//! The paper defines an operation execution `exec_i(ob, op, args, val)` as the
//! two-event sequence `⟨inv_i(ob, op, args), ret_i(ob, op, val)⟩`, and
//! introduces the register shorthands `read_i(r, v)` and `write_i(r, v)`.

use crate::event::{Event, ObjId, OpName, TxId};
use crate::value::Value;
use std::fmt;

/// A completed operation execution `exec_i(ob, op, args, val)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct OpExec {
    /// The executing transaction.
    pub tx: TxId,
    /// The target shared object.
    pub obj: ObjId,
    /// The executed operation.
    pub op: OpName,
    /// Arguments passed to the operation.
    pub args: Vec<Value>,
    /// The value returned by the operation.
    pub val: Value,
}

impl OpExec {
    /// The paper's `read_i(r, v)` shorthand: `exec_i(r, read, ⊥, v)`.
    pub fn read(tx: TxId, obj: ObjId, v: Value) -> Self {
        OpExec {
            tx,
            obj,
            op: OpName::Read,
            args: vec![],
            val: v,
        }
    }

    /// The paper's `write_i(r, v)` shorthand: `exec_i(r, write, v, ok)`.
    pub fn write(tx: TxId, obj: ObjId, v: Value) -> Self {
        OpExec {
            tx,
            obj,
            op: OpName::Write,
            args: vec![v],
            val: Value::Ok,
        }
    }

    /// The two events `⟨inv, ret⟩` making up this execution.
    pub fn events(&self) -> [Event; 2] {
        [
            Event::Inv {
                tx: self.tx,
                obj: self.obj.clone(),
                op: self.op.clone(),
                args: self.args.clone(),
            },
            Event::Ret {
                tx: self.tx,
                obj: self.obj.clone(),
                op: self.op.clone(),
                val: self.val.clone(),
            },
        ]
    }

    /// True if this is a register read.
    pub fn is_read(&self) -> bool {
        self.op == OpName::Read
    }

    /// True if this is a register write.
    pub fn is_write(&self) -> bool {
        self.op == OpName::Write
    }

    /// For a register read, the value read; for a write, the value written.
    ///
    /// Returns `None` for non-register operations.
    pub fn register_value(&self) -> Option<&Value> {
        match self.op {
            OpName::Read => Some(&self.val),
            OpName::Write => self.args.first(),
            _ => None,
        }
    }
}

impl fmt::Display for OpExec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            OpName::Read => write!(f, "read{}({},{})", self.tx.0, self.obj, self.val),
            OpName::Write => write!(
                f,
                "write{}({},{})",
                self.tx.0,
                self.obj,
                self.args.first().unwrap_or(&Value::Unit)
            ),
            _ => {
                write!(f, "exec{}({},{}", self.tx.0, self.obj, self.op)?;
                for a in &self.args {
                    write!(f, ",{a}")?;
                }
                write!(f, ")→{}", self.val)
            }
        }
    }
}

/// The per-transaction view of a history: the transaction's completed
/// operation executions, plus its terminal events.
///
/// This mirrors the well-formedness shape of Section 4: `H|Ti` is a prefix of
/// `O · F`, where `O` is a sequence of operation executions and `F` is one of
/// `⟨inv, A⟩`, `⟨tryA, A⟩`, `⟨tryC, C⟩`, `⟨tryC, A⟩`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxView {
    /// The transaction.
    pub tx: TxId,
    /// Completed operation executions, in program order.
    pub ops: Vec<OpExec>,
    /// A pending operation invocation with no response yet, if any.
    pub pending: Option<(ObjId, OpName, Vec<Value>)>,
    /// The terminal status of the transaction.
    pub status: TxStatus,
}

/// The status of a transaction in a history (Section 4, "Status of
/// transactions").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxStatus {
    /// Live: neither committed nor aborted, and no commit/abort request
    /// pending.
    Live,
    /// Live and waiting for the response to a `tryC` (commit-pending).
    CommitPending,
    /// Live and waiting for the response to a `tryA`.
    AbortPending,
    /// Committed (last event `C_i`).
    Committed,
    /// Aborted after requesting it (`tryA_i · A_i`).
    Aborted,
    /// Forcefully aborted: aborted without having issued `tryA` (either after
    /// `tryC`, or in place of an operation response).
    ForcefullyAborted,
}

impl TxStatus {
    /// True for `Committed`.
    pub fn is_committed(self) -> bool {
        self == TxStatus::Committed
    }

    /// True for either kind of abort.
    pub fn is_aborted(self) -> bool {
        matches!(self, TxStatus::Aborted | TxStatus::ForcefullyAborted)
    }

    /// True if the transaction is completed (committed or aborted).
    pub fn is_completed(self) -> bool {
        self.is_committed() || self.is_aborted()
    }

    /// True if the transaction is live (not completed).
    pub fn is_live(self) -> bool {
        !self.is_completed()
    }

    /// True if the transaction is live and has issued `tryC`.
    pub fn is_commit_pending(self) -> bool {
        self == TxStatus::CommitPending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_shorthand() {
        let r = OpExec::read(TxId(2), "x".into(), Value::int(1));
        assert!(r.is_read());
        assert!(!r.is_write());
        assert_eq!(r.register_value(), Some(&Value::int(1)));
        assert_eq!(r.to_string(), "read2(x,1)");
        let [i, t] = r.events();
        assert!(t.matches_invocation(&i));
    }

    #[test]
    fn write_shorthand() {
        let w = OpExec::write(TxId(1), "x".into(), Value::int(1));
        assert!(w.is_write());
        assert_eq!(w.val, Value::Ok);
        assert_eq!(w.register_value(), Some(&Value::int(1)));
        assert_eq!(w.to_string(), "write1(x,1)");
    }

    #[test]
    fn non_register_op_display() {
        let e = OpExec {
            tx: TxId(3),
            obj: "c".into(),
            op: OpName::Inc,
            args: vec![],
            val: Value::Ok,
        };
        assert_eq!(e.to_string(), "exec3(c,inc)→ok");
        assert_eq!(e.register_value(), None);
    }

    #[test]
    fn status_predicates() {
        assert!(TxStatus::Committed.is_completed());
        assert!(TxStatus::ForcefullyAborted.is_aborted());
        assert!(TxStatus::Aborted.is_aborted());
        assert!(!TxStatus::Live.is_completed());
        assert!(TxStatus::CommitPending.is_live());
        assert!(TxStatus::CommitPending.is_commit_pending());
        assert!(!TxStatus::AbortPending.is_commit_pending());
    }
}
