//! Dynamic values exchanged with shared objects.
//!
//! The paper's model (Section 4) is object-generic: operations "may take some
//! arguments and return some value". We model argument and return values (and
//! object states, see [`crate::spec`]) with a single dynamic [`Value`] type so
//! that histories over registers, counters, queues, sets, and user-defined
//! objects can coexist in one framework.

use std::fmt;

/// A dynamic value: an operation argument, an operation return value, or a
/// sequential-specification object state.
///
/// `Value` is ordered and hashable so it can key memoization tables in the
/// opacity checker and be stored in canonical (sorted) object states.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The "no value" placeholder `⊥` used for empty argument lists and for
    /// operations that have no meaningful result (e.g. a failed lookup).
    Unit,
    /// The `ok` acknowledgment returned by `write` and other mutators.
    Ok,
    /// A signed integer (register contents, counter values, queue elements).
    Int(i64),
    /// A boolean (e.g. `contains` results, `cas` success flags).
    Bool(bool),
    /// An ordered pair, used by composite operations and object states.
    Pair(Box<Value>, Box<Value>),
    /// A sequence, used as the state of queues, stacks, and logs.
    List(Vec<Value>),
}

impl Value {
    /// Convenience constructor for [`Value::Int`].
    #[inline]
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Convenience constructor for [`Value::Pair`].
    #[inline]
    pub fn pair(a: Value, b: Value) -> Self {
        Value::Pair(Box::new(a), Box::new(b))
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a [`Value::List`].
    #[inline]
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(vs) => Some(vs),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "⊥"),
            Value::Ok => write!(f, "ok"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Pair(a, b) => write!(f, "({a},{b})"),
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        let v = Value::int(42);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_bool(), None);
        assert_eq!(Value::from(42i64), v);
    }

    #[test]
    fn bool_roundtrip() {
        let v = Value::from(true);
        assert_eq!(v.as_bool(), Some(true));
        assert_eq!(v.as_int(), None);
    }

    #[test]
    fn list_accessor() {
        let v = Value::List(vec![Value::int(1), Value::int(2)]);
        assert_eq!(v.as_list().unwrap().len(), 2);
        assert_eq!(Value::int(1).as_list(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "⊥");
        assert_eq!(Value::Ok.to_string(), "ok");
        assert_eq!(Value::int(-3).to_string(), "-3");
        assert_eq!(
            Value::List(vec![Value::int(1), Value::Bool(false)]).to_string(),
            "[1,false]"
        );
        assert_eq!(Value::pair(Value::int(1), Value::Ok).to_string(), "(1,ok)");
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = [Value::int(2), Value::Unit, Value::int(1), Value::Ok];
        vs.sort();
        // Variant order: Unit < Ok < Int < ...
        assert_eq!(vs[0], Value::Unit);
        assert_eq!(vs[1], Value::Ok);
        assert_eq!(vs[2], Value::int(1));
    }
}
