//! Legality of sequential histories and of transactions within them
//! (Section 4, "Legal histories and transactions").
//!
//! * A sequential history `S` in which every transaction except possibly the
//!   last is committed is **legal** if for every shared object `ob`, `S|ob ∈
//!   Seq(ob)`.
//! * A transaction `Ti` of a complete sequential history `S` is **legal in
//!   `S`** if the subsequence of `S` consisting of all *committed*
//!   transactions preceding `Ti`, plus `Ti` itself, is legal.
//!
//! Legality is decided by replay: fold every operation execution through the
//! object's sequential specification, validating each return value. Because
//! `S` is sequential, each transaction's operations are contiguous, and a
//! transaction's own earlier writes are visible to its later reads (they are
//! part of `S|ob`).

use crate::event::TxId;
use crate::history::History;
use crate::ops::{OpExec, TxView};
use crate::spec::{ObjStates, SpecRegistry, StatesDelta};
use std::fmt;

/// Why a replay failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LegalityError {
    /// No sequential specification is registered for the object.
    NoSpec(OpExec),
    /// An operation's observed return value is not allowed by the object's
    /// specification in the current state.
    IllegalResponse {
        /// The offending operation execution.
        op: OpExec,
        /// The object state at the time of the operation.
        state: crate::value::Value,
    },
}

impl fmt::Display for LegalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalityError::NoSpec(op) => {
                write!(
                    f,
                    "no sequential specification for object {} (op {op})",
                    op.obj
                )
            }
            LegalityError::IllegalResponse { op, state } => {
                write!(f, "illegal response: {op} with {} in state {state}", op.obj)
            }
        }
    }
}

impl std::error::Error for LegalityError {}

/// Replays the operations of one transaction view against `states`,
/// validating every response. On success returns the state *after* the
/// transaction's operations (callers fold it in only for committed
/// transactions).
pub fn replay_tx(
    view: &TxView,
    states: &ObjStates,
    specs: &SpecRegistry,
) -> Result<ObjStates, LegalityError> {
    let mut cur = states.clone();
    for op in &view.ops {
        cur = apply_op(op, &cur, specs)?;
    }
    // A trailing pending invocation imposes no constraint: Seq(ob) is
    // prefix-closed and contains sequences ending with a pending invocation.
    Ok(cur)
}

/// [`replay_tx`] without the clones: validates and applies the operations of
/// one transaction view **in place**, recording every displaced entry in
/// `delta` so the caller can roll the effects back with
/// [`StatesDelta::rollback_to`].
///
/// On an illegal response the partially applied effects are rolled back
/// before returning, so `states` is untouched on `Err`. On success the
/// effects are left applied (and `states` stays canonical — entries equal to
/// an object's initial state are dropped, not stored), and the caller
/// decides whether to keep them (committed placement) or roll back to its
/// own mark (aborted placement / backtrack).
pub fn replay_tx_mut(
    view: &TxView,
    states: &mut ObjStates,
    specs: &SpecRegistry,
    delta: &mut StatesDelta,
) -> Result<(), LegalityError> {
    let mark = delta.mark();
    for op in &view.ops {
        if let Err(e) = apply_op_canonical(op, states, specs, delta) {
            delta.rollback_to(states, mark);
            return Err(e);
        }
    }
    // A trailing pending invocation imposes no constraint: Seq(ob) is
    // prefix-closed and contains sequences ending with a pending invocation.
    Ok(())
}

/// Validates a single operation execution and applies it in place via
/// [`ObjStates::set_canonical`], recording the undo entry in `delta`.
pub fn apply_op_canonical(
    op: &OpExec,
    states: &mut ObjStates,
    specs: &SpecRegistry,
    delta: &mut StatesDelta,
) -> Result<(), LegalityError> {
    let spec = specs
        .spec_for(&op.obj)
        .ok_or_else(|| LegalityError::NoSpec(op.clone()))?;
    let state = states
        .get(&op.obj, specs)
        .ok_or_else(|| LegalityError::NoSpec(op.clone()))?;
    match spec.accepts(&state, &op.op, &op.args, &op.val) {
        Some(next) => {
            states.set_canonical(op.obj.clone(), next, specs, delta);
            Ok(())
        }
        None => Err(LegalityError::IllegalResponse {
            op: op.clone(),
            state,
        }),
    }
}

/// Validates and applies a single operation execution.
pub fn apply_op(
    op: &OpExec,
    states: &ObjStates,
    specs: &SpecRegistry,
) -> Result<ObjStates, LegalityError> {
    let spec = specs
        .spec_for(&op.obj)
        .ok_or_else(|| LegalityError::NoSpec(op.clone()))?;
    let state = states
        .get(&op.obj, specs)
        .ok_or_else(|| LegalityError::NoSpec(op.clone()))?;
    match spec.accepts(&state, &op.op, &op.args, &op.val) {
        Some(next) => {
            let mut out = states.clone();
            out.set(op.obj.clone(), next);
            Ok(out)
        }
        None => Err(LegalityError::IllegalResponse {
            op: op.clone(),
            state,
        }),
    }
}

/// Is the sequential history `s` legal, i.e. does `S|ob ∈ Seq(ob)` hold for
/// every object? `s` must be sequential with every transaction except
/// possibly the last committed.
pub fn sequential_history_legal(s: &History, specs: &SpecRegistry) -> Result<(), LegalityError> {
    debug_assert!(s.is_sequential());
    let mut states = ObjStates::new();
    for op in s.all_ops() {
        states = apply_op(&op, &states, specs)?;
    }
    Ok(())
}

/// Is transaction `ti` legal in the complete sequential history `s`?
///
/// Replays all committed transactions that precede `ti` in `s` (they define
/// the state `ti` must observe), then replays `ti` itself.
pub fn tx_legal_in(s: &History, ti: TxId, specs: &SpecRegistry) -> Result<(), LegalityError> {
    debug_assert!(s.is_sequential());
    let order = s.txs();
    let mut states = ObjStates::new();
    for t in order {
        if t == ti {
            replay_tx(&s.tx_view(t), &states, specs)?;
            return Ok(());
        }
        if s.status(t).is_committed() {
            states = replay_tx(&s.tx_view(t), &states, specs)?;
        }
    }
    // ti not in s: vacuously legal.
    Ok(())
}

/// Is *every* transaction legal in the complete sequential history `s`
/// (requirement (2) of Definition 1)?
///
/// Single O(|S|) pass: fold committed transactions left to right; validate
/// each transaction (committed or aborted) against the committed-prefix
/// state at its position.
#[allow(clippy::result_large_err)] // the error carries the full diagnostic; callers destructure it
pub fn all_txs_legal(s: &History, specs: &SpecRegistry) -> Result<(), (TxId, LegalityError)> {
    debug_assert!(s.is_sequential());
    let mut states = ObjStates::new();
    for t in s.txs() {
        let view = s.tx_view(t);
        let after = replay_tx(&view, &states, specs).map_err(|e| (t, e))?;
        if view.status.is_committed() {
            states = after;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{paper, HistoryBuilder};
    use crate::event::OpName;
    use crate::objects::{Counter, FifoQueue};
    use crate::value::Value;
    use std::sync::Arc;

    fn regs() -> SpecRegistry {
        SpecRegistry::registers()
    }

    #[test]
    fn h2_t2_is_not_legal() {
        // In S = H1|T1 · H1|T2-with-reads-after-T3... the paper's point:
        // in H2 (= T1 · T3 · T2), T2 reads x=1 but T3 (committed, preceding)
        // wrote x=2 — illegal.
        let s = paper::h2();
        assert!(tx_legal_in(&s, TxId(1), &regs()).is_ok());
        assert!(tx_legal_in(&s, TxId(3), &regs()).is_ok());
        let err = tx_legal_in(&s, TxId(2), &regs()).unwrap_err();
        match err {
            LegalityError::IllegalResponse { op, state } => {
                assert_eq!(op.obj.name(), "x");
                assert_eq!(op.val, Value::int(1)); // read 1...
                assert_eq!(state, Value::int(2)); // ...but x was 2
            }
            other => panic!("unexpected error {other}"),
        }
        assert!(all_txs_legal(&s, &regs()).is_err());
    }

    #[test]
    fn h1_other_serialization_also_illegal_for_t2() {
        // S = T1 · T2 · T3 (the other real-time-respecting order): T2's
        // second read returns 2 instead of 0.
        let s = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 1)
            .read(2, "y", 2)
            .try_commit(2)
            .abort(2)
            .write(3, "x", 2)
            .write(3, "y", 2)
            .commit_ok(3)
            .build();
        let err = tx_legal_in(&s, TxId(2), &regs()).unwrap_err();
        match err {
            LegalityError::IllegalResponse { op, state } => {
                assert_eq!(op.obj.name(), "y");
                assert_eq!(op.val, Value::int(2));
                assert_eq!(state, Value::int(0));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn aborted_tx_effects_invisible() {
        // T1 writes x=5 and aborts; committed T2 must read the initial 0.
        let s = HistoryBuilder::new()
            .write(1, "x", 5)
            .try_abort(1)
            .abort(1)
            .read(2, "x", 0)
            .commit_ok(2)
            .build();
        assert!(all_txs_legal(&s, &regs()).is_ok());
        // Reading the aborted value would be illegal.
        let bad = HistoryBuilder::new()
            .write(1, "x", 5)
            .try_abort(1)
            .abort(1)
            .read(2, "x", 5)
            .commit_ok(2)
            .build();
        assert_eq!(all_txs_legal(&bad, &regs()).unwrap_err().0, TxId(2));
    }

    #[test]
    fn tx_sees_its_own_writes() {
        let s = HistoryBuilder::new()
            .write(1, "x", 9)
            .read(1, "x", 9)
            .commit_ok(1)
            .build();
        assert!(all_txs_legal(&s, &regs()).is_ok());
    }

    #[test]
    fn aborted_tx_itself_must_be_legal() {
        // Even an aborted transaction must observe a consistent state.
        let s = HistoryBuilder::new()
            .read(1, "x", 7) // x was never written: must read 0
            .try_commit(1)
            .abort(1)
            .build();
        assert_eq!(all_txs_legal(&s, &regs()).unwrap_err().0, TxId(1));
    }

    #[test]
    fn counter_semantics() {
        let specs = SpecRegistry::new().with("c", Arc::new(Counter));
        let s = HistoryBuilder::new()
            .inc(1, "c")
            .commit_ok(1)
            .inc(2, "c")
            .commit_ok(2)
            .get(3, "c", 2)
            .commit_ok(3)
            .build();
        assert!(all_txs_legal(&s, &specs).is_ok());
        let bad = HistoryBuilder::new()
            .inc(1, "c")
            .commit_ok(1)
            .get(2, "c", 5)
            .commit_ok(2)
            .build();
        assert!(all_txs_legal(&bad, &specs).is_err());
    }

    #[test]
    fn queue_semantics() {
        let specs = SpecRegistry::new().with("q", Arc::new(FifoQueue));
        let s = HistoryBuilder::new()
            .op(1, "q", OpName::Enq, vec![Value::int(1)], Value::Ok)
            .op(1, "q", OpName::Enq, vec![Value::int(2)], Value::Ok)
            .commit_ok(1)
            .op(2, "q", OpName::Deq, vec![], Value::int(1))
            .commit_ok(2)
            .build();
        assert!(all_txs_legal(&s, &specs).is_ok());
        // LIFO-order dequeue is illegal for a FIFO queue.
        let bad = HistoryBuilder::new()
            .op(1, "q", OpName::Enq, vec![Value::int(1)], Value::Ok)
            .op(1, "q", OpName::Enq, vec![Value::int(2)], Value::Ok)
            .commit_ok(1)
            .op(2, "q", OpName::Deq, vec![], Value::int(2))
            .commit_ok(2)
            .build();
        assert!(all_txs_legal(&bad, &specs).is_err());
    }

    #[test]
    fn missing_spec_is_an_error() {
        let s = HistoryBuilder::new().read(1, "x", 0).commit_ok(1).build();
        let empty = SpecRegistry::new();
        assert!(matches!(
            all_txs_legal(&s, &empty),
            Err((TxId(1), LegalityError::NoSpec(_)))
        ));
    }

    #[test]
    fn sequential_history_legal_checks_whole_sequence() {
        let ok = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 1)
            .commit_ok(2)
            .build();
        assert!(sequential_history_legal(&ok, &regs()).is_ok());
        let bad = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 3)
            .commit_ok(2)
            .build();
        assert!(sequential_history_legal(&bad, &regs()).is_err());
    }

    #[test]
    fn pending_invocation_is_legal() {
        let s = HistoryBuilder::new()
            .write(1, "x", 1)
            .inv_read(1, "x")
            .build();
        assert!(all_txs_legal(&s, &regs()).is_ok());
    }

    #[test]
    fn replay_tx_mut_agrees_with_replay_tx() {
        // In-place replay must produce exactly the canonical form of the
        // cloning replay, and rollback must restore the original snapshot.
        let specs = regs();
        for h in [paper::h1(), paper::h2(), paper::h5()] {
            let mut states = ObjStates::new();
            let mut delta = StatesDelta::new();
            for t in h.txs() {
                let view = h.tx_view(t);
                let cloning = replay_tx(&view, &states, &specs);
                let before = states.clone();
                let mark = delta.mark();
                let in_place = replay_tx_mut(&view, &mut states, &specs, &mut delta);
                match (cloning, in_place) {
                    (Ok(after), Ok(())) => {
                        assert_eq!(states, after.clone().canonical(&specs), "{h} {t}");
                        if !view.status.is_committed() {
                            delta.rollback_to(&mut states, mark);
                            assert_eq!(states, before, "{h} {t}");
                        }
                    }
                    (Err(a), Err(b)) => {
                        assert_eq!(a, b);
                        assert_eq!(states, before, "failed replay must not mutate");
                    }
                    (a, b) => panic!("divergent replay for {t} in {h}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn replay_tx_mut_rolls_back_partial_effects_on_error() {
        let specs = regs();
        // write x=1 succeeds, then read y=9 fails: x must be restored.
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .read(1, "y", 9)
            .commit_ok(1)
            .build();
        let view = h.tx_view(TxId(1));
        let mut states = ObjStates::new();
        let mut delta = StatesDelta::new();
        assert!(replay_tx_mut(&view, &mut states, &specs, &mut delta).is_err());
        assert_eq!(states, ObjStates::new());
        assert!(delta.is_empty());
    }

    #[test]
    fn legality_error_display() {
        let op = OpExec::read(TxId(1), "x".into(), Value::int(3));
        let e = LegalityError::IllegalResponse {
            op,
            state: Value::int(0),
        };
        assert!(e.to_string().contains("illegal response"));
    }
}
