//! The read/write register: the object underlying all of the paper's
//! examples and the graph characterization of Section 5.4.
//!
//! `Seq(x)` is the set of sequences of `read` and `write` executions in which
//! every `read` returns the value of the latest preceding `write` (or the
//! initial value), regardless of transaction identifiers.

use crate::event::OpName;
use crate::spec::SeqSpec;
use crate::value::Value;

/// An integer register with a configurable initial value.
#[derive(Clone, Copy, Debug, Default)]
pub struct Register {
    initial: i64,
}

impl Register {
    /// A register initialized to `initial`.
    pub fn new(initial: i64) -> Self {
        Register { initial }
    }
}

impl SeqSpec for Register {
    fn initial(&self) -> Value {
        Value::int(self.initial)
    }

    fn step(&self, state: &Value, op: &OpName, args: &[Value]) -> Option<(Value, Value)> {
        match op {
            OpName::Read if args.is_empty() => Some((state.clone(), state.clone())),
            OpName::Write => match args {
                [v @ Value::Int(_)] => Some((v.clone(), Value::Ok)),
                _ => None,
            },
            _ => None,
        }
    }

    fn name(&self) -> &'static str {
        "register"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_returns_latest_write() {
        let r = Register::new(4);
        let s0 = r.initial();
        assert_eq!(s0, Value::int(4));
        let (s1, ret) = r.step(&s0, &OpName::Read, &[]).unwrap();
        assert_eq!(ret, Value::int(4));
        assert_eq!(s1, s0);
        let (s2, ret) = r.step(&s1, &OpName::Write, &[Value::int(2)]).unwrap();
        assert_eq!(ret, Value::Ok);
        let (_, ret) = r.step(&s2, &OpName::Read, &[]).unwrap();
        assert_eq!(ret, Value::int(2));
    }

    #[test]
    fn rejects_foreign_operations() {
        let r = Register::new(0);
        assert!(r.step(&r.initial(), &OpName::Inc, &[]).is_none());
        assert!(r
            .step(&r.initial(), &OpName::Enq, &[Value::int(1)])
            .is_none());
    }

    #[test]
    fn rejects_malformed_arguments() {
        let r = Register::new(0);
        // write with no argument, non-int argument, or extra arguments
        assert!(r.step(&r.initial(), &OpName::Write, &[]).is_none());
        assert!(r.step(&r.initial(), &OpName::Write, &[Value::Ok]).is_none());
        assert!(r
            .step(
                &r.initial(),
                &OpName::Write,
                &[Value::int(1), Value::int(2)]
            )
            .is_none());
        // read takes no arguments
        assert!(r
            .step(&r.initial(), &OpName::Read, &[Value::int(1)])
            .is_none());
    }
}
