//! A min-priority queue — an object whose operations are neither read-only
//! nor write-only, exercising the model's "arbitrary objects" generality.
//!
//! `extract_min` both observes and mutates, and is *not invertible* (the
//! extracted element's identity cannot be recomputed from the post-state),
//! which is exactly the class of operations Section 3.7 says precludes
//! modelling aborted transactions with roll-back events. The operation
//! names beyond `insert` use [`OpName::Custom`], demonstrating user-defined
//! interfaces end to end (checker, trace formats, CLI).

use crate::event::OpName;
use crate::spec::SeqSpec;
use crate::value::Value;

/// A min-priority queue of integers.
///
/// * `insert(v) → ok`
/// * `extract_min() → v | ⊥` (⊥ on empty)
/// * `peek_min() → v | ⊥` (read-only)
///
/// The state is the sorted multiset of queued integers.
#[derive(Clone, Copy, Debug, Default)]
pub struct PriorityQueue;

/// The custom operation name for `extract_min`.
pub fn extract_min() -> OpName {
    OpName::custom("extract_min")
}

/// The custom operation name for `peek_min`.
pub fn peek_min() -> OpName {
    OpName::custom("peek_min")
}

fn as_multiset(state: &Value) -> Option<Vec<i64>> {
    state.as_list()?.iter().map(|v| v.as_int()).collect()
}

fn to_state(mut items: Vec<i64>) -> Value {
    items.sort_unstable();
    Value::List(items.into_iter().map(Value::int).collect())
}

impl SeqSpec for PriorityQueue {
    fn initial(&self) -> Value {
        Value::List(vec![])
    }

    fn step(&self, state: &Value, op: &OpName, args: &[Value]) -> Option<(Value, Value)> {
        let items = as_multiset(state)?;
        match op {
            OpName::Insert => {
                let v = match args {
                    [Value::Int(v)] => *v,
                    _ => return None,
                };
                let mut next = items;
                next.push(v);
                Some((to_state(next), Value::Ok))
            }
            OpName::Custom(name) if &**name == "extract_min" && args.is_empty() => {
                match items.split_first() {
                    None => Some((state.clone(), Value::Unit)),
                    Some((&min, rest)) => Some((to_state(rest.to_vec()), Value::int(min))),
                }
            }
            OpName::Custom(name) if &**name == "peek_min" && args.is_empty() => {
                let top = items.first().map(|&v| Value::int(v)).unwrap_or(Value::Unit);
                Some((state.clone(), top))
            }
            _ => None,
        }
    }

    fn name(&self) -> &'static str {
        "priority-queue"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_orders_by_priority() {
        let q = PriorityQueue;
        let (s, r) = q
            .step(&q.initial(), &OpName::Insert, &[Value::int(5)])
            .unwrap();
        assert_eq!(r, Value::Ok);
        let (s, _) = q.step(&s, &OpName::Insert, &[Value::int(2)]).unwrap();
        let (s, _) = q.step(&s, &OpName::Insert, &[Value::int(9)]).unwrap();
        let (s, r) = q.step(&s, &extract_min(), &[]).unwrap();
        assert_eq!(r, Value::int(2), "min first");
        let (_, r) = q.step(&s, &extract_min(), &[]).unwrap();
        assert_eq!(r, Value::int(5));
    }

    #[test]
    fn duplicates_form_a_multiset() {
        let q = PriorityQueue;
        let (s, _) = q
            .step(&q.initial(), &OpName::Insert, &[Value::int(4)])
            .unwrap();
        let (s, _) = q.step(&s, &OpName::Insert, &[Value::int(4)]).unwrap();
        let (s, r) = q.step(&s, &extract_min(), &[]).unwrap();
        assert_eq!(r, Value::int(4));
        let (_, r) = q.step(&s, &extract_min(), &[]).unwrap();
        assert_eq!(r, Value::int(4), "both copies present");
    }

    #[test]
    fn empty_extract_and_peek_return_bottom() {
        let q = PriorityQueue;
        let (s, r) = q.step(&q.initial(), &extract_min(), &[]).unwrap();
        assert_eq!(r, Value::Unit);
        assert_eq!(s, q.initial());
        let (_, r) = q.step(&q.initial(), &peek_min(), &[]).unwrap();
        assert_eq!(r, Value::Unit);
    }

    #[test]
    fn peek_is_read_only() {
        let q = PriorityQueue;
        let (s, _) = q
            .step(&q.initial(), &OpName::Insert, &[Value::int(1)])
            .unwrap();
        let (s2, r) = q.step(&s, &peek_min(), &[]).unwrap();
        assert_eq!(r, Value::int(1));
        assert_eq!(s2, s, "peek must not mutate");
    }

    #[test]
    fn unknown_ops_and_bad_args_rejected() {
        let q = PriorityQueue;
        assert!(q.step(&q.initial(), &OpName::Read, &[]).is_none());
        assert!(q.step(&q.initial(), &OpName::Insert, &[]).is_none());
        assert!(q
            .step(&q.initial(), &extract_min(), &[Value::int(1)])
            .is_none());
    }

    #[test]
    fn accepts_validates_return_values() {
        let q = PriorityQueue;
        let (s, _) = q
            .step(&q.initial(), &OpName::Insert, &[Value::int(3)])
            .unwrap();
        assert!(q.accepts(&s, &extract_min(), &[], &Value::int(3)).is_some());
        assert!(q.accepts(&s, &extract_min(), &[], &Value::int(7)).is_none());
    }
}
