//! An integer key-value map — the dictionary object of realistic TM
//! workloads (hash maps and skip lists are the canonical STM benchmarks).
//!
//! `put` returns the *previous* binding, making it simultaneously an
//! observer and a mutator — a further example of the paper's point that
//! operations cannot be assumed read-only or write-only (Section 3.4).

use crate::event::OpName;
use crate::spec::SeqSpec;
use crate::value::Value;

/// An integer→integer map.
///
/// * `put(k, v) → old | ⊥` ([`OpName::Insert`] with two arguments)
/// * `remove(k) → old | ⊥`
/// * `get(k) → v | ⊥`
///
/// The state is the list of `(k, v)` pairs sorted by key.
#[derive(Clone, Copy, Debug, Default)]
pub struct KvMap;

fn as_pairs(state: &Value) -> Option<Vec<(i64, i64)>> {
    state
        .as_list()?
        .iter()
        .map(|p| match p {
            Value::Pair(k, v) => Some((k.as_int()?, v.as_int()?)),
            _ => None,
        })
        .collect()
}

fn to_state(mut pairs: Vec<(i64, i64)>) -> Value {
    pairs.sort_unstable_by_key(|&(k, _)| k);
    Value::List(
        pairs
            .into_iter()
            .map(|(k, v)| Value::pair(Value::int(k), Value::int(v)))
            .collect(),
    )
}

fn lookup(pairs: &[(i64, i64)], key: i64) -> Option<i64> {
    pairs.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
}

impl SeqSpec for KvMap {
    fn initial(&self) -> Value {
        Value::List(vec![])
    }

    fn step(&self, state: &Value, op: &OpName, args: &[Value]) -> Option<(Value, Value)> {
        let pairs = as_pairs(state)?;
        match op {
            OpName::Insert => {
                let (k, v) = match args {
                    [Value::Int(k), Value::Int(v)] => (*k, *v),
                    _ => return None,
                };
                let old = lookup(&pairs, k).map(Value::int).unwrap_or(Value::Unit);
                let mut next: Vec<(i64, i64)> =
                    pairs.into_iter().filter(|&(pk, _)| pk != k).collect();
                next.push((k, v));
                Some((to_state(next), old))
            }
            OpName::Remove => {
                let k = match args {
                    [Value::Int(k)] => *k,
                    _ => return None,
                };
                let old = lookup(&pairs, k).map(Value::int).unwrap_or(Value::Unit);
                let next: Vec<(i64, i64)> = pairs.into_iter().filter(|&(pk, _)| pk != k).collect();
                Some((to_state(next), old))
            }
            OpName::Get => {
                let k = match args {
                    [Value::Int(k)] => *k,
                    _ => return None,
                };
                let v = lookup(&pairs, k).map(Value::int).unwrap_or(Value::Unit);
                Some((state.clone(), v))
            }
            _ => None,
        }
    }

    fn name(&self) -> &'static str {
        "kv-map"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove_roundtrip() {
        let m = KvMap;
        let (s, old) = m
            .step(
                &m.initial(),
                &OpName::Insert,
                &[Value::int(1), Value::int(10)],
            )
            .unwrap();
        assert_eq!(old, Value::Unit, "no previous binding");
        let (_, v) = m.step(&s, &OpName::Get, &[Value::int(1)]).unwrap();
        assert_eq!(v, Value::int(10));
        let (s2, old) = m.step(&s, &OpName::Remove, &[Value::int(1)]).unwrap();
        assert_eq!(old, Value::int(10));
        let (_, v) = m.step(&s2, &OpName::Get, &[Value::int(1)]).unwrap();
        assert_eq!(v, Value::Unit);
    }

    #[test]
    fn put_reports_previous_binding() {
        let m = KvMap;
        let (s, _) = m
            .step(
                &m.initial(),
                &OpName::Insert,
                &[Value::int(1), Value::int(10)],
            )
            .unwrap();
        let (s, old) = m
            .step(&s, &OpName::Insert, &[Value::int(1), Value::int(20)])
            .unwrap();
        assert_eq!(old, Value::int(10));
        let (_, v) = m.step(&s, &OpName::Get, &[Value::int(1)]).unwrap();
        assert_eq!(v, Value::int(20));
    }

    #[test]
    fn state_is_canonical_regardless_of_insertion_order() {
        let m = KvMap;
        let mut s1 = m.initial();
        for (k, v) in [(2, 20), (1, 10)] {
            s1 = m
                .step(&s1, &OpName::Insert, &[Value::int(k), Value::int(v)])
                .unwrap()
                .0;
        }
        let mut s2 = m.initial();
        for (k, v) in [(1, 10), (2, 20)] {
            s2 = m
                .step(&s2, &OpName::Insert, &[Value::int(k), Value::int(v)])
                .unwrap()
                .0;
        }
        assert_eq!(s1, s2, "canonical states must hash equal for the memo");
    }

    #[test]
    fn get_is_read_only_and_missing_keys_are_bottom() {
        let m = KvMap;
        let (s2, v) = m
            .step(&m.initial(), &OpName::Get, &[Value::int(9)])
            .unwrap();
        assert_eq!(v, Value::Unit);
        assert_eq!(s2, m.initial());
    }

    #[test]
    fn bad_args_rejected() {
        let m = KvMap;
        assert!(m
            .step(&m.initial(), &OpName::Insert, &[Value::int(1)])
            .is_none());
        assert!(m.step(&m.initial(), &OpName::Get, &[]).is_none());
        assert!(m.step(&m.initial(), &OpName::Read, &[]).is_none());
    }

    #[test]
    fn remove_missing_key_is_a_noop_with_bottom() {
        let m = KvMap;
        let (s, old) = m
            .step(&m.initial(), &OpName::Remove, &[Value::int(5)])
            .unwrap();
        assert_eq!(old, Value::Unit);
        assert_eq!(s, m.initial());
    }
}
