//! An integer set object with membership-reporting mutators.

use crate::event::OpName;
use crate::spec::SeqSpec;
use crate::value::Value;

/// A set of integers: `insert(v) → bool` (true iff newly added),
/// `remove(v) → bool` (true iff present), `contains(v) → bool`.
///
/// The state is kept as a sorted list so that equal sets have equal (and
/// equal-hashing) state values.
#[derive(Clone, Copy, Debug, Default)]
pub struct IntSet;

fn as_sorted(state: &Value) -> Option<Vec<i64>> {
    state
        .as_list()?
        .iter()
        .map(|v| v.as_int())
        .collect::<Option<Vec<i64>>>()
}

fn to_state(mut items: Vec<i64>) -> Value {
    items.sort_unstable();
    items.dedup();
    Value::List(items.into_iter().map(Value::int).collect())
}

impl SeqSpec for IntSet {
    fn initial(&self) -> Value {
        Value::List(vec![])
    }

    fn step(&self, state: &Value, op: &OpName, args: &[Value]) -> Option<(Value, Value)> {
        let items = as_sorted(state)?;
        let arg = match args {
            [Value::Int(v)] => *v,
            _ => return None,
        };
        match op {
            OpName::Insert => {
                let added = !items.contains(&arg);
                let mut next = items;
                if added {
                    next.push(arg);
                }
                Some((to_state(next), Value::Bool(added)))
            }
            OpName::Remove => {
                let present = items.contains(&arg);
                let next: Vec<i64> = items.into_iter().filter(|&v| v != arg).collect();
                Some((to_state(next), Value::Bool(present)))
            }
            OpName::Contains => {
                let present = items.contains(&arg);
                Some((state.clone(), Value::Bool(present)))
            }
            _ => None,
        }
    }

    fn name(&self) -> &'static str {
        "int-set"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let s = IntSet;
        let (s1, r) = s
            .step(&s.initial(), &OpName::Insert, &[Value::int(3)])
            .unwrap();
        assert_eq!(r, Value::Bool(true));
        let (s2, r) = s.step(&s1, &OpName::Insert, &[Value::int(3)]).unwrap();
        assert_eq!(r, Value::Bool(false)); // duplicate
        let (_, r) = s.step(&s2, &OpName::Contains, &[Value::int(3)]).unwrap();
        assert_eq!(r, Value::Bool(true));
        let (s3, r) = s.step(&s2, &OpName::Remove, &[Value::int(3)]).unwrap();
        assert_eq!(r, Value::Bool(true));
        let (_, r) = s.step(&s3, &OpName::Contains, &[Value::int(3)]).unwrap();
        assert_eq!(r, Value::Bool(false));
    }

    #[test]
    fn state_is_canonical() {
        // Inserting 2 then 1 and inserting 1 then 2 produce equal states.
        let s = IntSet;
        let a = {
            let (s1, _) = s
                .step(&s.initial(), &OpName::Insert, &[Value::int(2)])
                .unwrap();
            s.step(&s1, &OpName::Insert, &[Value::int(1)]).unwrap().0
        };
        let b = {
            let (s1, _) = s
                .step(&s.initial(), &OpName::Insert, &[Value::int(1)])
                .unwrap();
            s.step(&s1, &OpName::Insert, &[Value::int(2)]).unwrap().0
        };
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_args() {
        let s = IntSet;
        assert!(s.step(&s.initial(), &OpName::Insert, &[]).is_none());
        assert!(s
            .step(&s.initial(), &OpName::Read, &[Value::int(1)])
            .is_none());
    }
}
