//! A compare-and-swap register: a conditional, non-read-only, non-write-only
//! operation, exercising the model beyond the read/write dichotomy
//! (Section 3.4: "We can no longer assume that each operation is either
//! read-only or write-only").

use crate::event::OpName;
use crate::spec::SeqSpec;
use crate::value::Value;

/// An integer register exporting `read() → v`, `write(v) → ok`, and
/// `cas(expected, new) → bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct CasRegister {
    initial: i64,
}

impl CasRegister {
    /// A CAS register initialized to `initial`.
    pub fn new(initial: i64) -> Self {
        CasRegister { initial }
    }
}

impl SeqSpec for CasRegister {
    fn initial(&self) -> Value {
        Value::int(self.initial)
    }

    fn step(&self, state: &Value, op: &OpName, args: &[Value]) -> Option<(Value, Value)> {
        match op {
            OpName::Read if args.is_empty() => Some((state.clone(), state.clone())),
            OpName::Write => match args {
                [v @ Value::Int(_)] => Some((v.clone(), Value::Ok)),
                _ => None,
            },
            OpName::Cas => match args {
                [Value::Int(expected), Value::Int(new)] => {
                    if state.as_int()? == *expected {
                        Some((Value::int(*new), Value::Bool(true)))
                    } else {
                        Some((state.clone(), Value::Bool(false)))
                    }
                }
                _ => None,
            },
            _ => None,
        }
    }

    fn name(&self) -> &'static str {
        "cas-register"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_success_and_failure() {
        let c = CasRegister::new(0);
        let (s1, r) = c
            .step(&c.initial(), &OpName::Cas, &[Value::int(0), Value::int(5)])
            .unwrap();
        assert_eq!(r, Value::Bool(true));
        assert_eq!(s1, Value::int(5));
        let (s2, r) = c
            .step(&s1, &OpName::Cas, &[Value::int(0), Value::int(9)])
            .unwrap();
        assert_eq!(r, Value::Bool(false));
        assert_eq!(s2, Value::int(5)); // unchanged on failure
    }

    #[test]
    fn read_write_still_work() {
        let c = CasRegister::new(3);
        let (_, r) = c.step(&c.initial(), &OpName::Read, &[]).unwrap();
        assert_eq!(r, Value::int(3));
        let (s, r) = c
            .step(&c.initial(), &OpName::Write, &[Value::int(7)])
            .unwrap();
        assert_eq!((s, r), (Value::int(7), Value::Ok));
    }

    #[test]
    fn rejects_malformed_cas() {
        let c = CasRegister::new(0);
        assert!(c
            .step(&c.initial(), &OpName::Cas, &[Value::int(1)])
            .is_none());
    }
}
