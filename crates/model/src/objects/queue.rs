//! A FIFO queue: an object with operations that "cannot be undone".
//!
//! Section 3.7 observes that aborted transactions cannot be modelled by
//! inserting roll-back events precisely because objects like queues have
//! non-invertible operations — the model (and opacity) must treat aborted
//! transactions by *exclusion from legality scopes*, not compensation. This
//! object exists to exercise that part of the model.

use crate::event::OpName;
use crate::spec::SeqSpec;
use crate::value::Value;

/// An unbounded FIFO queue of integers: `enq(v) → ok`, `deq() → v` (or `⊥`
/// when empty).
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoQueue;

impl SeqSpec for FifoQueue {
    fn initial(&self) -> Value {
        Value::List(vec![])
    }

    fn step(&self, state: &Value, op: &OpName, args: &[Value]) -> Option<(Value, Value)> {
        let items = state.as_list()?;
        match op {
            OpName::Enq => match args {
                [v @ Value::Int(_)] => {
                    let mut next = items.to_vec();
                    next.push(v.clone());
                    Some((Value::List(next), Value::Ok))
                }
                _ => None,
            },
            OpName::Deq if args.is_empty() => {
                if let Some((head, rest)) = items.split_first() {
                    Some((Value::List(rest.to_vec()), head.clone()))
                } else {
                    Some((state.clone(), Value::Unit))
                }
            }
            _ => None,
        }
    }

    fn name(&self) -> &'static str {
        "fifo-queue"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = FifoQueue;
        let s0 = q.initial();
        let (s1, _) = q.step(&s0, &OpName::Enq, &[Value::int(1)]).unwrap();
        let (s2, _) = q.step(&s1, &OpName::Enq, &[Value::int(2)]).unwrap();
        let (s3, r) = q.step(&s2, &OpName::Deq, &[]).unwrap();
        assert_eq!(r, Value::int(1));
        let (s4, r) = q.step(&s3, &OpName::Deq, &[]).unwrap();
        assert_eq!(r, Value::int(2));
        let (_, r) = q.step(&s4, &OpName::Deq, &[]).unwrap();
        assert_eq!(r, Value::Unit); // empty
    }

    #[test]
    fn empty_deq_does_not_change_state() {
        let q = FifoQueue;
        let (s, r) = q.step(&q.initial(), &OpName::Deq, &[]).unwrap();
        assert_eq!(r, Value::Unit);
        assert_eq!(s, q.initial());
    }

    #[test]
    fn rejects_foreign_ops() {
        let q = FifoQueue;
        assert!(q.step(&q.initial(), &OpName::Read, &[]).is_none());
        assert!(q.step(&q.initial(), &OpName::Enq, &[]).is_none());
    }
}
