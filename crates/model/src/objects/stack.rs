//! A LIFO stack object.

use crate::event::OpName;
use crate::spec::SeqSpec;
use crate::value::Value;

/// An unbounded stack of integers: `push(v) → ok`, `pop() → v` (or `⊥` when
/// empty).
#[derive(Clone, Copy, Debug, Default)]
pub struct Stack;

impl SeqSpec for Stack {
    fn initial(&self) -> Value {
        Value::List(vec![])
    }

    fn step(&self, state: &Value, op: &OpName, args: &[Value]) -> Option<(Value, Value)> {
        let items = state.as_list()?;
        match op {
            OpName::Push => match args {
                [v @ Value::Int(_)] => {
                    let mut next = items.to_vec();
                    next.push(v.clone());
                    Some((Value::List(next), Value::Ok))
                }
                _ => None,
            },
            OpName::Pop if args.is_empty() => {
                if let Some((last, rest)) = items.split_last() {
                    Some((Value::List(rest.to_vec()), last.clone()))
                } else {
                    Some((state.clone(), Value::Unit))
                }
            }
            _ => None,
        }
    }

    fn name(&self) -> &'static str {
        "stack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let st = Stack;
        let (s1, _) = st
            .step(&st.initial(), &OpName::Push, &[Value::int(1)])
            .unwrap();
        let (s2, _) = st.step(&s1, &OpName::Push, &[Value::int(2)]).unwrap();
        let (s3, r) = st.step(&s2, &OpName::Pop, &[]).unwrap();
        assert_eq!(r, Value::int(2));
        let (_, r) = st.step(&s3, &OpName::Pop, &[]).unwrap();
        assert_eq!(r, Value::int(1));
    }

    #[test]
    fn empty_pop_returns_unit() {
        let st = Stack;
        let (_, r) = st.step(&st.initial(), &OpName::Pop, &[]).unwrap();
        assert_eq!(r, Value::Unit);
    }
}
