//! A library of shared-object sequential specifications.
//!
//! The paper's model deliberately supports "arbitrary objects, beyond simple
//! read/write variables" (Section 1) — richer semantics reduce conflicts
//! (Section 3.4's counter example). This module provides the objects used
//! throughout the reproduction:
//!
//! * [`register::Register`] — the paper's ubiquitous read/write register;
//! * [`counter::Counter`] — `inc`/`dec`/`get`, the commutative object of
//!   Section 3.4;
//! * [`queue::FifoQueue`] — enq/deq, an object with non-invertible ops;
//! * [`stack::Stack`] — push/pop;
//! * [`set::IntSet`] — insert/remove/contains;
//! * [`cas::CasRegister`] — compare-and-swap register;
//! * [`pqueue::PriorityQueue`] — insert/extract-min/peek-min, with
//!   user-defined (`OpName::Custom`) operation names;
//! * [`kvmap::KvMap`] — put/get/remove dictionary (put reports the previous
//!   binding — an observer-mutator);
//! * [`log::AppendLog`] — a write-only append log (idempotence-free blind
//!   writes, cf. Section 3.6's overlapping-writes example).

pub mod cas;
pub mod counter;
pub mod kvmap;
pub mod log;
pub mod pqueue;
pub mod queue;
pub mod register;
pub mod set;
pub mod stack;

pub use cas::CasRegister;
pub use counter::Counter;
pub use kvmap::KvMap;
pub use log::AppendLog;
pub use pqueue::PriorityQueue;
pub use queue::FifoQueue;
pub use register::Register;
pub use set::IntSet;
pub use stack::Stack;
