//! The shared counter of Section 3.4.
//!
//! `inc`/`dec` are *commutative, write-only* updates: transactions that only
//! increment a counter never conflict semantically, so all of them may commit
//! concurrently under opacity — while recoverability forbids it and a
//! read/write encoding allows only one of them to commit. The criteria
//! separation tests (E5) rely on this object.

use crate::event::OpName;
use crate::spec::SeqSpec;
use crate::value::Value;

/// An integer counter exporting `inc() → ok`, `dec() → ok`, `get() → v`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter;

impl SeqSpec for Counter {
    fn initial(&self) -> Value {
        Value::int(0)
    }

    fn step(&self, state: &Value, op: &OpName, args: &[Value]) -> Option<(Value, Value)> {
        let v = state.as_int()?;
        if !args.is_empty() {
            return None;
        }
        match op {
            OpName::Inc => Some((Value::int(v + 1), Value::Ok)),
            OpName::Dec => Some((Value::int(v - 1), Value::Ok)),
            OpName::Get => Some((state.clone(), Value::int(v))),
            _ => None,
        }
    }

    fn name(&self) -> &'static str {
        "counter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_dec_get() {
        let c = Counter;
        let s0 = c.initial();
        let (s1, r) = c.step(&s0, &OpName::Inc, &[]).unwrap();
        assert_eq!(r, Value::Ok);
        let (s2, _) = c.step(&s1, &OpName::Inc, &[]).unwrap();
        let (s3, r) = c.step(&s2, &OpName::Get, &[]).unwrap();
        assert_eq!(r, Value::int(2));
        let (s4, _) = c.step(&s3, &OpName::Dec, &[]).unwrap();
        let (_, r) = c.step(&s4, &OpName::Get, &[]).unwrap();
        assert_eq!(r, Value::int(1));
    }

    #[test]
    fn incs_commute() {
        // Applying k increments in any order yields the same state — the
        // semantic fact Section 3.4 exploits.
        let c = Counter;
        let mut s = c.initial();
        for _ in 0..5 {
            s = c.step(&s, &OpName::Inc, &[]).unwrap().0;
        }
        assert_eq!(s, Value::int(5));
    }

    #[test]
    fn rejects_register_ops_and_args() {
        let c = Counter;
        assert!(c.step(&c.initial(), &OpName::Read, &[]).is_none());
        assert!(c
            .step(&c.initial(), &OpName::Inc, &[Value::int(1)])
            .is_none());
    }
}
