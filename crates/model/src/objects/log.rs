//! A write-only append log.
//!
//! Append is a *blind write* that never reads the state it modifies — the
//! shape of update the paper's Section 3.6 uses to argue that rigorous
//! scheduling is too strong: transactions that only append (or only
//! blind-write) may all commit without any of them observing another.

use crate::event::OpName;
use crate::spec::SeqSpec;
use crate::value::Value;

/// An append-only log of integers: `append(v) → ok`, `read() → [v...]`.
#[derive(Clone, Copy, Debug, Default)]
pub struct AppendLog;

impl SeqSpec for AppendLog {
    fn initial(&self) -> Value {
        Value::List(vec![])
    }

    fn step(&self, state: &Value, op: &OpName, args: &[Value]) -> Option<(Value, Value)> {
        let items = state.as_list()?;
        match op {
            OpName::Append => match args {
                [v @ Value::Int(_)] => {
                    let mut next = items.to_vec();
                    next.push(v.clone());
                    Some((Value::List(next), Value::Ok))
                }
                _ => None,
            },
            OpName::Read if args.is_empty() => Some((state.clone(), state.clone())),
            _ => None,
        }
    }

    fn name(&self) -> &'static str {
        "append-log"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_accumulate_in_order() {
        let l = AppendLog;
        let (s1, _) = l
            .step(&l.initial(), &OpName::Append, &[Value::int(1)])
            .unwrap();
        let (s2, _) = l.step(&s1, &OpName::Append, &[Value::int(2)]).unwrap();
        let (_, r) = l.step(&s2, &OpName::Read, &[]).unwrap();
        assert_eq!(r, Value::List(vec![Value::int(1), Value::int(2)]));
    }

    #[test]
    fn rejects_write() {
        let l = AppendLog;
        assert!(l
            .step(&l.initial(), &OpName::Write, &[Value::int(1)])
            .is_none());
    }
}
