//! Mixing transactional and non-transactional code (Section 7).
//!
//! The paper: "It is preferable to require that every non-transactional
//! operation has the semantics of a single transaction. … We can encompass
//! such a model in our context by encapsulating every non-transactional
//! operation into a committed transaction."
//!
//! This module provides exactly that encapsulation: a non-transactional
//! access becomes a fresh single-operation transaction that commits
//! immediately (`⟨inv, ret, tryC, C⟩`). The resulting history is checkable
//! by the ordinary opacity machinery, which then enforces the intended
//! semantics — transactional and non-transactional code must not race —
//! and flags, e.g., a non-transactional read observing a live transaction's
//! buffered write.

use crate::event::{Event, ObjId, OpName, TxId};
use crate::history::History;
use crate::value::Value;

/// Allocates identifiers for the single-operation wrapper transactions.
///
/// Wrapper ids must not collide with the application's transaction ids;
/// construct the allocator above the highest id in use.
#[derive(Debug)]
pub struct NonTxWrapper {
    next: u32,
}

impl NonTxWrapper {
    /// An allocator producing ids starting strictly above `highest_used`.
    pub fn starting_above(highest_used: u32) -> Self {
        NonTxWrapper {
            next: highest_used + 1,
        }
    }

    /// An allocator above every transaction already in `h`.
    pub fn for_history(h: &History) -> Self {
        let highest = h.txs().iter().map(|t| t.0).max().unwrap_or(0);
        Self::starting_above(highest)
    }

    /// Appends a non-transactional operation to `h` as an immediately
    /// committed single-operation transaction; returns the wrapper's id.
    pub fn apply(
        &mut self,
        h: &mut History,
        obj: ObjId,
        op: OpName,
        args: Vec<Value>,
        ret: Value,
    ) -> TxId {
        let t = TxId(self.next);
        self.next += 1;
        h.push(Event::Inv {
            tx: t,
            obj: obj.clone(),
            op: op.clone(),
            args,
        });
        h.push(Event::Ret {
            tx: t,
            obj,
            op,
            val: ret,
        });
        h.push(Event::TryCommit(t));
        h.push(Event::Commit(t));
        t
    }

    /// Non-transactional register read returning `v`.
    pub fn read(&mut self, h: &mut History, obj: &str, v: i64) -> TxId {
        self.apply(h, ObjId::new(obj), OpName::Read, vec![], Value::int(v))
    }

    /// Non-transactional register write of `v`.
    pub fn write(&mut self, h: &mut History, obj: &str, v: i64) -> TxId {
        self.apply(
            h,
            ObjId::new(obj),
            OpName::Write,
            vec![Value::int(v)],
            Value::Ok,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::wellformed::is_well_formed;

    #[test]
    fn wrapper_produces_committed_single_op_txs() {
        let mut h = History::new();
        let mut nt = NonTxWrapper::starting_above(0);
        let t1 = nt.write(&mut h, "x", 5);
        let t2 = nt.read(&mut h, "x", 5);
        assert_ne!(t1, t2);
        assert!(is_well_formed(&h));
        assert_eq!(h.committed_txs(), vec![t1, t2]);
        assert_eq!(h.len(), 8);
    }

    #[test]
    fn allocator_avoids_existing_ids() {
        let mut h = HistoryBuilder::new().write(7, "x", 1).commit_ok(7).build();
        let mut nt = NonTxWrapper::for_history(&h);
        let t = nt.read(&mut h, "x", 1);
        assert!(t.0 > 7);
        assert!(is_well_formed(&h));
    }

    #[test]
    fn nontx_read_of_committed_state_is_opaque_shape() {
        // The wrapper makes the mixed program checkable: a non-transactional
        // read of a committed value yields a legal history shape.
        let mut h = HistoryBuilder::new().write(1, "x", 3).commit_ok(1).build();
        let mut nt = NonTxWrapper::for_history(&h);
        nt.read(&mut h, "x", 3);
        assert!(is_well_formed(&h));
        // (Opacity of this shape is asserted in the cross-crate tests to
        // avoid a dev-dependency cycle here.)
    }
}
