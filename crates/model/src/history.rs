//! Histories: totally ordered sequences of transactional events.
//!
//! A (high-level) history is "the sequence of all invocation and response
//! events that were issued and received by transactions in a given execution"
//! (Section 4). All of the paper's derived notions — projections `H|Ti` and
//! `H|ob`, equivalence, transaction status, sequentiality, completeness — live
//! here; well-formedness is in [`crate::wellformed`], real-time order in
//! [`crate::realtime`], and completions in [`crate::complete`].

use crate::event::{Event, ObjId, OpName, TxId};
use crate::ops::{OpExec, TxStatus, TxView};
use crate::value::Value;
use std::fmt;

/// A history `H`: a totally ordered sequence of transactional events.
///
/// Simultaneous events of a real execution are assumed to have been ordered
/// arbitrarily (Section 4), so a `Vec` is a faithful representation.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// The empty history.
    pub fn new() -> Self {
        History { events: Vec::new() }
    }

    /// Builds a history from a sequence of events.
    pub fn from_events(events: Vec<Event>) -> Self {
        History { events }
    }

    /// Appends an event (used by builders and online recorders).
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// The events of the history, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The number of events `|H|`.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the history contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The prefix of the first `n` events (used by the online monitor; recall
    /// that a TM must keep *every* prefix of its history opaque).
    pub fn prefix(&self, n: usize) -> History {
        History {
            events: self.events[..n.min(self.events.len())].to_vec(),
        }
    }

    /// `H · H'` — concatenation of histories.
    pub fn concat(&self, other: &History) -> History {
        let mut events = self.events.clone();
        events.extend(other.events.iter().cloned());
        History { events }
    }

    /// `H|Ti` — the longest subsequence of `H` containing only events of
    /// transaction `t`.
    pub fn per_tx(&self, t: TxId) -> History {
        History {
            events: self
                .events
                .iter()
                .filter(|e| e.tx() == t)
                .cloned()
                .collect(),
        }
    }

    /// `H|ob` — the longest subsequence of `H` containing only operation
    /// invocation and response events on shared object `ob`.
    pub fn per_obj(&self, ob: &ObjId) -> History {
        History {
            events: self
                .events
                .iter()
                .filter(|e| e.obj() == Some(ob))
                .cloned()
                .collect(),
        }
    }

    /// `Ti ∈ H` — true if the history contains at least one event of `t`.
    pub fn contains_tx(&self, t: TxId) -> bool {
        self.events.iter().any(|e| e.tx() == t)
    }

    /// The transactions appearing in `H`, ordered by first event.
    pub fn txs(&self) -> Vec<TxId> {
        let mut seen = Vec::new();
        for e in &self.events {
            let t = e.tx();
            if !seen.contains(&t) {
                seen.push(t);
            }
        }
        seen
    }

    /// The shared objects appearing in `H`, ordered by first event.
    pub fn objects(&self) -> Vec<ObjId> {
        let mut seen: Vec<ObjId> = Vec::new();
        for e in &self.events {
            if let Some(ob) = e.obj() {
                if !seen.contains(ob) {
                    seen.push(ob.clone());
                }
            }
        }
        seen
    }

    /// Index of the first event of `t`, if any.
    pub fn first_event_index(&self, t: TxId) -> Option<usize> {
        self.events.iter().position(|e| e.tx() == t)
    }

    /// Index of the last event of `t`, if any.
    pub fn last_event_index(&self, t: TxId) -> Option<usize> {
        self.events.iter().rposition(|e| e.tx() == t)
    }

    /// The status of transaction `t` in `H` (Section 4, "Status of
    /// transactions"). Assumes `H|t` is well-formed.
    pub fn status(&self, t: TxId) -> TxStatus {
        let mut issued_try_abort = false;
        let mut last: Option<&Event> = None;
        for e in self.events.iter().filter(|e| e.tx() == t) {
            if matches!(e, Event::TryAbort(_)) {
                issued_try_abort = true;
            }
            last = Some(e);
        }
        match last {
            None => TxStatus::Live, // vacuous: t not in H
            Some(Event::Commit(_)) => TxStatus::Committed,
            Some(Event::Abort(_)) => {
                if issued_try_abort {
                    TxStatus::Aborted
                } else {
                    TxStatus::ForcefullyAborted
                }
            }
            Some(Event::TryCommit(_)) => TxStatus::CommitPending,
            Some(Event::TryAbort(_)) => TxStatus::AbortPending,
            Some(_) => TxStatus::Live,
        }
    }

    /// The transactions of `H` that are live (not completed).
    pub fn live_txs(&self) -> Vec<TxId> {
        self.txs()
            .into_iter()
            .filter(|t| self.status(*t).is_live())
            .collect()
    }

    /// The transactions of `H` that are commit-pending.
    pub fn commit_pending_txs(&self) -> Vec<TxId> {
        self.txs()
            .into_iter()
            .filter(|t| self.status(*t).is_commit_pending())
            .collect()
    }

    /// The committed transactions of `H`.
    pub fn committed_txs(&self) -> Vec<TxId> {
        self.txs()
            .into_iter()
            .filter(|t| self.status(*t).is_committed())
            .collect()
    }

    /// True if an invocation event of `t` is pending in `H` (no matching
    /// response follows it in `H|t`).
    pub fn has_pending_invocation(&self, t: TxId) -> bool {
        let mut pending: Option<Event> = None;
        for e in self.events.iter().filter(|e| e.tx() == t) {
            if e.is_invocation() {
                pending = Some(e.clone());
            } else if let Some(p) = &pending {
                if e.matches_invocation(p) {
                    pending = None;
                }
            }
        }
        pending.is_some()
    }

    /// `H ≡ H'` — equivalence: same transactions, and for every transaction
    /// `Ti`, `H|Ti = H'|Ti` (Section 4).
    pub fn equivalent(&self, other: &History) -> bool {
        let mut ts = self.txs();
        let mut os = other.txs();
        ts.sort_unstable();
        os.sort_unstable();
        if ts != os {
            return false;
        }
        ts.iter()
            .all(|t| self.per_tx(*t).events == other.per_tx(*t).events)
    }

    /// True if `H` is sequential: no two transactions in `H` are concurrent,
    /// i.e. the events of distinct transactions do not interleave.
    pub fn is_sequential(&self) -> bool {
        let mut seen_complete: Vec<TxId> = Vec::new();
        let mut current: Option<TxId> = None;
        for e in &self.events {
            let t = e.tx();
            match current {
                Some(c) if c == t => {}
                _ => {
                    if seen_complete.contains(&t) {
                        return false; // t's events resume after another tx ran
                    }
                    if let Some(c) = current {
                        seen_complete.push(c);
                    }
                    if seen_complete.contains(&t) {
                        return false;
                    }
                    current = Some(t);
                }
            }
        }
        true
    }

    /// True if `H` is complete: it contains no live transaction.
    pub fn is_complete(&self) -> bool {
        self.txs().iter().all(|t| self.status(*t).is_completed())
    }

    /// The completed operation executions of transaction `t`, in order, plus
    /// any trailing pending invocation — the transaction's [`TxView`].
    pub fn tx_view(&self, t: TxId) -> TxView {
        let mut ops = Vec::new();
        let mut pending: Option<(ObjId, OpName, Vec<Value>)> = None;
        for e in self.events.iter().filter(|e| e.tx() == t) {
            match e {
                Event::Inv { obj, op, args, .. } => {
                    pending = Some((obj.clone(), op.clone(), args.clone()));
                }
                Event::Ret { obj, op, val, .. } => {
                    if let Some((pobj, pop, pargs)) = pending.take() {
                        debug_assert_eq!(&pobj, obj);
                        debug_assert_eq!(&pop, op);
                        ops.push(OpExec {
                            tx: t,
                            obj: pobj,
                            op: pop,
                            args: pargs,
                            val: val.clone(),
                        });
                    }
                }
                Event::Abort(_) => {
                    // An abort answering a pending invocation leaves the
                    // operation without effect; drop the pending invocation.
                    pending = None;
                }
                _ => {}
            }
        }
        TxView {
            tx: t,
            ops,
            pending,
            status: self.status(t),
        }
    }

    /// All completed operation executions in `H`, in invocation order.
    pub fn all_ops(&self) -> Vec<OpExec> {
        // Pair each response with its transaction's pending invocation.
        let mut out = Vec::new();
        let mut pending: Vec<(TxId, ObjId, OpName, Vec<Value>, usize)> = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            match e {
                Event::Inv { tx, obj, op, args } => {
                    pending.push((*tx, obj.clone(), op.clone(), args.clone(), i));
                }
                Event::Ret { tx, val, .. } => {
                    if let Some(pos) = pending.iter().rposition(|(t, ..)| t == tx) {
                        let (t, obj, op, args, _inv_idx) = pending.remove(pos);
                        out.push(OpExec {
                            tx: t,
                            obj,
                            op,
                            args,
                            val: val.clone(),
                        });
                    }
                }
                Event::Abort(tx) => {
                    pending.retain(|(t, ..)| t != tx);
                }
                _ => {}
            }
        }
        out
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<Event> for History {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        History {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;

    /// History H1 of the paper (Figure 1).
    fn h1() -> History {
        HistoryBuilder::new()
            .write(1, "x", 1)
            .try_commit(1)
            .commit(1)
            .read(2, "x", 1)
            .write(3, "x", 2)
            .write(3, "y", 2)
            .try_commit(3)
            .commit(3)
            .read(2, "y", 2)
            .try_commit(2)
            .abort(2)
            .build()
    }

    /// History H2: sequentialization of H1 (paper Section 4).
    fn h2() -> History {
        HistoryBuilder::new()
            .write(1, "x", 1)
            .try_commit(1)
            .commit(1)
            .write(3, "x", 2)
            .write(3, "y", 2)
            .try_commit(3)
            .commit(3)
            .read(2, "x", 1)
            .read(2, "y", 2)
            .try_commit(2)
            .abort(2)
            .build()
    }

    #[test]
    fn projections() {
        let h = h1();
        // read2(x,1)=2 events, read2(y,2)=2 events, tryC2, A2 => 6 events
        assert_eq!(h.per_tx(TxId(2)).len(), 6);
        assert_eq!(h.per_obj(&"y".into()).len(), 4); // write3(y,2) + read2(y,2)
        assert!(h.contains_tx(TxId(3)));
        assert!(!h.contains_tx(TxId(9)));
    }

    #[test]
    fn txs_in_first_event_order() {
        assert_eq!(h1().txs(), vec![TxId(1), TxId(2), TxId(3)]);
        assert_eq!(h1().objects(), vec![ObjId::from("x"), ObjId::from("y")]);
    }

    #[test]
    fn statuses_of_h1() {
        let h = h1();
        assert_eq!(h.status(TxId(1)), TxStatus::Committed);
        assert_eq!(h.status(TxId(3)), TxStatus::Committed);
        // T2 aborted without issuing tryA: forcefully aborted.
        assert_eq!(h.status(TxId(2)), TxStatus::ForcefullyAborted);
        assert!(h.is_complete());
        assert!(h.live_txs().is_empty());
    }

    #[test]
    fn equivalence_h1_h2() {
        // The paper: "history H2 is one of the histories that are equivalent
        // to H1".
        assert!(h1().equivalent(&h2()));
        assert!(h2().equivalent(&h1()));
        assert!(!h1().equivalent(&History::new()));
    }

    #[test]
    fn h1_not_sequential_h2_sequential() {
        assert!(!h1().is_sequential());
        assert!(h2().is_sequential());
    }

    #[test]
    fn pending_invocations() {
        let mut h = HistoryBuilder::new().write(1, "x", 1).build();
        assert!(!h.has_pending_invocation(TxId(1)));
        h.push(Event::Inv {
            tx: TxId(1),
            obj: "y".into(),
            op: OpName::Read,
            args: vec![],
        });
        assert!(h.has_pending_invocation(TxId(1)));
        // An abort answers the pending invocation.
        h.push(Event::Abort(TxId(1)));
        assert!(!h.has_pending_invocation(TxId(1)));
        assert_eq!(h.status(TxId(1)), TxStatus::ForcefullyAborted);
    }

    #[test]
    fn tx_view_collects_ops() {
        let h = h1();
        let v = h.tx_view(TxId(3));
        assert_eq!(v.ops.len(), 2);
        assert_eq!(v.ops[0], OpExec::write(TxId(3), "x".into(), Value::int(2)));
        assert_eq!(v.ops[1], OpExec::write(TxId(3), "y".into(), Value::int(2)));
        assert_eq!(v.status, TxStatus::Committed);
        assert!(v.pending.is_none());
    }

    #[test]
    fn tx_view_drops_op_answered_by_abort() {
        let mut h = HistoryBuilder::new().read(1, "x", 0).build();
        h.push(Event::Inv {
            tx: TxId(1),
            obj: "y".into(),
            op: OpName::Read,
            args: vec![],
        });
        h.push(Event::Abort(TxId(1)));
        let v = h.tx_view(TxId(1));
        assert_eq!(v.ops.len(), 1);
        assert!(v.pending.is_none());
        assert_eq!(v.status, TxStatus::ForcefullyAborted);
    }

    #[test]
    fn commit_pending_detection() {
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .try_commit(1)
            .read(2, "x", 1)
            .build();
        assert_eq!(h.status(TxId(1)), TxStatus::CommitPending);
        assert_eq!(h.status(TxId(2)), TxStatus::Live);
        assert_eq!(h.commit_pending_txs(), vec![TxId(1)]);
        assert_eq!(h.live_txs(), vec![TxId(1), TxId(2)]);
        assert!(!h.is_complete());
    }

    #[test]
    fn abort_pending_detection() {
        let mut h = HistoryBuilder::new().write(1, "x", 1).build();
        h.push(Event::TryAbort(TxId(1)));
        assert_eq!(h.status(TxId(1)), TxStatus::AbortPending);
        h.push(Event::Abort(TxId(1)));
        // Voluntary abort, not forceful.
        assert_eq!(h.status(TxId(1)), TxStatus::Aborted);
    }

    #[test]
    fn concat_and_prefix() {
        let a = HistoryBuilder::new().write(1, "x", 1).build();
        let b = HistoryBuilder::new().read(2, "x", 1).build();
        let c = a.concat(&b);
        assert_eq!(c.len(), 4);
        assert_eq!(c.prefix(2), a);
        assert_eq!(c.prefix(100), c);
    }

    #[test]
    fn all_ops_in_invocation_order() {
        let ops = h1().all_ops();
        let names: Vec<String> = ops.iter().map(|o| o.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "write1(x,1)",
                "read2(x,1)",
                "write3(x,2)",
                "write3(y,2)",
                "read2(y,2)"
            ]
        );
    }

    #[test]
    fn display_uses_paper_brackets() {
        let h = HistoryBuilder::new().write(1, "x", 1).build();
        assert_eq!(h.to_string(), "⟨inv1(x,write,1), ret1(x,write)→ok⟩");
    }

    #[test]
    fn sequential_rejects_resumed_tx() {
        // T1, then T2, then T1 again: not sequential.
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .read(2, "x", 0)
            .read(1, "y", 0)
            .build();
        assert!(!h.is_sequential());
    }
}
