//! Well-formedness of histories (Section 4).
//!
//! A history `H` is well-formed if for every transaction `Ti`, `H|Ti` is a
//! prefix of `O · F`, where `O` is a sequence of operation executions and `F`
//! is one of:
//!
//! 1. `⟨inv_i(ob, op, args), A_i⟩` — an abort answering a pending operation,
//! 2. `⟨tryA_i, A_i⟩`,
//! 3. `⟨tryC_i, C_i⟩`,
//! 4. `⟨tryC_i, A_i⟩`.
//!
//! In particular, (1) no event follows a commit or abort event, (2) only a
//! commit or abort event can follow a commit-try event, and (3) only an abort
//! event can follow an abort-try event. Transactions are sequential: an
//! operation is invoked only after the previous one responded.

use crate::event::{Event, TxId};
use crate::history::History;
use std::fmt;

/// Why a history is not well-formed.
///
/// Every variant carries the offending transaction `tx` and the event
/// `index` within the history at which the violation was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // fields documented on the enum: (tx, index) pairs
pub enum WfError {
    /// An event follows a commit or abort event of the same transaction.
    EventAfterCompletion { tx: TxId, index: usize },
    /// Something other than `C`/`A` follows a `tryC`.
    BadEventAfterTryCommit { tx: TxId, index: usize },
    /// Something other than `A` follows a `tryA`.
    BadEventAfterTryAbort { tx: TxId, index: usize },
    /// A response event with no matching pending invocation.
    UnmatchedResponse { tx: TxId, index: usize },
    /// An invocation while another invocation of the same transaction is
    /// still pending (transactions are sequential).
    InvocationWhilePending { tx: TxId, index: usize },
    /// A `C`/`A` response arrived while an *operation* invocation was pending
    /// and the response does not answer it (only `A` may do that).
    CommitAnswersOperation { tx: TxId, index: usize },
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WfError::EventAfterCompletion { tx, index } => {
                write!(f, "event #{index}: {tx} already completed")
            }
            WfError::BadEventAfterTryCommit { tx, index } => {
                write!(f, "event #{index}: only C/A may follow tryC of {tx}")
            }
            WfError::BadEventAfterTryAbort { tx, index } => {
                write!(f, "event #{index}: only A may follow tryA of {tx}")
            }
            WfError::UnmatchedResponse { tx, index } => {
                write!(
                    f,
                    "event #{index}: response for {tx} matches no pending invocation"
                )
            }
            WfError::InvocationWhilePending { tx, index } => {
                write!(
                    f,
                    "event #{index}: {tx} invoked while a previous invocation is pending"
                )
            }
            WfError::CommitAnswersOperation { tx, index } => {
                write!(
                    f,
                    "event #{index}: C cannot answer a pending operation of {tx}"
                )
            }
        }
    }
}

impl std::error::Error for WfError {}

/// Per-transaction automaton state used by the well-formedness scan.
#[derive(Clone, Debug, PartialEq, Eq)]
enum TxWf {
    /// Between operations; may invoke, tryC, or tryA.
    Idle,
    /// An operation invocation is pending (awaiting `Ret` or `Abort`).
    OpPending(Event),
    /// `tryC` issued; awaiting `C` or `A`.
    CommitPending,
    /// `tryA` issued; awaiting `A`.
    AbortPending,
    /// `C` or `A` received; no further events allowed.
    Done,
}

/// Checks whether `h` is well-formed; returns the first violation found.
pub fn check_well_formed(h: &History) -> Result<(), WfError> {
    use std::collections::HashMap;
    let mut states: HashMap<TxId, TxWf> = HashMap::new();
    for (index, e) in h.events().iter().enumerate() {
        let tx = e.tx();
        let st = states.entry(tx).or_insert(TxWf::Idle);
        let next = match (&st, e) {
            (TxWf::Done, _) => return Err(WfError::EventAfterCompletion { tx, index }),
            // --- Idle ---
            (TxWf::Idle, Event::Inv { .. }) => TxWf::OpPending(e.clone()),
            (TxWf::Idle, Event::TryCommit(_)) => TxWf::CommitPending,
            (TxWf::Idle, Event::TryAbort(_)) => TxWf::AbortPending,
            (TxWf::Idle, _) => return Err(WfError::UnmatchedResponse { tx, index }),
            // --- operation pending ---
            (TxWf::OpPending(inv), Event::Ret { .. }) => {
                if e.matches_invocation(inv) {
                    TxWf::Idle
                } else {
                    return Err(WfError::UnmatchedResponse { tx, index });
                }
            }
            (TxWf::OpPending(_), Event::Abort(_)) => TxWf::Done,
            (TxWf::OpPending(_), Event::Commit(_)) => {
                return Err(WfError::CommitAnswersOperation { tx, index })
            }
            (TxWf::OpPending(_), _) => return Err(WfError::InvocationWhilePending { tx, index }),
            // --- commit pending ---
            (TxWf::CommitPending, Event::Commit(_)) | (TxWf::CommitPending, Event::Abort(_)) => {
                TxWf::Done
            }
            (TxWf::CommitPending, _) => return Err(WfError::BadEventAfterTryCommit { tx, index }),
            // --- abort pending ---
            (TxWf::AbortPending, Event::Abort(_)) => TxWf::Done,
            (TxWf::AbortPending, _) => return Err(WfError::BadEventAfterTryAbort { tx, index }),
        };
        *st = next;
    }
    Ok(())
}

/// Convenience wrapper: true if `h` is well-formed.
pub fn is_well_formed(h: &History) -> bool {
    check_well_formed(h).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{paper, HistoryBuilder};
    use crate::event::OpName;

    #[test]
    fn paper_histories_are_well_formed() {
        for h in [
            paper::h1(),
            paper::h2(),
            paper::h3(),
            paper::h4(),
            paper::h5(),
        ] {
            assert!(check_well_formed(&h).is_ok(), "{h}");
        }
        assert!(is_well_formed(&History::new()));
    }

    #[test]
    fn event_after_commit_rejected() {
        let h = HistoryBuilder::new().commit_ok(1).read(1, "x", 0).build();
        assert!(matches!(
            check_well_formed(&h),
            Err(WfError::EventAfterCompletion { tx: TxId(1), .. })
        ));
    }

    #[test]
    fn event_after_abort_rejected() {
        let h = HistoryBuilder::new()
            .try_abort(1)
            .abort(1)
            .try_commit(1)
            .build();
        assert!(matches!(
            check_well_formed(&h),
            Err(WfError::EventAfterCompletion { .. })
        ));
    }

    #[test]
    fn operation_after_try_commit_rejected() {
        let h = HistoryBuilder::new().try_commit(1).read(1, "x", 0).build();
        assert!(matches!(
            check_well_formed(&h),
            Err(WfError::BadEventAfterTryCommit { .. })
        ));
    }

    #[test]
    fn commit_after_try_abort_rejected() {
        let h = HistoryBuilder::new().try_abort(1).commit(1).build();
        assert!(matches!(
            check_well_formed(&h),
            Err(WfError::BadEventAfterTryAbort { .. })
        ));
    }

    #[test]
    fn response_without_invocation_rejected() {
        let h = HistoryBuilder::new().ret_read(1, "x", 0).build();
        assert!(matches!(
            check_well_formed(&h),
            Err(WfError::UnmatchedResponse { .. })
        ));
        let h = HistoryBuilder::new().commit(1).build();
        assert!(matches!(
            check_well_formed(&h),
            Err(WfError::UnmatchedResponse { .. })
        ));
    }

    #[test]
    fn mismatched_response_rejected() {
        // Response on a different object than the pending invocation.
        let h = HistoryBuilder::new()
            .inv_read(1, "x")
            .ret_read(1, "y", 0)
            .build();
        assert!(matches!(
            check_well_formed(&h),
            Err(WfError::UnmatchedResponse { .. })
        ));
        // Response for a different operation.
        let h = HistoryBuilder::new()
            .inv_read(1, "x")
            .ret_write(1, "x")
            .build();
        assert!(matches!(
            check_well_formed(&h),
            Err(WfError::UnmatchedResponse { .. })
        ));
    }

    #[test]
    fn overlapping_invocations_rejected() {
        let h = HistoryBuilder::new()
            .inv_read(1, "x")
            .inv_read(1, "y")
            .build();
        assert!(matches!(
            check_well_formed(&h),
            Err(WfError::InvocationWhilePending { .. })
        ));
        // tryC while an operation is pending is also an invocation.
        let h = HistoryBuilder::new().inv_read(1, "x").try_commit(1).build();
        assert!(matches!(
            check_well_formed(&h),
            Err(WfError::InvocationWhilePending { .. })
        ));
    }

    #[test]
    fn abort_may_answer_pending_operation() {
        // F = ⟨inv, A⟩ is an allowed terminal shape.
        let h = HistoryBuilder::new().inv_read(1, "x").abort(1).build();
        assert!(is_well_formed(&h));
    }

    #[test]
    fn commit_cannot_answer_pending_operation() {
        let h = HistoryBuilder::new().inv_read(1, "x").commit(1).build();
        assert!(matches!(
            check_well_formed(&h),
            Err(WfError::CommitAnswersOperation { .. })
        ));
    }

    #[test]
    fn interleaving_across_txs_is_fine() {
        // Well-formedness is per-transaction; cross-transaction interleaving
        // at event granularity (as in H5) is allowed.
        let h = HistoryBuilder::new()
            .inv_read(1, "x")
            .inv_read(2, "x")
            .ret_read(2, "x", 0)
            .ret_read(1, "x", 0)
            .build();
        assert!(is_well_formed(&h));
    }

    #[test]
    fn custom_ops_check_matching() {
        let h = HistoryBuilder::new()
            .op(
                1,
                "q",
                OpName::Enq,
                vec![crate::value::Value::int(1)],
                crate::value::Value::Ok,
            )
            .commit_ok(1)
            .build();
        assert!(is_well_formed(&h));
    }
}
