//! Property-based tests of the Section 4 model invariants, over randomly
//! generated well-formed histories.

use proptest::prelude::*;

use tm_harness::randhist::{random_history, GenConfig};
use tm_model::{
    check_well_formed, complete_histories, History, RealTimeOrder, SpecRegistry, TxStatus,
};

fn any_config() -> impl Strategy<Value = GenConfig> {
    (
        2usize..=5,
        1usize..=4,
        1usize..=5,
        0.0f64..0.5,
        0.0f64..0.4,
        0.0f64..0.4,
    )
        .prop_map(
            |(txs, objs, max_ops, noise, commit_pending, abort)| GenConfig {
                txs,
                objs,
                max_ops,
                noise,
                commit_pending,
                abort,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every generated history is well-formed, and so is every prefix —
    /// well-formedness is prefix-closed by construction of the per-tx
    /// automaton.
    #[test]
    fn well_formedness_is_prefix_closed(config in any_config(), seed in 0u64..1_000_000) {
        let h = random_history(&config, seed);
        prop_assert!(check_well_formed(&h).is_ok());
        for n in 0..=h.len() {
            prop_assert!(check_well_formed(&h.prefix(n)).is_ok(), "prefix {n} of {h}");
        }
    }

    /// Projections partition the events: Σ_t |H|Tt| = |H|.
    #[test]
    fn projections_partition_events(config in any_config(), seed in 0u64..1_000_000) {
        let h = random_history(&config, seed);
        let total: usize = h.txs().iter().map(|&t| h.per_tx(t).len()).sum();
        prop_assert_eq!(total, h.len());
    }

    /// Equivalence is reflexive, and a history is equivalent to any
    /// reordering that preserves per-transaction subsequences (here: the
    /// canonical sequentialization by first-event order of completed txs is
    /// NOT generally equivalent — but the identity and per-tx concatenation
    /// are).
    #[test]
    fn equivalence_reflexive_and_per_tx_concat(config in any_config(), seed in 0u64..1_000_000) {
        let h = random_history(&config, seed);
        prop_assert!(h.equivalent(&h));
        // The per-transaction concatenation (a legal reordering) is
        // equivalent to H.
        let mut concat = History::new();
        for t in h.txs() {
            for e in h.per_tx(t).events() {
                concat.push(e.clone());
            }
        }
        prop_assert!(h.equivalent(&concat), "{h}");
        prop_assert!(concat.is_sequential());
    }

    /// Real-time order is a strict partial order: irreflexive, asymmetric,
    /// transitive; concurrency is symmetric.
    #[test]
    fn real_time_is_strict_partial_order(config in any_config(), seed in 0u64..1_000_000) {
        let h = random_history(&config, seed);
        let rt = RealTimeOrder::of(&h);
        let txs = h.txs();
        for &a in &txs {
            prop_assert!(!rt.precedes(a, a));
            for &b in &txs {
                if rt.precedes(a, b) {
                    prop_assert!(!rt.precedes(b, a), "asymmetry {a} {b}");
                }
                prop_assert_eq!(rt.concurrent(a, b), rt.concurrent(b, a));
                for &c in &txs {
                    if rt.precedes(a, b) && rt.precedes(b, c) {
                        prop_assert!(rt.precedes(a, c), "transitivity {a} {b} {c}");
                    }
                }
            }
        }
    }

    /// `Complete(H)`: exactly 2^p canonical members for p commit-pending
    /// transactions; each complete, well-formed, equivalent-or-extending H
    /// per transaction, and preserving H's real-time order.
    #[test]
    fn completions_are_correct(config in any_config(), seed in 0u64..1_000_000) {
        let h = random_history(&config, seed);
        let p = h.commit_pending_txs().len();
        let cs = complete_histories(&h);
        prop_assert_eq!(cs.len(), 1usize << p);
        let rt = RealTimeOrder::of(&h);
        for c in &cs {
            prop_assert!(check_well_formed(c).is_ok(), "{c}");
            prop_assert!(c.is_complete());
            prop_assert!(rt.preserved_by(&RealTimeOrder::of(c)));
            for t in h.txs() {
                let orig = h.per_tx(t);
                let comp = c.per_tx(t);
                prop_assert!(comp.len() >= orig.len());
                prop_assert_eq!(&comp.events()[..orig.len()], orig.events());
                // Live non-commit-pending transactions must be aborted.
                if h.status(t) == TxStatus::Live || h.status(t) == TxStatus::AbortPending {
                    prop_assert!(c.status(t).is_aborted());
                }
            }
        }
    }

    /// Statuses are stable under appending events of *other* transactions.
    #[test]
    fn status_depends_only_on_own_events(config in any_config(), seed in 0u64..1_000_000) {
        let h = random_history(&config, seed);
        for t in h.txs() {
            let via_projection = h.per_tx(t).status(t);
            prop_assert_eq!(h.status(t), via_projection);
        }
    }

    /// `all_ops` agrees with the per-transaction views.
    #[test]
    fn all_ops_consistent_with_views(config in any_config(), seed in 0u64..1_000_000) {
        let h = random_history(&config, seed);
        let total_view_ops: usize = h.txs().iter().map(|&t| h.tx_view(t).ops.len()).sum();
        prop_assert_eq!(h.all_ops().len(), total_view_ops);
    }

    /// Legality replay is deterministic: running the full-history legality
    /// check twice gives identical verdicts (guards against interior
    /// mutability bugs in specs).
    #[test]
    fn legality_is_deterministic(config in any_config(), seed in 0u64..1_000_000) {
        let h = random_history(&config, seed);
        let specs = SpecRegistry::registers();
        // Build the sequential per-tx concatenation and compare verdicts.
        let mut s = History::new();
        for t in h.txs() {
            for e in h.per_tx(t).events() {
                s.push(e.clone());
            }
        }
        let v1 = tm_model::all_txs_legal(&s, &specs).is_ok();
        let v2 = tm_model::all_txs_legal(&s, &specs).is_ok();
        prop_assert_eq!(v1, v2);
    }
}

/// Sequential-specification sanity: random op sequences through the queue,
/// stack, and set specs behave like their `std` references.
mod object_specs {
    use proptest::prelude::*;
    use std::collections::VecDeque;
    use tm_model::objects::{FifoQueue, IntSet, Stack};
    use tm_model::spec::SeqSpec;
    use tm_model::{OpName, Value};

    proptest! {
        #[test]
        fn queue_matches_vecdeque(ops in proptest::collection::vec((0u8..2, -5i64..5), 1..40)) {
            let q = FifoQueue;
            let mut state = q.initial();
            let mut reference: VecDeque<i64> = VecDeque::new();
            for (kind, v) in ops {
                if kind == 0 {
                    let (next, ret) = q.step(&state, &OpName::Enq, &[Value::int(v)]).unwrap();
                    prop_assert_eq!(ret, Value::Ok);
                    reference.push_back(v);
                    state = next;
                } else {
                    let (next, ret) = q.step(&state, &OpName::Deq, &[]).unwrap();
                    match reference.pop_front() {
                        Some(x) => prop_assert_eq!(ret, Value::int(x)),
                        None => prop_assert_eq!(ret, Value::Unit),
                    }
                    state = next;
                }
            }
        }

        #[test]
        fn stack_matches_vec(ops in proptest::collection::vec((0u8..2, -5i64..5), 1..40)) {
            let s = Stack;
            let mut state = s.initial();
            let mut reference: Vec<i64> = Vec::new();
            for (kind, v) in ops {
                if kind == 0 {
                    state = s.step(&state, &OpName::Push, &[Value::int(v)]).unwrap().0;
                    reference.push(v);
                } else {
                    let (next, ret) = s.step(&state, &OpName::Pop, &[]).unwrap();
                    match reference.pop() {
                        Some(x) => prop_assert_eq!(ret, Value::int(x)),
                        None => prop_assert_eq!(ret, Value::Unit),
                    }
                    state = next;
                }
            }
        }

        #[test]
        fn set_matches_btreeset(ops in proptest::collection::vec((0u8..3, -4i64..4), 1..40)) {
            let s = IntSet;
            let mut state = s.initial();
            let mut reference = std::collections::BTreeSet::new();
            for (kind, v) in ops {
                let (op, expected) = match kind {
                    0 => (OpName::Insert, Value::Bool(reference.insert(v))),
                    1 => (OpName::Remove, Value::Bool(reference.remove(&v))),
                    _ => (OpName::Contains, Value::Bool(reference.contains(&v))),
                };
                let (next, ret) = s.step(&state, &op, &[Value::int(v)]).unwrap();
                prop_assert_eq!(ret, expected);
                state = next;
            }
        }
    }
}
