//! Property tests pinning the `SeqSpec::accepts` / `SeqSpec::step` contract
//! on the whole object library.
//!
//! For every deterministic object, `accepts` must agree with `step`: the
//! return value `step` computes is accepted (yielding the same successor
//! state) and every *other* return value is rejected. The objects whose
//! state admits representation choice — the set (iteration order) and the
//! priority queue (ties between equal priorities) — get targeted coverage
//! of exactly those choice points: their canonical (sorted) state encoding
//! is what keeps them deterministic, and these tests fail loudly if that
//! canonicalization ever regresses.

use proptest::prelude::*;
use std::sync::Arc;

use tm_model::objects::pqueue::{extract_min, peek_min};
use tm_model::objects::{
    AppendLog, CasRegister, Counter, FifoQueue, IntSet, KvMap, PriorityQueue, Register, Stack,
};
use tm_model::{OpName, SeqSpec, Value};

/// A value guaranteed to differ from `ret` (for rejection checks).
fn perturb(ret: &Value) -> Value {
    match ret {
        Value::Int(v) => Value::int(v.wrapping_add(1)),
        Value::Bool(b) => Value::Bool(!b),
        Value::Ok => Value::Unit,
        Value::Unit => Value::int(0),
        other => {
            let candidate = Value::Unit;
            if &candidate == other {
                Value::int(7)
            } else {
                candidate
            }
        }
    }
}

/// Walks `ops` through `spec` via `step`, asserting at every transition
/// that `accepts` agrees (same successor) and rejects a perturbed return.
/// Operations the spec rejects (`step == None`) are skipped — op strategies
/// below only emit interface ops, so rejection means invalid args, which
/// the strategies avoid.
fn assert_accepts_agrees_with_step(
    spec: &dyn SeqSpec,
    ops: &[(OpName, Vec<Value>)],
) -> Result<(), TestCaseError> {
    let mut state = spec.initial();
    for (op, args) in ops {
        let (next, ret) = spec
            .step(&state, op, args)
            .unwrap_or_else(|| panic!("{}: interface op rejected: {op}({args:?})", spec.name()));
        let accepted = spec.accepts(&state, op, args, &ret);
        prop_assert_eq!(
            accepted.as_ref(),
            Some(&next),
            "{}: accepts must admit step's own return",
            spec.name()
        );
        let wrong = perturb(&ret);
        prop_assert!(wrong != ret, "perturbation failed for {ret}");
        prop_assert_eq!(
            spec.accepts(&state, op, args, &wrong),
            None,
            "{}: accepts must reject {} where step returned {}",
            spec.name(),
            wrong,
            ret
        );
        state = next;
    }
    Ok(())
}

fn small_int() -> impl Strategy<Value = i64> {
    -3i64..6
}

type OpSeq = Vec<(OpName, Vec<Value>)>;

/// The vendored proptest stub has no `prop_oneof!`; alternatives are picked
/// by a selector integer mapped through a match.
fn ops_from_choices(
    choices: u8,
    pick: fn(u8, i64, i64) -> (OpName, Vec<Value>),
) -> impl Strategy<Value = OpSeq> {
    proptest::collection::vec(
        (0u8..choices, small_int(), small_int()).prop_map(move |(c, a, b)| pick(c, a, b)),
        0..20,
    )
}

fn counter_ops() -> impl Strategy<Value = OpSeq> {
    ops_from_choices(3, |c, _, _| match c {
        0 => (OpName::Inc, vec![]),
        1 => (OpName::Dec, vec![]),
        _ => (OpName::Get, vec![]),
    })
}

fn register_ops() -> impl Strategy<Value = OpSeq> {
    ops_from_choices(2, |c, v, _| match c {
        0 => (OpName::Read, vec![]),
        _ => (OpName::Write, vec![Value::int(v)]),
    })
}

fn cas_ops() -> impl Strategy<Value = OpSeq> {
    ops_from_choices(3, |c, a, b| match c {
        0 => (OpName::Read, vec![]),
        1 => (OpName::Write, vec![Value::int(a)]),
        _ => (OpName::Cas, vec![Value::int(a), Value::int(b)]),
    })
}

fn queue_ops() -> impl Strategy<Value = OpSeq> {
    ops_from_choices(2, |c, v, _| match c {
        0 => (OpName::Enq, vec![Value::int(v)]),
        _ => (OpName::Deq, vec![]),
    })
}

fn stack_ops() -> impl Strategy<Value = OpSeq> {
    ops_from_choices(2, |c, v, _| match c {
        0 => (OpName::Push, vec![Value::int(v)]),
        _ => (OpName::Pop, vec![]),
    })
}

fn set_ops() -> impl Strategy<Value = OpSeq> {
    ops_from_choices(3, |c, v, _| {
        let op = match c {
            0 => OpName::Insert,
            1 => OpName::Remove,
            _ => OpName::Contains,
        };
        (op, vec![Value::int(v)])
    })
}

fn map_ops() -> impl Strategy<Value = OpSeq> {
    ops_from_choices(3, |c, k, v| match c {
        0 => (OpName::Insert, vec![Value::int(k), Value::int(v)]),
        1 => (OpName::Remove, vec![Value::int(k)]),
        _ => (OpName::Get, vec![Value::int(k)]),
    })
}

fn pqueue_ops() -> impl Strategy<Value = OpSeq> {
    ops_from_choices(3, |c, v, _| match c {
        0 => (OpName::Insert, vec![Value::int(v)]),
        1 => (extract_min(), vec![]),
        _ => (peek_min(), vec![]),
    })
}

fn log_ops() -> impl Strategy<Value = OpSeq> {
    ops_from_choices(2, |c, v, _| match c {
        0 => (OpName::Append, vec![Value::int(v)]),
        _ => (OpName::Read, vec![]),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn counter_accepts_agrees_with_step(ops in counter_ops()) {
        assert_accepts_agrees_with_step(&Counter, &ops)?;
    }

    #[test]
    fn register_accepts_agrees_with_step(ops in register_ops()) {
        assert_accepts_agrees_with_step(&Register::new(0), &ops)?;
    }

    #[test]
    fn cas_accepts_agrees_with_step(ops in cas_ops()) {
        assert_accepts_agrees_with_step(&CasRegister::new(0), &ops)?;
    }

    #[test]
    fn queue_accepts_agrees_with_step(ops in queue_ops()) {
        assert_accepts_agrees_with_step(&FifoQueue, &ops)?;
    }

    #[test]
    fn stack_accepts_agrees_with_step(ops in stack_ops()) {
        assert_accepts_agrees_with_step(&Stack, &ops)?;
    }

    #[test]
    fn set_accepts_agrees_with_step(ops in set_ops()) {
        assert_accepts_agrees_with_step(&IntSet, &ops)?;
    }

    #[test]
    fn map_accepts_agrees_with_step(ops in map_ops()) {
        assert_accepts_agrees_with_step(&KvMap, &ops)?;
    }

    #[test]
    fn pqueue_accepts_agrees_with_step(ops in pqueue_ops()) {
        assert_accepts_agrees_with_step(&PriorityQueue, &ops)?;
    }

    #[test]
    fn log_accepts_agrees_with_step(ops in log_ops()) {
        assert_accepts_agrees_with_step(&AppendLog, &ops)?;
    }

    /// Set determinism under insertion-order choice: any permutation of the
    /// same inserts yields the same canonical state, so `accepts` verdicts
    /// cannot depend on iteration order.
    #[test]
    fn set_state_is_insertion_order_independent(
        mut values in proptest::collection::vec(small_int(), 1..8),
        seed in 0u64..1000,
    ) {
        let spec: Arc<dyn SeqSpec> = Arc::new(IntSet);
        let run = |vals: &[i64]| {
            let mut s = spec.initial();
            for &v in vals {
                s = spec.step(&s, &OpName::Insert, &[Value::int(v)]).unwrap().0;
            }
            s
        };
        let forward = run(&values);
        // A deterministic shuffle derived from the seed.
        let n = values.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 7)) % n;
            values.swap(i, j);
        }
        let shuffled = run(&values);
        prop_assert_eq!(&forward, &shuffled);
        // And `accepts` judges a contains-query identically from both.
        let probe = Value::int(0);
        let present = forward.as_list().unwrap().contains(&probe);
        prop_assert_eq!(
            spec.accepts(
                &forward,
                &OpName::Contains,
                std::slice::from_ref(&probe),
                &Value::Bool(present)
            ),
            spec.accepts(&shuffled, &OpName::Contains, &[probe], &Value::Bool(present))
        );
    }
}

/// Priority-queue ties: duplicated priorities are a genuine representation
/// choice point ("which copy comes out?") that the multiset state erases —
/// `extract_min` must accept the tied priority exactly once per copy and
/// reject everything else.
#[test]
fn pqueue_tie_extraction_is_deterministic_up_to_multiplicity() {
    let q = PriorityQueue;
    let mut s = q.initial();
    for v in [4, 2, 4, 2] {
        s = q.step(&s, &OpName::Insert, &[Value::int(v)]).unwrap().0;
    }
    // Two copies of 2 come out first, regardless of insertion interleaving.
    let (s1, r1) = q.step(&s, &extract_min(), &[]).unwrap();
    assert_eq!(r1, Value::int(2));
    assert!(q.accepts(&s, &extract_min(), &[], &Value::int(2)).is_some());
    assert!(
        q.accepts(&s, &extract_min(), &[], &Value::int(4)).is_none(),
        "4 is not minimal"
    );
    let (s2, r2) = q.step(&s1, &extract_min(), &[]).unwrap();
    assert_eq!(r2, Value::int(2), "the tied copy");
    // After both 2s, the 4s drain.
    let (s3, r3) = q.step(&s2, &extract_min(), &[]).unwrap();
    assert_eq!(r3, Value::int(4));
    let (_, r4) = q.step(&s3, &extract_min(), &[]).unwrap();
    assert_eq!(r4, Value::int(4));
    // Ties are invisible in the state: the two extraction orders of equal
    // copies produce identical successor states.
    assert_eq!(
        q.accepts(&s, &extract_min(), &[], &Value::int(2)).unwrap(),
        s1,
        "accepting the tied minimum lands in the same canonical state"
    );
}

/// `peek_min` over a tie is read-only and unambiguous.
#[test]
fn pqueue_tied_peek_is_stable() {
    let q = PriorityQueue;
    let mut s = q.initial();
    for v in [3, 3] {
        s = q.step(&s, &OpName::Insert, &[Value::int(v)]).unwrap().0;
    }
    let accepted = q.accepts(&s, &peek_min(), &[], &Value::int(3)).unwrap();
    assert_eq!(accepted, s, "peek must not mutate");
    assert!(q.accepts(&s, &peek_min(), &[], &Value::Unit).is_none());
}
