//! The `tm-serve/v1` wire protocol: versioned, line-delimited JSON frames.
//!
//! One frame per line, parsed and rendered through the hand-rolled
//! [`tm_trace::Json`] document model (the same layer the trace format uses —
//! no new dependencies, and `feed` frames embed trace events in exactly the
//! `events`-array element shape of the JSON trace format).
//!
//! ## Client → server
//!
//! ```json
//! {"frame":"open","v":1,"session":"s1"}
//! {"frame":"feed","session":"s1","event":{"kind":"inv","tx":1,"obj":"x","op":"read"}}
//! {"frame":"close","session":"s1"}
//! {"frame":"shutdown"}
//! ```
//!
//! `open` carries the protocol version (`"v":1`); the other client frames
//! are version-bound by their session. `shutdown` asks the daemon to drain
//! every in-flight session and exit (the line-oriented stand-in for a
//! signal: the workspace forbids `unsafe`, so no signal handler can be
//! installed — EOF on stdin/replay input drains identically).
//!
//! ## Server → client
//!
//! ```json
//! {"frame":"opened","v":1,"session":"s1"}
//! {"frame":"verdict","session":"s1","seq":3,"verdict":"opaque"}
//! {"frame":"verdict","session":"s1","seq":7,"verdict":"violated","at":6}
//! {"frame":"busy","session":"s1","inbox":1024}
//! {"frame":"error","session":"s1","message":"..."}
//! {"frame":"closed","session":"s1","events":9,"checks":4,"violated_at":6,"poisoned":false}
//! ```
//!
//! One `verdict` frame per fed event, tagged with the 1-based sequence
//! number of that event within the session's stream. `verdict` is
//! `"opaque"` (a fresh check passed), `"opaque_skip"` (the monitor's
//! invocation-skip argument applied — no check was needed), or
//! `"violated"` with the sticky first violation index `at` (0-based, as
//! the monitor reports it). A verdict frame is a pure function of the
//! session's own event stream — never of what other multiplexed sessions
//! are doing — which is the byte-identity contract the replay tests pin.
//!
//! Schema evolution follows the workspace rule: versions only increment,
//! fields are only added, never repurposed.

use tm_model::Event;
use tm_trace::{event_from_doc, event_to_doc, Json, ParseError};

/// The protocol version spoken by this build (the `"v"` of `open`/`opened`).
pub const PROTOCOL_VERSION: i64 = 1;

/// The protocol identifier (for banners and artifact metadata).
pub const PROTOCOL: &str = "tm-serve/v1";

/// A parsed client-side frame.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientFrame {
    /// Open a new session under a client-chosen identifier.
    Open {
        /// The session identifier (any non-empty string).
        session: String,
    },
    /// Append one trace event to a session's stream.
    Feed {
        /// The target session.
        session: String,
        /// The event, in the trace format's wire shape.
        event: Event,
    },
    /// Close a session: its remaining inbox is drained, a `closed` summary
    /// frame is emitted, and its resources are released.
    Close {
        /// The target session.
        session: String,
    },
    /// Drain every in-flight session and exit.
    Shutdown,
}

/// Parses one client frame from one input line.
pub fn parse_client_frame(line: &str) -> Result<ClientFrame, ParseError> {
    let doc = Json::parse(line)?;
    let frame_err = |msg: String| ParseError {
        line: doc.line(),
        message: format!("invalid frame: {msg}"),
    };
    let Some(Json::Str(kind)) = doc.get("frame") else {
        return Err(frame_err("missing string `frame` field".into()));
    };
    let session_of = |doc: &Json| -> Result<String, ParseError> {
        match doc.get("session") {
            Some(Json::Str(s)) if !s.is_empty() => Ok(s.clone()),
            Some(Json::Str(_)) => Err(frame_err("`session` must be non-empty".into())),
            _ => Err(frame_err("missing string `session` field".into())),
        }
    };
    match kind.as_str() {
        "open" => {
            match doc.get("v") {
                Some(Json::Int(v)) if *v == PROTOCOL_VERSION => {}
                Some(Json::Int(v)) => {
                    return Err(frame_err(format!(
                        "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                    )))
                }
                _ => return Err(frame_err("missing integer `v` field".into())),
            }
            Ok(ClientFrame::Open {
                session: session_of(&doc)?,
            })
        }
        "feed" => {
            let session = session_of(&doc)?;
            let event_doc = doc
                .get("event")
                .ok_or_else(|| frame_err("missing `event` field".into()))?;
            Ok(ClientFrame::Feed {
                session,
                event: event_from_doc(event_doc)?,
            })
        }
        "close" => Ok(ClientFrame::Close {
            session: session_of(&doc)?,
        }),
        "shutdown" => Ok(ClientFrame::Shutdown),
        other => Err(frame_err(format!("unknown frame kind `{other}`"))),
    }
}

/// Renders a client frame as its wire line (used by the bench driver and
/// fixture tooling; the daemon only parses this direction).
pub fn render_client_frame(frame: &ClientFrame) -> String {
    let doc = match frame {
        ClientFrame::Open { session } => Json::Obj(
            0,
            vec![
                ("frame".into(), Json::Str("open".into())),
                ("v".into(), Json::Int(PROTOCOL_VERSION)),
                ("session".into(), Json::Str(session.clone())),
            ],
        ),
        ClientFrame::Feed { session, event } => Json::Obj(
            0,
            vec![
                ("frame".into(), Json::Str("feed".into())),
                ("session".into(), Json::Str(session.clone())),
                ("event".into(), event_to_doc(event)),
            ],
        ),
        ClientFrame::Close { session } => Json::Obj(
            0,
            vec![
                ("frame".into(), Json::Str("close".into())),
                ("session".into(), Json::Str(session.clone())),
            ],
        ),
        ClientFrame::Shutdown => Json::Obj(0, vec![("frame".into(), Json::Str("shutdown".into()))]),
    };
    doc.to_compact_string()
}

/// A server-side frame, ready to render.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerFrame {
    /// Acknowledges `open`.
    Opened {
        /// The session identifier.
        session: String,
    },
    /// The per-event verdict.
    Verdict {
        /// The session identifier.
        session: String,
        /// 1-based index of the event within the session's stream.
        seq: usize,
        /// `"opaque"`, `"opaque_skip"`, or `"violated"`.
        verdict: &'static str,
        /// First violation index (0-based), present iff violated.
        at: Option<usize>,
    },
    /// Backpressure: the session's inbox is full and the frame was NOT
    /// accepted — the client must resend after the daemon catches up.
    Busy {
        /// The session identifier.
        session: String,
        /// The inbox bound that was hit.
        inbox: usize,
    },
    /// A session-scoped or stream-scoped error. Frame-level errors carry no
    /// session; feed errors on a poisoned session repeat its latched error.
    Error {
        /// The session, when the error is session-scoped.
        session: Option<String>,
        /// Human-readable description.
        message: String,
    },
    /// The end-of-session summary emitted once the inbox is drained.
    Closed {
        /// The session identifier.
        session: String,
        /// Events accepted over the session's lifetime.
        events: usize,
        /// Full checks run (the remainder were invocation-skips).
        checks: usize,
        /// Sticky first violation index, if any.
        violated_at: Option<usize>,
        /// Whether the session was poisoned by a hard error.
        poisoned: bool,
    },
}

impl ServerFrame {
    /// Renders the frame as its compact wire line (no trailing newline).
    pub fn render(&self) -> String {
        let doc = match self {
            ServerFrame::Opened { session } => Json::Obj(
                0,
                vec![
                    ("frame".into(), Json::Str("opened".into())),
                    ("v".into(), Json::Int(PROTOCOL_VERSION)),
                    ("session".into(), Json::Str(session.clone())),
                ],
            ),
            ServerFrame::Verdict {
                session,
                seq,
                verdict,
                at,
            } => {
                let mut fields = vec![
                    ("frame".into(), Json::Str("verdict".into())),
                    ("session".into(), Json::Str(session.clone())),
                    ("seq".into(), Json::Int(*seq as i64)),
                    ("verdict".into(), Json::Str((*verdict).into())),
                ];
                if let Some(at) = at {
                    fields.push(("at".into(), Json::Int(*at as i64)));
                }
                Json::Obj(0, fields)
            }
            ServerFrame::Busy { session, inbox } => Json::Obj(
                0,
                vec![
                    ("frame".into(), Json::Str("busy".into())),
                    ("session".into(), Json::Str(session.clone())),
                    ("inbox".into(), Json::Int(*inbox as i64)),
                ],
            ),
            ServerFrame::Error { session, message } => {
                let mut fields = vec![("frame".into(), Json::Str("error".into()))];
                if let Some(session) = session {
                    fields.push(("session".into(), Json::Str(session.clone())));
                }
                fields.push(("message".into(), Json::Str(message.clone())));
                Json::Obj(0, fields)
            }
            ServerFrame::Closed {
                session,
                events,
                checks,
                violated_at,
                poisoned,
            } => {
                let mut fields = vec![
                    ("frame".into(), Json::Str("closed".into())),
                    ("session".into(), Json::Str(session.clone())),
                    ("events".into(), Json::Int(*events as i64)),
                    ("checks".into(), Json::Int(*checks as i64)),
                ];
                if let Some(at) = violated_at {
                    fields.push(("violated_at".into(), Json::Int(*at as i64)));
                }
                fields.push(("poisoned".into(), Json::Bool(*poisoned)));
                Json::Obj(0, fields)
            }
        };
        doc.to_compact_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::TxId;

    #[test]
    fn client_frames_roundtrip_through_render_and_parse() {
        let frames = [
            ClientFrame::Open {
                session: "s1".into(),
            },
            ClientFrame::Feed {
                session: "s1".into(),
                event: Event::TryCommit(TxId(3)),
            },
            ClientFrame::Close {
                session: "s1".into(),
            },
            ClientFrame::Shutdown,
        ];
        for f in frames {
            let line = render_client_frame(&f);
            assert_eq!(parse_client_frame(&line).unwrap(), f, "{line}");
        }
    }

    #[test]
    fn open_checks_the_protocol_version() {
        let e = parse_client_frame(r#"{"frame":"open","v":9,"session":"s"}"#).unwrap_err();
        assert!(e.message.contains("unsupported protocol version 9"), "{e}");
        let e = parse_client_frame(r#"{"frame":"open","session":"s"}"#).unwrap_err();
        assert!(e.message.contains("missing integer `v`"), "{e}");
    }

    #[test]
    fn malformed_frames_are_rejected_with_positions() {
        for (bad, needle) in [
            (r#"{"v":1}"#, "missing string `frame`"),
            (r#"{"frame":"zap"}"#, "unknown frame kind `zap`"),
            (r#"{"frame":"feed","session":"s"}"#, "missing `event`"),
            (r#"{"frame":"feed","session":"","event":{}}"#, "non-empty"),
            (r#"{"frame":"close"}"#, "missing string `session`"),
            (
                r#"{"frame":"feed","session":"s","event":{"kind":"zap"}}"#,
                "unknown event kind",
            ),
            ("not json", "invalid keyword"),
        ] {
            let e = parse_client_frame(bad).unwrap_err();
            assert!(e.message.contains(needle), "{bad}: {e}");
        }
    }

    #[test]
    fn server_frames_render_compact_and_stable() {
        assert_eq!(
            ServerFrame::Verdict {
                session: "s1".into(),
                seq: 7,
                verdict: "violated",
                at: Some(6),
            }
            .render(),
            r#"{"frame":"verdict","session":"s1","seq":7,"verdict":"violated","at":6}"#
        );
        assert_eq!(
            ServerFrame::Verdict {
                session: "s1".into(),
                seq: 1,
                verdict: "opaque_skip",
                at: None,
            }
            .render(),
            r#"{"frame":"verdict","session":"s1","seq":1,"verdict":"opaque_skip"}"#
        );
        assert_eq!(
            ServerFrame::Closed {
                session: "s".into(),
                events: 9,
                checks: 4,
                violated_at: None,
                poisoned: false,
            }
            .render(),
            r#"{"frame":"closed","session":"s","events":9,"checks":4,"poisoned":false}"#
        );
        assert_eq!(
            ServerFrame::Error {
                session: None,
                message: "line 3: bad".into(),
            }
            .render(),
            r#"{"frame":"error","message":"line 3: bad"}"#
        );
    }
}
