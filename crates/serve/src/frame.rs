//! The `tm-serve/v1.1` wire protocol: versioned, line-delimited JSON frames.
//!
//! One frame per line, parsed and rendered through the hand-rolled
//! [`tm_trace::Json`] document model (the same layer the trace format uses —
//! no new dependencies, and `feed` frames embed trace events in exactly the
//! `events`-array element shape of the JSON trace format).
//!
//! ## Client → server
//!
//! ```json
//! {"frame":"open","v":1,"minor":1,"session":"s1"}
//! {"frame":"feed","session":"s1","event":{"kind":"inv","tx":1,"obj":"x","op":"read"},"seq":4}
//! {"frame":"close","session":"s1"}
//! {"frame":"shutdown"}
//! ```
//!
//! `open` carries the protocol version (`"v":1`, minor `1`); the other
//! client frames are version-bound by their session. Re-`open`ing an
//! already-open session from a *different* connection re-binds the session
//! to that connection — the reconnect path; from the same connection it
//! stays an error. `feed` may tag the event with its 1-based `seq` within
//! the session's stream: a tagged feed is **idempotent** (a duplicate of an
//! already-accepted `seq` is answered with `ack` instead of being fed
//! twice), which is what makes client-side resend after a lost response
//! safe. `shutdown` asks the daemon to drain every in-flight session and
//! exit (the line-oriented stand-in for a signal: the workspace forbids
//! `unsafe`, so no signal handler can be installed — EOF on stdin/replay
//! input drains identically).
//!
//! ## Server → client
//!
//! ```json
//! {"frame":"opened","v":1,"minor":1,"session":"s1"}
//! {"frame":"verdict","session":"s1","seq":3,"verdict":"opaque"}
//! {"frame":"verdict","session":"s1","seq":7,"verdict":"violated","at":6}
//! {"frame":"ack","session":"s1","seq":4}
//! {"frame":"busy","session":"s1","inbox":1024,"seq":9,"retry_after_turns":3}
//! {"frame":"error","session":"s1","seq":2,"message":"..."}
//! {"frame":"closed","session":"s1","events":9,"checks":4,"violated_at":6,"poisoned":false}
//! ```
//!
//! One `verdict` frame per fed event, tagged with the 1-based sequence
//! number of that event within the session's stream. `verdict` is
//! `"opaque"` (a fresh check passed), `"opaque_skip"` (the monitor's
//! invocation-skip argument applied — no check was needed), or
//! `"violated"` with the sticky first violation index `at` (0-based, as
//! the monitor reports it). A verdict frame is a pure function of the
//! session's own event stream — never of what other multiplexed sessions
//! are doing — which is the byte-identity contract the replay tests pin.
//!
//! v1.1 additions (all additive; a v1 frame still parses):
//!
//! * `busy` carries the rejected event's would-be `seq` (resend precisely
//!   from there) and, when the overload governor is shedding, a
//!   `retry_after_turns` hint;
//! * `ack` answers a duplicate seq-tagged feed: events through `seq` are
//!   already accepted (their verdicts may have been lost in flight);
//! * session-scoped `error` frames caused by a specific event carry that
//!   event's `seq` (positioned errors);
//! * `closed` carries `"reaped":true` when the session was closed by the
//!   idle-deadline reaper rather than a client `close`.
//!
//! Schema evolution follows the workspace rule: versions only increment,
//! fields are only added, never repurposed.

use tm_model::Event;
use tm_trace::{event_from_doc, event_to_doc, Json, ParseError};

/// The protocol major version (the `"v"` of `open`/`opened`).
pub const PROTOCOL_VERSION: i64 = 1;

/// The protocol minor version (the `"minor"` of `open`/`opened`): additive
/// schema revisions within a major version. Frames without the field are
/// minor 0.
pub const PROTOCOL_MINOR: i64 = 1;

/// The protocol identifier (for banners and artifact metadata).
pub const PROTOCOL: &str = "tm-serve/v1.1";

/// A parsed client-side frame.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientFrame {
    /// Open a new session under a client-chosen identifier (or re-bind an
    /// open session to a new connection after a reconnect).
    Open {
        /// The session identifier (any non-empty string).
        session: String,
    },
    /// Append one trace event to a session's stream.
    Feed {
        /// The target session.
        session: String,
        /// The event, in the trace format's wire shape.
        event: Event,
        /// The event's 1-based sequence number, when the client wants
        /// idempotent delivery (duplicates answered with `ack`, gaps
        /// rejected). Untagged feeds are accepted in arrival order.
        seq: Option<usize>,
    },
    /// Close a session: its remaining inbox is drained, a `closed` summary
    /// frame is emitted, and its resources are released.
    Close {
        /// The target session.
        session: String,
    },
    /// Drain every in-flight session and exit.
    Shutdown,
}

fn opt_seq(doc: &Json, key: &str) -> Result<Option<usize>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(Json::Int(v)) if *v >= 1 => Ok(Some(*v as usize)),
        Some(_) => Err(format!("`{key}` must be a positive integer")),
    }
}

/// Parses one client frame from one input line.
pub fn parse_client_frame(line: &str) -> Result<ClientFrame, ParseError> {
    let doc = Json::parse(line)?;
    let frame_err = |msg: String| ParseError {
        line: doc.line(),
        message: format!("invalid frame: {msg}"),
    };
    let Some(Json::Str(kind)) = doc.get("frame") else {
        return Err(frame_err("missing string `frame` field".into()));
    };
    let session_of = |doc: &Json| -> Result<String, ParseError> {
        match doc.get("session") {
            Some(Json::Str(s)) if !s.is_empty() => Ok(s.clone()),
            Some(Json::Str(_)) => Err(frame_err("`session` must be non-empty".into())),
            _ => Err(frame_err("missing string `session` field".into())),
        }
    };
    match kind.as_str() {
        "open" => {
            match doc.get("v") {
                Some(Json::Int(v)) if *v == PROTOCOL_VERSION => {}
                Some(Json::Int(v)) => {
                    return Err(frame_err(format!(
                        "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                    )))
                }
                _ => return Err(frame_err("missing integer `v` field".into())),
            }
            // `minor` is advisory: minors are additive, so any minor of a
            // supported major parses (v1 frames simply omit the field).
            Ok(ClientFrame::Open {
                session: session_of(&doc)?,
            })
        }
        "feed" => {
            let session = session_of(&doc)?;
            let event_doc = doc
                .get("event")
                .ok_or_else(|| frame_err("missing `event` field".into()))?;
            let seq = opt_seq(&doc, "seq").map_err(&frame_err)?;
            Ok(ClientFrame::Feed {
                session,
                event: event_from_doc(event_doc)?,
                seq,
            })
        }
        "close" => Ok(ClientFrame::Close {
            session: session_of(&doc)?,
        }),
        "shutdown" => Ok(ClientFrame::Shutdown),
        other => Err(frame_err(format!("unknown frame kind `{other}`"))),
    }
}

/// Renders a client frame as its wire line (used by the client library,
/// the bench driver, and fixture tooling).
pub fn render_client_frame(frame: &ClientFrame) -> String {
    let doc = match frame {
        ClientFrame::Open { session } => Json::Obj(
            0,
            vec![
                ("frame".into(), Json::Str("open".into())),
                ("v".into(), Json::Int(PROTOCOL_VERSION)),
                ("minor".into(), Json::Int(PROTOCOL_MINOR)),
                ("session".into(), Json::Str(session.clone())),
            ],
        ),
        ClientFrame::Feed {
            session,
            event,
            seq,
        } => {
            let mut fields = vec![
                ("frame".into(), Json::Str("feed".into())),
                ("session".into(), Json::Str(session.clone())),
                ("event".into(), event_to_doc(event)),
            ];
            if let Some(seq) = seq {
                fields.push(("seq".into(), Json::Int(*seq as i64)));
            }
            Json::Obj(0, fields)
        }
        ClientFrame::Close { session } => Json::Obj(
            0,
            vec![
                ("frame".into(), Json::Str("close".into())),
                ("session".into(), Json::Str(session.clone())),
            ],
        ),
        ClientFrame::Shutdown => Json::Obj(0, vec![("frame".into(), Json::Str("shutdown".into()))]),
    };
    doc.to_compact_string()
}

/// A server-side frame, ready to render.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerFrame {
    /// Acknowledges `open` (including a reconnect re-bind).
    Opened {
        /// The session identifier.
        session: String,
    },
    /// The per-event verdict.
    Verdict {
        /// The session identifier.
        session: String,
        /// 1-based index of the event within the session's stream.
        seq: usize,
        /// `"opaque"`, `"opaque_skip"`, or `"violated"`.
        verdict: &'static str,
        /// First violation index (0-based), present iff violated.
        at: Option<usize>,
    },
    /// Answers a duplicate seq-tagged feed: events through `seq` are
    /// already accepted, nothing was fed twice.
    Ack {
        /// The session identifier.
        session: String,
        /// Events accepted so far (the session's acceptance cursor).
        seq: usize,
    },
    /// Backpressure: the frame was NOT accepted — the client must resend
    /// after the daemon catches up.
    Busy {
        /// The session identifier.
        session: String,
        /// The inbox bound in force.
        inbox: usize,
        /// The rejected event's would-be 1-based `seq` — resend from here.
        /// Absent when the rejected frame was an `open`.
        seq: Option<usize>,
        /// Overload-governor hint: scheduler turns to back off before
        /// resending. Absent on plain inbox backpressure.
        retry_after_turns: Option<u64>,
    },
    /// A session-scoped or stream-scoped error. Frame-level errors carry no
    /// session; feed errors on a poisoned session repeat its latched error.
    Error {
        /// The session, when the error is session-scoped.
        session: Option<String>,
        /// The 1-based `seq` of the event that caused the error, when the
        /// error is positioned on a specific accepted event.
        seq: Option<usize>,
        /// Human-readable description.
        message: String,
    },
    /// The end-of-session summary emitted once the inbox is drained.
    Closed {
        /// The session identifier.
        session: String,
        /// Events accepted over the session's lifetime.
        events: usize,
        /// Full checks run (the remainder were invocation-skips).
        checks: usize,
        /// Sticky first violation index, if any.
        violated_at: Option<usize>,
        /// Whether the session was poisoned by a hard error.
        poisoned: bool,
        /// Whether the idle-deadline reaper (not a client `close`) ended
        /// the session.
        reaped: bool,
    },
}

impl ServerFrame {
    /// Renders the frame as its compact wire line (no trailing newline).
    pub fn render(&self) -> String {
        let doc = match self {
            ServerFrame::Opened { session } => Json::Obj(
                0,
                vec![
                    ("frame".into(), Json::Str("opened".into())),
                    ("v".into(), Json::Int(PROTOCOL_VERSION)),
                    ("minor".into(), Json::Int(PROTOCOL_MINOR)),
                    ("session".into(), Json::Str(session.clone())),
                ],
            ),
            ServerFrame::Verdict {
                session,
                seq,
                verdict,
                at,
            } => {
                let mut fields = vec![
                    ("frame".into(), Json::Str("verdict".into())),
                    ("session".into(), Json::Str(session.clone())),
                    ("seq".into(), Json::Int(*seq as i64)),
                    ("verdict".into(), Json::Str((*verdict).into())),
                ];
                if let Some(at) = at {
                    fields.push(("at".into(), Json::Int(*at as i64)));
                }
                Json::Obj(0, fields)
            }
            ServerFrame::Ack { session, seq } => Json::Obj(
                0,
                vec![
                    ("frame".into(), Json::Str("ack".into())),
                    ("session".into(), Json::Str(session.clone())),
                    ("seq".into(), Json::Int(*seq as i64)),
                ],
            ),
            ServerFrame::Busy {
                session,
                inbox,
                seq,
                retry_after_turns,
            } => {
                let mut fields = vec![
                    ("frame".into(), Json::Str("busy".into())),
                    ("session".into(), Json::Str(session.clone())),
                    ("inbox".into(), Json::Int(*inbox as i64)),
                ];
                if let Some(seq) = seq {
                    fields.push(("seq".into(), Json::Int(*seq as i64)));
                }
                if let Some(turns) = retry_after_turns {
                    fields.push(("retry_after_turns".into(), Json::Int(*turns as i64)));
                }
                Json::Obj(0, fields)
            }
            ServerFrame::Error {
                session,
                seq,
                message,
            } => {
                let mut fields = vec![("frame".into(), Json::Str("error".into()))];
                if let Some(session) = session {
                    fields.push(("session".into(), Json::Str(session.clone())));
                }
                if let Some(seq) = seq {
                    fields.push(("seq".into(), Json::Int(*seq as i64)));
                }
                fields.push(("message".into(), Json::Str(message.clone())));
                Json::Obj(0, fields)
            }
            ServerFrame::Closed {
                session,
                events,
                checks,
                violated_at,
                poisoned,
                reaped,
            } => {
                let mut fields = vec![
                    ("frame".into(), Json::Str("closed".into())),
                    ("session".into(), Json::Str(session.clone())),
                    ("events".into(), Json::Int(*events as i64)),
                    ("checks".into(), Json::Int(*checks as i64)),
                ];
                if let Some(at) = violated_at {
                    fields.push(("violated_at".into(), Json::Int(*at as i64)));
                }
                fields.push(("poisoned".into(), Json::Bool(*poisoned)));
                if *reaped {
                    fields.push(("reaped".into(), Json::Bool(true)));
                }
                Json::Obj(0, fields)
            }
        };
        doc.to_compact_string()
    }
}

/// Parses one server frame from one response line — the client library's
/// half of the protocol. Accepts both v1 and v1.1 renders (every v1.1
/// field is optional on parse).
pub fn parse_server_frame(line: &str) -> Result<ServerFrame, ParseError> {
    let doc = Json::parse(line)?;
    let frame_err = |msg: String| ParseError {
        line: doc.line(),
        message: format!("invalid server frame: {msg}"),
    };
    let Some(Json::Str(kind)) = doc.get("frame") else {
        return Err(frame_err("missing string `frame` field".into()));
    };
    let session_of = |doc: &Json| -> Result<String, ParseError> {
        match doc.get("session") {
            Some(Json::Str(s)) if !s.is_empty() => Ok(s.clone()),
            _ => Err(frame_err("missing string `session` field".into())),
        }
    };
    let int_of = |doc: &Json, key: &str| -> Result<usize, ParseError> {
        match doc.get(key) {
            Some(Json::Int(v)) if *v >= 0 => Ok(*v as usize),
            _ => Err(frame_err(format!("missing integer `{key}` field"))),
        }
    };
    match kind.as_str() {
        "opened" => Ok(ServerFrame::Opened {
            session: session_of(&doc)?,
        }),
        "verdict" => {
            let verdict = match doc.get("verdict") {
                Some(Json::Str(s)) => match s.as_str() {
                    "opaque" => "opaque",
                    "opaque_skip" => "opaque_skip",
                    "violated" => "violated",
                    other => return Err(frame_err(format!("unknown verdict `{other}`"))),
                },
                _ => return Err(frame_err("missing string `verdict` field".into())),
            };
            let at = match doc.get("at") {
                Some(Json::Int(v)) if *v >= 0 => Some(*v as usize),
                None => None,
                Some(_) => return Err(frame_err("`at` must be a non-negative integer".into())),
            };
            Ok(ServerFrame::Verdict {
                session: session_of(&doc)?,
                seq: int_of(&doc, "seq")?,
                verdict,
                at,
            })
        }
        "ack" => Ok(ServerFrame::Ack {
            session: session_of(&doc)?,
            seq: int_of(&doc, "seq")?,
        }),
        "busy" => Ok(ServerFrame::Busy {
            session: session_of(&doc)?,
            inbox: int_of(&doc, "inbox")?,
            seq: opt_seq(&doc, "seq").map_err(&frame_err)?,
            retry_after_turns: match doc.get("retry_after_turns") {
                Some(Json::Int(v)) if *v >= 0 => Some(*v as u64),
                None => None,
                Some(_) => {
                    return Err(frame_err(
                        "`retry_after_turns` must be a non-negative integer".into(),
                    ))
                }
            },
        }),
        "error" => {
            let session = match doc.get("session") {
                Some(Json::Str(s)) => Some(s.clone()),
                _ => None,
            };
            let message = match doc.get("message") {
                Some(Json::Str(s)) => s.clone(),
                _ => return Err(frame_err("missing string `message` field".into())),
            };
            Ok(ServerFrame::Error {
                session,
                seq: opt_seq(&doc, "seq").map_err(&frame_err)?,
                message,
            })
        }
        "closed" => Ok(ServerFrame::Closed {
            session: session_of(&doc)?,
            events: int_of(&doc, "events")?,
            checks: int_of(&doc, "checks")?,
            violated_at: match doc.get("violated_at") {
                Some(Json::Int(v)) if *v >= 0 => Some(*v as usize),
                _ => None,
            },
            poisoned: matches!(doc.get("poisoned"), Some(Json::Bool(true))),
            reaped: matches!(doc.get("reaped"), Some(Json::Bool(true))),
        }),
        other => Err(frame_err(format!("unknown frame kind `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::TxId;

    #[test]
    fn client_frames_roundtrip_through_render_and_parse() {
        let frames = [
            ClientFrame::Open {
                session: "s1".into(),
            },
            ClientFrame::Feed {
                session: "s1".into(),
                event: Event::TryCommit(TxId(3)),
                seq: None,
            },
            ClientFrame::Feed {
                session: "s1".into(),
                event: Event::TryCommit(TxId(3)),
                seq: Some(7),
            },
            ClientFrame::Close {
                session: "s1".into(),
            },
            ClientFrame::Shutdown,
        ];
        for f in frames {
            let line = render_client_frame(&f);
            assert_eq!(parse_client_frame(&line).unwrap(), f, "{line}");
        }
    }

    #[test]
    fn v1_frames_still_parse_under_v1_1() {
        // Exactly the bytes a v1 peer renders: no `minor`, no `seq`, no
        // `retry_after_turns`, no `reaped`. All must parse, defaulting the
        // v1.1 fields.
        let open = parse_client_frame(r#"{"frame":"open","v":1,"session":"s"}"#).unwrap();
        assert_eq!(
            open,
            ClientFrame::Open {
                session: "s".into()
            }
        );
        let feed = parse_client_frame(
            r#"{"frame":"feed","session":"s","event":{"kind":"try_commit","tx":3}}"#,
        )
        .unwrap();
        assert!(matches!(feed, ClientFrame::Feed { seq: None, .. }));
        let opened = parse_server_frame(r#"{"frame":"opened","v":1,"session":"s"}"#).unwrap();
        assert_eq!(
            opened,
            ServerFrame::Opened {
                session: "s".into()
            }
        );
        let busy = parse_server_frame(r#"{"frame":"busy","session":"s","inbox":1024}"#).unwrap();
        assert_eq!(
            busy,
            ServerFrame::Busy {
                session: "s".into(),
                inbox: 1024,
                seq: None,
                retry_after_turns: None,
            }
        );
        let error = parse_server_frame(r#"{"frame":"error","session":"s","message":"m"}"#).unwrap();
        assert_eq!(
            error,
            ServerFrame::Error {
                session: Some("s".into()),
                seq: None,
                message: "m".into(),
            }
        );
        let closed = parse_server_frame(
            r#"{"frame":"closed","session":"s","events":9,"checks":4,"poisoned":false}"#,
        )
        .unwrap();
        assert!(matches!(closed, ServerFrame::Closed { reaped: false, .. }));
    }

    #[test]
    fn server_frames_roundtrip_through_render_and_parse() {
        let frames = [
            ServerFrame::Opened {
                session: "s1".into(),
            },
            ServerFrame::Verdict {
                session: "s1".into(),
                seq: 7,
                verdict: "violated",
                at: Some(6),
            },
            ServerFrame::Ack {
                session: "s1".into(),
                seq: 4,
            },
            ServerFrame::Busy {
                session: "s1".into(),
                inbox: 8,
                seq: Some(9),
                retry_after_turns: Some(3),
            },
            ServerFrame::Error {
                session: Some("s1".into()),
                seq: Some(2),
                message: "boom".into(),
            },
            ServerFrame::Error {
                session: None,
                seq: None,
                message: "input line 3: bad".into(),
            },
            ServerFrame::Closed {
                session: "s1".into(),
                events: 9,
                checks: 4,
                violated_at: Some(6),
                poisoned: false,
                reaped: true,
            },
        ];
        for f in frames {
            let line = f.render();
            assert_eq!(parse_server_frame(&line).unwrap(), f, "{line}");
        }
    }

    #[test]
    fn open_checks_the_protocol_version() {
        let e = parse_client_frame(r#"{"frame":"open","v":9,"session":"s"}"#).unwrap_err();
        assert!(e.message.contains("unsupported protocol version 9"), "{e}");
        let e = parse_client_frame(r#"{"frame":"open","session":"s"}"#).unwrap_err();
        assert!(e.message.contains("missing integer `v`"), "{e}");
    }

    #[test]
    fn malformed_frames_are_rejected_with_positions() {
        for (bad, needle) in [
            (r#"{"v":1}"#, "missing string `frame`"),
            (r#"{"frame":"zap"}"#, "unknown frame kind `zap`"),
            (r#"{"frame":"feed","session":"s"}"#, "missing `event`"),
            (r#"{"frame":"feed","session":"","event":{}}"#, "non-empty"),
            (r#"{"frame":"close"}"#, "missing string `session`"),
            (
                r#"{"frame":"feed","session":"s","event":{"kind":"zap"}}"#,
                "unknown event kind",
            ),
            (
                r#"{"frame":"feed","session":"s","event":{"kind":"try_commit","tx":3},"seq":0}"#,
                "positive integer",
            ),
            ("not json", "invalid keyword"),
        ] {
            let e = parse_client_frame(bad).unwrap_err();
            assert!(e.message.contains(needle), "{bad}: {e}");
        }
        for (bad, needle) in [
            (r#"{"frame":"warble"}"#, "unknown frame kind"),
            (r#"{"frame":"verdict","session":"s","seq":1}"#, "verdict"),
            (r#"{"frame":"closed","session":"s"}"#, "missing integer"),
        ] {
            let e = parse_server_frame(bad).unwrap_err();
            assert!(e.message.contains(needle), "{bad}: {e}");
        }
    }

    #[test]
    fn server_frames_render_compact_and_stable() {
        assert_eq!(
            ServerFrame::Verdict {
                session: "s1".into(),
                seq: 7,
                verdict: "violated",
                at: Some(6),
            }
            .render(),
            r#"{"frame":"verdict","session":"s1","seq":7,"verdict":"violated","at":6}"#
        );
        assert_eq!(
            ServerFrame::Verdict {
                session: "s1".into(),
                seq: 1,
                verdict: "opaque_skip",
                at: None,
            }
            .render(),
            r#"{"frame":"verdict","session":"s1","seq":1,"verdict":"opaque_skip"}"#
        );
        // v1.1 fields stay off the wire when unset, so a `closed` without
        // a reap and a `busy` without a hint render exactly their v1 bytes.
        assert_eq!(
            ServerFrame::Closed {
                session: "s".into(),
                events: 9,
                checks: 4,
                violated_at: None,
                poisoned: false,
                reaped: false,
            }
            .render(),
            r#"{"frame":"closed","session":"s","events":9,"checks":4,"poisoned":false}"#
        );
        assert_eq!(
            ServerFrame::Busy {
                session: "s".into(),
                inbox: 8,
                seq: Some(3),
                retry_after_turns: None,
            }
            .render(),
            r#"{"frame":"busy","session":"s","inbox":8,"seq":3}"#
        );
        assert_eq!(
            ServerFrame::Error {
                session: None,
                seq: None,
                message: "line 3: bad".into(),
            }
            .render(),
            r#"{"frame":"error","message":"line 3: bad"}"#
        );
    }
}
