//! The append-only session journal behind `--journal DIR` and crash
//! recovery (`--resume`).
//!
//! ## Record format
//!
//! One record per line in `DIR/serve.journal`, length-prefixed:
//!
//! ```text
//! LEN {"r":"open","s":"s1"}
//! LEN {"r":"ev","s":"s1","event":{"kind":"inv","tx":1,...}}
//! LEN {"r":"ck","s":"s1","n":7}
//! LEN {"r":"close","s":"s1","p":false}
//! ```
//!
//! `LEN` is the byte length of the JSON payload that follows the single
//! space. A crash can only tear the *tail* of an append-only file, and a
//! torn tail cannot satisfy its own length prefix — so recovery reads the
//! longest valid prefix and discards the remainder, never misparsing half
//! a record as a whole one. Event payloads reuse the `tm-trace` event JSON
//! verbatim (`ev` embeds exactly the `events`-array element shape), so a
//! journal is inspectable with the same tooling as any trace artifact.
//!
//! ## What is logged, and why replay-resume is verdict-sound
//!
//! * `open`/`ev` record every accepted session and event, in acceptance
//!   order (`ev` is written *after* the table accepts the feed — rejected
//!   frames, `busy` pushback, and duplicate-`seq` resends never journal).
//! * `ck` checkpoints the per-session *response cursor*: how many of the
//!   session's events have already been answered with a verdict or error
//!   frame. On resume those events are re-fed **silently** through a fresh
//!   monitor (their frames were delivered before the crash) and the rest
//!   re-enter the inbox to be answered normally, so `seq` numbering
//!   continues unchanged and no verdict is emitted twice.
//! * `close` records a completed session (with its poisoned flag, which
//!   feeds the exit code), so resume skips it entirely.
//!
//! Soundness rests on the crate's one invariant: a session's verdicts are
//! a pure function of its own event stream. Re-feeding the journaled
//! prefix through a fresh [`tm_opacity::incremental::OpacityMonitor`]
//! therefore reconstructs exactly the monitor state the crash destroyed —
//! sticky violations and poisoning re-latch at the same indices — and the
//! kill-and-restart suite pins the resumed verdict stream byte-identical
//! to an uninterrupted run.
//!
//! ## Durability
//!
//! Records are buffered and `sync_data`ed every
//! [`ServeConfig::fsync_every`](crate::ServeConfig::fsync_every) records
//! (plus on drain and on injected crashes). A power cut can therefore cost
//! at most the last unsynced batch; within-process crashes (the chaos
//! suite's kill points) lose nothing.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use tm_model::Event;
use tm_trace::{event_from_doc, event_to_doc, Json};

/// The journal file inside `--journal DIR`.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join("serve.journal")
}

/// The appending writer half: length-prefixed records, fsync-batched.
pub struct JournalWriter {
    file: File,
    /// Records written since the last `sync_data`.
    unsynced: usize,
    /// Sync cadence (records); at least 1.
    fsync_every: usize,
}

impl JournalWriter {
    /// Creates (or truncates) `DIR/serve.journal` for a fresh run.
    pub fn create(dir: &Path, fsync_every: usize) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let file = File::create(journal_path(dir))?;
        Ok(JournalWriter {
            file,
            unsynced: 0,
            fsync_every: fsync_every.max(1),
        })
    }

    /// Opens `DIR/serve.journal` for appending (the `--resume` path keeps
    /// the recovered prefix and continues after it).
    pub fn append_to(dir: &Path, fsync_every: usize) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(journal_path(dir))?;
        Ok(JournalWriter {
            file,
            unsynced: 0,
            fsync_every: fsync_every.max(1),
        })
    }

    fn record(&mut self, doc: &Json) -> io::Result<()> {
        let payload = doc.to_compact_string();
        writeln!(self.file, "{} {payload}", payload.len())?;
        self.unsynced += 1;
        if self.unsynced >= self.fsync_every {
            self.flush_sync()?;
        }
        Ok(())
    }

    /// Journals a session open.
    pub fn open(&mut self, session: &str) -> io::Result<()> {
        self.record(&Json::Obj(
            0,
            vec![
                ("r".into(), Json::Str("open".into())),
                ("s".into(), Json::Str(session.into())),
            ],
        ))
    }

    /// Journals one accepted event.
    pub fn event(&mut self, session: &str, event: &Event) -> io::Result<()> {
        self.record(&Json::Obj(
            0,
            vec![
                ("r".into(), Json::Str("ev".into())),
                ("s".into(), Json::Str(session.into())),
                ("event".into(), event_to_doc(event)),
            ],
        ))
    }

    /// Journals the response cursor: `n` events answered so far.
    pub fn checked(&mut self, session: &str, n: usize) -> io::Result<()> {
        self.record(&Json::Obj(
            0,
            vec![
                ("r".into(), Json::Str("ck".into())),
                ("s".into(), Json::Str(session.into())),
                ("n".into(), Json::Int(n as i64)),
            ],
        ))
    }

    /// Journals a completed session (`p` = poisoned, for the exit code).
    pub fn close(&mut self, session: &str, poisoned: bool) -> io::Result<()> {
        self.record(&Json::Obj(
            0,
            vec![
                ("r".into(), Json::Str("close".into())),
                ("s".into(), Json::Str(session.into())),
                ("p".into(), Json::Bool(poisoned)),
            ],
        ))
    }

    /// Flushes buffered records and `sync_data`s the file.
    pub fn flush_sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }
}

/// One session's journaled state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JournaledSession {
    /// Accepted events, in acceptance order.
    pub events: Vec<Event>,
    /// Events already answered before the crash (the response cursor).
    pub checked: usize,
    /// The session completed and emitted its `closed` summary.
    pub closed: bool,
    /// The poisoned flag recorded at close (feeds the exit code).
    pub poisoned_at_close: bool,
}

/// Everything a journal says about a previous run, in session open order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JournalState {
    /// `(session id, state)` pairs in first-`open` order.
    pub sessions: Vec<(String, JournaledSession)>,
    /// Records recovered from the file's valid prefix.
    pub records: usize,
    /// Bytes of torn tail discarded (0 for a cleanly flushed journal).
    pub torn_bytes: usize,
}

impl JournalState {
    fn session_mut(&mut self, id: &str) -> &mut JournaledSession {
        let i = match self.sessions.iter().position(|(s, _)| s == id) {
            Some(i) => i,
            None => {
                self.sessions
                    .push((id.to_string(), JournaledSession::default()));
                self.sessions.len() - 1
            }
        };
        &mut self.sessions[i].1
    }
}

/// Reads the journal back, tolerating a torn tail: parsing stops at the
/// first record that is incomplete, fails its length prefix, or does not
/// parse — everything before it is the recovered state. A missing journal
/// file is an error (the `--resume` contract is strict: resuming without a
/// journal would silently restart from nothing).
pub fn read_journal(dir: &Path) -> io::Result<JournalState> {
    let bytes = std::fs::read(journal_path(dir))?;
    let mut state = JournalState::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(rel_nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            break; // incomplete final line: torn tail
        };
        let line = &bytes[pos..pos + rel_nl];
        let Some(record) = parse_record(line) else {
            break; // torn or corrupt: keep the prefix before it
        };
        apply_record(&mut state, record);
        state.records += 1;
        pos += rel_nl + 1;
    }
    state.torn_bytes = bytes.len() - pos;
    for (_, s) in &mut state.sessions {
        s.checked = s.checked.min(s.events.len());
    }
    Ok(state)
}

enum Record {
    Open(String),
    Event(String, Event),
    Checked(String, usize),
    Close(String, bool),
}

fn parse_record(line: &[u8]) -> Option<Record> {
    let line = std::str::from_utf8(line).ok()?;
    let (len, payload) = line.split_once(' ')?;
    let len: usize = len.parse().ok()?;
    if payload.len() != len {
        return None; // fails its own length prefix: torn
    }
    let doc = Json::parse(payload).ok()?;
    let Some(Json::Str(kind)) = doc.get("r") else {
        return None;
    };
    let Some(Json::Str(session)) = doc.get("s") else {
        return None;
    };
    let session = session.clone();
    match kind.as_str() {
        "open" => Some(Record::Open(session)),
        "ev" => {
            let event = event_from_doc(doc.get("event")?).ok()?;
            Some(Record::Event(session, event))
        }
        "ck" => match doc.get("n") {
            Some(Json::Int(n)) if *n >= 0 => Some(Record::Checked(session, *n as usize)),
            _ => None,
        },
        "close" => match doc.get("p") {
            Some(Json::Bool(p)) => Some(Record::Close(session, *p)),
            _ => None,
        },
        _ => None, // future record kinds: stop at the unknown prefix
    }
}

fn apply_record(state: &mut JournalState, record: Record) {
    match record {
        Record::Open(id) => {
            state.session_mut(&id);
        }
        Record::Event(id, event) => state.session_mut(&id).events.push(event),
        Record::Checked(id, n) => {
            let s = state.session_mut(&id);
            s.checked = s.checked.max(n);
        }
        Record::Close(id, poisoned) => {
            let s = state.session_mut(&id);
            s.closed = true;
            s.poisoned_at_close = poisoned;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::{ObjId, OpName, TxId, Value};

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tm-journal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Inv {
                tx: TxId(1),
                obj: ObjId::register(0),
                op: OpName::Write,
                args: vec![Value::Int(7)],
            },
            Event::Ret {
                tx: TxId(1),
                obj: ObjId::register(0),
                op: OpName::Write,
                val: Value::Unit,
            },
            Event::TryCommit(TxId(1)),
            Event::Commit(TxId(1)),
        ]
    }

    #[test]
    fn records_roundtrip_in_open_order() {
        let dir = tmp();
        let mut w = JournalWriter::create(&dir, 2).unwrap();
        let events = sample_events();
        w.open("b").unwrap();
        w.open("a").unwrap();
        for e in &events {
            w.event("b", e).unwrap();
        }
        w.checked("b", 3).unwrap();
        w.close("a", true).unwrap();
        w.flush_sync().unwrap();

        let state = read_journal(&dir).unwrap();
        assert_eq!(state.torn_bytes, 0);
        assert_eq!(state.records, 2 + events.len() + 2);
        assert_eq!(state.sessions.len(), 2);
        assert_eq!(state.sessions[0].0, "b", "open order survives");
        let b = &state.sessions[0].1;
        assert_eq!(b.events, events);
        assert_eq!(b.checked, 3);
        assert!(!b.closed);
        let a = &state.sessions[1].1;
        assert!(a.closed && a.poisoned_at_close && a.events.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_torn_tail_recovers_the_longest_valid_prefix() {
        let dir = tmp();
        let mut w = JournalWriter::create(&dir, 1).unwrap();
        w.open("s").unwrap();
        for e in &sample_events() {
            w.event("s", e).unwrap();
        }
        w.checked("s", 2).unwrap();
        w.flush_sync().unwrap();
        drop(w);
        let full = std::fs::read(journal_path(&dir)).unwrap();
        let whole = read_journal(&dir).unwrap();
        assert_eq!(whole.records, 6);

        let mut last_records = usize::MAX;
        for cut in (0..=full.len()).rev() {
            std::fs::write(journal_path(&dir), &full[..cut]).unwrap();
            let state = read_journal(&dir).unwrap();
            // Recovery is exactly the complete-line prefix: the record
            // count is monotone in the cut, a cut on a newline boundary
            // loses nothing before it, and the cursor is always clamped.
            assert!(state.records <= last_records, "cut {cut} grew the prefix");
            last_records = state.records;
            let complete_lines = full[..cut].iter().filter(|&&b| b == b'\n').count();
            assert_eq!(state.records, complete_lines, "cut {cut}");
            assert_eq!(
                state.torn_bytes,
                cut - full[..cut]
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .map_or(0, |i| i + 1)
            );
            for (_, s) in &state.sessions {
                assert!(s.checked <= s.events.len(), "cursor clamped at cut {cut}");
            }
        }
        // A full file recovers everything.
        std::fs::write(journal_path(&dir), &full).unwrap();
        assert_eq!(read_journal(&dir).unwrap(), whole);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn length_prefix_detects_mid_record_corruption() {
        let dir = tmp();
        let mut w = JournalWriter::create(&dir, 1).unwrap();
        w.open("s").unwrap();
        w.checked("s", 1).unwrap();
        drop(w);
        let mut bytes = std::fs::read(journal_path(&dir)).unwrap();
        // Corrupt the second record's payload without touching its newline:
        // the length prefix still matches, but the JSON no longer parses.
        let second = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let brace = second + bytes[second..].iter().position(|&b| b == b'{').unwrap();
        bytes[brace] = b'#';
        std::fs::write(journal_path(&dir), &bytes).unwrap();
        let state = read_journal(&dir).unwrap();
        assert_eq!(state.records, 1, "corrupt record ends the valid prefix");
        assert!(state.torn_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_an_error_not_an_empty_state() {
        let dir = tmp().join("never-created");
        assert!(read_journal(&dir).is_err());
    }
}
