//! Transports and the daemon loop: stdin, offline replay, and a Unix
//! socket, all driving the same transport-agnostic [`SessionTable`].
//!
//! ## Lifecycle and graceful shutdown
//!
//! Every transport ends the same way: drain every runnable session to
//! empty (fair turns — even the final drain interleaves sessions), close
//! any still-open session with its `closed` summary, and return an exit
//! code of 1 if any session was ever poisoned by a hard error (0
//! otherwise; opacity *violations* are normal verdict output, not
//! failures). The drain triggers on EOF of the input stream or on a
//! `shutdown` frame. A true SIGINT handler is impossible here by design —
//! the workspace forbids `unsafe` and vendors no `libc` — so interactive
//! users get the same guarantee by closing the daemon's stdin or sending
//! `{"frame":"shutdown"}`.
//!
//! ## Replay determinism
//!
//! `--replay FILE` is the CI-facing offline mode: frames are applied in
//! file order with exactly one scheduler turn per input line, and a full
//! inbox *flow-controls the reader* (the daemon runs turns until space
//! frees up) instead of emitting `busy`. Output is therefore a pure
//! function of the file — byte-stable across runs and machines — while
//! still exercising the same multiplexed scheduler the live transports
//! use. The live transports (stdin, socket) cannot stall their input
//! sources, so there `busy` frames carry the backpressure instead.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::mpsc;

use crate::frame::{parse_client_frame, ClientFrame, ServerFrame};
use crate::table::{Routed, ServeConfig, SessionTable};

/// Where the daemon reads client frames from.
#[derive(Clone, Debug)]
pub enum Transport {
    /// Line-delimited frames on stdin, responses on the provided writer
    /// (stdout in the CLI). The live single-stream mode.
    Stdin,
    /// Offline deterministic mode: drain a recorded frame file.
    Replay(PathBuf),
    /// A Unix listening socket; every connection is a frame stream and
    /// receives its own sessions' responses.
    Socket(PathBuf),
}

/// Applies one parsed client frame. Returns the immediate response frames
/// and whether the frame requested shutdown.
fn apply(table: &mut SessionTable, frame: ClientFrame, conn: usize) -> (Vec<Routed>, bool) {
    match frame {
        ClientFrame::Open { session } => (table.open(&session, conn), false),
        ClientFrame::Feed { session, event } => (table.feed(&session, event, conn), false),
        ClientFrame::Close { session } => (table.close(&session, conn), false),
        ClientFrame::Shutdown => (Vec::new(), true),
    }
}

/// Parses and applies one input line (empty lines are ignored); parse
/// errors become `error` frames tagged with the input line number.
fn apply_line(
    table: &mut SessionTable,
    line: &str,
    lineno: usize,
    conn: usize,
) -> (Vec<Routed>, bool) {
    if line.trim().is_empty() {
        return (Vec::new(), false);
    }
    match parse_client_frame(line) {
        Ok(frame) => apply(table, frame, conn),
        Err(e) => (
            vec![Routed {
                conn,
                frame: ServerFrame::Error {
                    session: None,
                    message: format!("input line {lineno}: {}", e.message),
                },
            }],
            false,
        ),
    }
}

fn emit(out: &mut dyn Write, frames: &[Routed]) -> io::Result<()> {
    for r in frames {
        writeln!(out, "{}", r.frame.render())?;
    }
    Ok(())
}

/// Runs the daemon until EOF/shutdown and returns the process exit code:
/// 0 on a clean drain, 1 if any session was poisoned by a hard error, 2 on
/// usage/IO failures (unreadable replay file, unbindable socket). For the
/// single-stream transports all responses go to `out`; the socket
/// transport writes to its connections and uses `out` only for the
/// startup banner.
pub fn run(transport: Transport, config: ServeConfig, out: &mut dyn Write) -> i32 {
    let obs = config.obs;
    let mut table = SessionTable::new(config);
    let code = match transport {
        Transport::Stdin => {
            let stdin = io::stdin();
            run_stream(&mut table, stdin.lock(), out)
        }
        Transport::Replay(path) => match std::fs::read_to_string(&path) {
            Ok(text) => run_replay(&mut table, &text, out),
            Err(e) => {
                eprintln!(
                    "tmcheck serve: cannot read replay file {}: {e}",
                    path.display()
                );
                2
            }
        },
        Transport::Socket(path) => run_socket(&mut table, &path, out),
    };
    obs.gauge_set("serve.memo_resident_final", table.memo_resident() as u64);
    code
}

/// The live single-stream loop (stdin): one scheduler turn per input
/// line, backpressure via `busy`, drain on EOF or `shutdown`.
fn run_stream(table: &mut SessionTable, input: impl BufRead, out: &mut dyn Write) -> i32 {
    let mut lineno = 0usize;
    for line in input.lines() {
        lineno += 1;
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("tmcheck serve: input error: {e}");
                return 2;
            }
        };
        let (frames, shutdown) = apply_line(table, &line, lineno, 0);
        let turn = table.pump_one();
        if emit(out, &frames).and_then(|()| emit(out, &turn)).is_err() {
            return 2; // the response stream is gone; nothing left to serve
        }
        if shutdown {
            break;
        }
    }
    let last = table.drain_and_close_all();
    if emit(out, &last).is_err() {
        return 2;
    }
    i32::from(table.any_poisoned())
}

/// Drains a recorded frame stream deterministically (the engine behind
/// `--replay`, callable on an in-memory string — the bench driver and the
/// replay tests use this directly). Same exit-code contract as [`run`].
pub fn replay(config: ServeConfig, text: &str, out: &mut dyn Write) -> i32 {
    let mut table = SessionTable::new(config);
    run_replay(&mut table, text, out)
}

/// The offline deterministic loop: flow-controls full inboxes instead of
/// emitting `busy`, so output is a pure function of the replay file.
fn run_replay(table: &mut SessionTable, text: &str, out: &mut dyn Write) -> i32 {
    let mut shutdown = false;
    for (i, line) in text.lines().enumerate() {
        if shutdown {
            break;
        }
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        // Flow control: a feed into a full inbox waits for the scheduler
        // instead of bouncing (deterministically — `pump_one` always
        // checks at least one event of a runnable session).
        if let Ok(ClientFrame::Feed { session, .. }) = parse_client_frame(line) {
            while !table.can_accept(&session) {
                let turn = table.pump_one();
                if emit(out, &turn).is_err() {
                    return 2;
                }
            }
        }
        let (frames, stop) = apply_line(table, line, lineno, 0);
        shutdown = stop;
        let turn = table.pump_one();
        if emit(out, &frames).and_then(|()| emit(out, &turn)).is_err() {
            return 2;
        }
    }
    let last = table.drain_and_close_all();
    if emit(out, &last).is_err() {
        return 2;
    }
    i32::from(table.any_poisoned())
}

/// Messages from the socket threads to the scheduler thread.
enum SocketMsg {
    /// A new client connection (its write half).
    Conn(UnixStream),
    /// One frame line from connection `conn`.
    Line(usize, String),
    /// Connection `conn` reached EOF.
    Gone(usize),
}

/// The Unix-socket transport: an acceptor thread plus one reader thread
/// per connection feed a channel; this thread owns the table and the
/// write halves, interleaving scheduler turns with frame ingest. Runs
/// until a `shutdown` frame arrives on any connection.
fn run_socket(table: &mut SessionTable, path: &std::path::Path, out: &mut dyn Write) -> i32 {
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("tmcheck serve: cannot bind {}: {e}", path.display());
            return 2;
        }
    };
    let _ = writeln!(out, "tm-serve/v1 listening on {}", path.display());
    let _ = out.flush();
    let (tx, rx) = mpsc::channel::<SocketMsg>();
    {
        let tx = tx.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                if tx.send(SocketMsg::Conn(stream)).is_err() {
                    return;
                }
            }
        });
    }
    // Write halves by connection index (`None` once the peer is gone),
    // plus per-connection input line counts for error positions.
    let mut writers: Vec<Option<UnixStream>> = Vec::new();
    let mut line_counts: Vec<usize> = Vec::new();
    let route = |writers: &mut Vec<Option<UnixStream>>, frames: &[Routed]| {
        for r in frames {
            let Some(Some(w)) = writers.get_mut(r.conn) else {
                continue; // the session's connection is gone; drop the frame
            };
            if writeln!(w, "{}", r.frame.render()).is_err() {
                writers[r.conn] = None;
            }
        }
    };
    loop {
        // Idle: block for input. Busy: poll, and spend the gap on turns.
        let msg = if table.idle() {
            match rx.recv() {
                Ok(m) => m,
                Err(_) => break,
            }
        } else {
            match rx.try_recv() {
                Ok(m) => m,
                Err(mpsc::TryRecvError::Empty) => {
                    let turn = table.pump_one();
                    route(&mut writers, &turn);
                    continue;
                }
                Err(mpsc::TryRecvError::Disconnected) => break,
            }
        };
        match msg {
            SocketMsg::Conn(stream) => {
                let conn = writers.len();
                match stream.try_clone() {
                    Ok(read_half) => {
                        writers.push(Some(stream));
                        line_counts.push(0);
                        let tx = tx.clone();
                        std::thread::spawn(move || {
                            let reader = BufReader::new(read_half);
                            for line in reader.lines() {
                                let Ok(line) = line else { break };
                                if tx.send(SocketMsg::Line(conn, line)).is_err() {
                                    return;
                                }
                            }
                            let _ = tx.send(SocketMsg::Gone(conn));
                        });
                    }
                    Err(_) => continue,
                }
            }
            SocketMsg::Line(conn, line) => {
                line_counts[conn] += 1;
                let (frames, shutdown) = apply_line(table, &line, line_counts[conn], conn);
                route(&mut writers, &frames);
                if shutdown {
                    let last = table.drain_and_close_all();
                    route(&mut writers, &last);
                    let _ = std::fs::remove_file(path);
                    return i32::from(table.any_poisoned());
                }
                let turn = table.pump_one();
                route(&mut writers, &turn);
            }
            SocketMsg::Gone(conn) => {
                if let Some(w) = writers.get_mut(conn) {
                    *w = None;
                }
            }
        }
    }
    let _ = std::fs::remove_file(path);
    i32::from(table.any_poisoned())
}
