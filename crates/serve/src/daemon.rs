//! Transports and the daemon loop: stdin, offline replay, and a Unix
//! socket, all driving the same transport-agnostic [`SessionTable`].
//!
//! ## Lifecycle and graceful shutdown
//!
//! Every transport ends the same way: drain every runnable session to
//! empty (fair turns — even the final drain interleaves sessions), close
//! any still-open session with its `closed` summary, and return an exit
//! code of 1 if any session was ever poisoned by a hard error (0
//! otherwise; opacity *violations* are normal verdict output, not
//! failures). The drain triggers on EOF of the input stream or on a
//! `shutdown` frame. A true SIGINT handler is impossible here by design —
//! the workspace forbids `unsafe` and vendors no `libc` — so interactive
//! users get the same guarantee by closing the daemon's stdin or sending
//! `{"frame":"shutdown"}`.
//!
//! ## Replay determinism
//!
//! `--replay FILE` is the CI-facing offline mode: frames are applied in
//! file order with exactly one scheduler turn per input line, and a full
//! inbox *flow-controls the reader* (the daemon runs turns until space
//! frees up) instead of emitting `busy`. Output is therefore a pure
//! function of the file — byte-stable across runs and machines — while
//! still exercising the same multiplexed scheduler the live transports
//! use. The live transports (stdin, socket) cannot stall their input
//! sources, so there `busy` frames carry the backpressure instead.
//!
//! ## Fault plane and crash recovery
//!
//! The stdin and replay loops thread every input line through a
//! [`FaultDriver`] built from [`ServeConfig::fault_plan`], which can tear
//! or drop lines, stall the scheduler, arm transient response-write
//! failures, spike the memo/node budgets, or kill the daemon outright
//! (exit code 3, journal flushed, no drain — the crash-recovery tests'
//! guillotine). With `--journal DIR` the table logs accepted work as it
//! happens; `--resume` rebuilds the table from that journal before
//! serving, so a restarted daemon continues every interrupted session
//! with unchanged `seq` numbering. Input errors degrade instead of
//! aborting: transient kinds (`Interrupted`, `WouldBlock`) are retried a
//! bounded number of times, hard errors end the input and trigger the
//! normal drain — a broken pipe mid-stream loses no accepted work.

use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::mpsc;

use crate::faults::{FaultDriver, LineFate};
use crate::frame::{parse_client_frame, ClientFrame, ServerFrame};
use crate::journal::{read_journal, JournalWriter};
use crate::table::{Routed, ServeConfig, SessionTable};

/// Process exit code for an injected [`crate::faults::Fault::Crash`]:
/// distinguishable from a clean drain (0), a poisoned session (1), and a
/// usage/IO failure (2), so harnesses can assert the guillotine fired.
pub const CRASH_EXIT_CODE: i32 = 3;

/// Consecutive transient input/output errors (`Interrupted`,
/// `WouldBlock`) tolerated before the stream is treated as gone.
const MAX_TRANSIENT_RETRIES: u32 = 64;

/// Where the daemon reads client frames from.
#[derive(Clone, Debug)]
pub enum Transport {
    /// Line-delimited frames on stdin, responses on the provided writer
    /// (stdout in the CLI). The live single-stream mode.
    Stdin,
    /// Offline deterministic mode: drain a recorded frame file.
    Replay(PathBuf),
    /// A Unix listening socket; every connection is a frame stream and
    /// receives its own sessions' responses.
    Socket(PathBuf),
}

/// Applies one parsed client frame. Returns the immediate response frames
/// and whether the frame requested shutdown.
fn apply(table: &mut SessionTable, frame: ClientFrame, conn: usize) -> (Vec<Routed>, bool) {
    match frame {
        ClientFrame::Open { session } => (table.open(&session, conn), false),
        ClientFrame::Feed {
            session,
            event,
            seq,
        } => (table.feed(&session, event, seq, conn), false),
        ClientFrame::Close { session } => (table.close(&session, conn), false),
        ClientFrame::Shutdown => (Vec::new(), true),
    }
}

/// Parses and applies one input line (empty lines are ignored); parse
/// errors become `error` frames tagged with the input line number.
fn apply_line(
    table: &mut SessionTable,
    line: &str,
    lineno: usize,
    conn: usize,
) -> (Vec<Routed>, bool) {
    if line.trim().is_empty() {
        return (Vec::new(), false);
    }
    match parse_client_frame(line) {
        Ok(frame) => apply(table, frame, conn),
        Err(e) => (
            vec![Routed {
                conn,
                frame: ServerFrame::Error {
                    session: None,
                    seq: None,
                    message: format!("input line {lineno}: {}", e.message),
                },
            }],
            false,
        ),
    }
}

/// Writes response frames, consulting the fault driver before each one: an
/// armed transient write failure swallows that frame (the daemon carries
/// on — a lost response is the client library's problem to recover, and
/// seq-tagged resends make that safe). Real transient errors from the
/// writer are retried a bounded number of times.
fn emit(out: &mut dyn Write, driver: &mut FaultDriver, frames: &[Routed]) -> io::Result<()> {
    for r in frames {
        if driver.take_write_failure() {
            continue;
        }
        let rendered = r.frame.render();
        let mut retries = 0u32;
        loop {
            match writeln!(out, "{rendered}") {
                Ok(()) => break,
                Err(e)
                    if matches!(e.kind(), ErrorKind::Interrupted | ErrorKind::WouldBlock)
                        && retries < MAX_TRANSIENT_RETRIES =>
                {
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
    Ok(())
}

/// Builds the table a run starts from: resume from the journal when
/// configured (then keep appending to it), otherwise start a fresh journal
/// (when configured) or none at all. Errors here are startup failures —
/// the caller exits 2 before serving anything.
fn prepare(config: ServeConfig) -> Result<(SessionTable, FaultDriver), i32> {
    let driver = FaultDriver::new(config.fault_plan.clone());
    let journal_dir = config.journal_dir.clone();
    let resume = config.resume;
    let fsync_every = config.fsync_every;
    let mut table = SessionTable::new(config);
    if let Some(dir) = journal_dir {
        if resume {
            match read_journal(&dir) {
                Ok(state) => {
                    table.resume_from(&state);
                }
                Err(e) => {
                    eprintln!(
                        "tmcheck serve: cannot resume from journal in {}: {e}",
                        dir.display()
                    );
                    return Err(2);
                }
            }
        }
        let writer = if resume {
            JournalWriter::append_to(&dir, fsync_every)
        } else {
            JournalWriter::create(&dir, fsync_every)
        };
        match writer {
            Ok(w) => table.attach_journal(w),
            Err(e) => {
                eprintln!(
                    "tmcheck serve: cannot open journal in {}: {e}",
                    dir.display()
                );
                return Err(2);
            }
        }
    }
    Ok((table, driver))
}

/// Runs the daemon until EOF/shutdown and returns the process exit code:
/// 0 on a clean drain, 1 if any session was poisoned by a hard error, 2 on
/// usage/IO failures (unreadable replay file, unbindable socket, broken
/// journal), [`CRASH_EXIT_CODE`] when an injected crash fault fires. For
/// the single-stream transports all responses go to `out`; the socket
/// transport writes to its connections and uses `out` only for the
/// startup banner.
pub fn run(transport: Transport, config: ServeConfig, out: &mut dyn Write) -> i32 {
    let obs = config.obs;
    let (mut table, mut driver) = match prepare(config) {
        Ok(pair) => pair,
        Err(code) => return code,
    };
    let code = match transport {
        Transport::Stdin => {
            let stdin = io::stdin();
            run_stream(&mut table, &mut driver, stdin.lock(), out)
        }
        Transport::Replay(path) => match std::fs::read_to_string(&path) {
            Ok(text) => run_replay(&mut table, &mut driver, &text, out),
            Err(e) => {
                eprintln!(
                    "tmcheck serve: cannot read replay file {}: {e}",
                    path.display()
                );
                2
            }
        },
        Transport::Socket(path) => run_socket(&mut table, &path, out),
    };
    obs.gauge_set("serve.memo_resident_final", table.memo_resident() as u64);
    code
}

/// Runs the live single-stream loop over an arbitrary buffered reader —
/// the stdin transport with the input source under test control (the
/// transport-error and chaos suites inject failing readers here). Same
/// exit-code contract as [`run`].
pub fn run_reader(config: ServeConfig, input: impl BufRead, out: &mut dyn Write) -> i32 {
    let (mut table, mut driver) = match prepare(config) {
        Ok(pair) => pair,
        Err(code) => return code,
    };
    run_stream(&mut table, &mut driver, input, out)
}

/// The live single-stream loop (stdin): one scheduler turn per input
/// line, backpressure via `busy`, drain on EOF or `shutdown`. Transient
/// read errors are retried; hard read errors end the input and trigger
/// the normal drain (accepted work is never dropped on a broken input).
fn run_stream(
    table: &mut SessionTable,
    driver: &mut FaultDriver,
    mut input: impl BufRead,
    out: &mut dyn Write,
) -> i32 {
    let mut lineno = 0usize;
    let mut buf = String::new();
    let mut transient = 0u32;
    let mut eof = false;
    while !eof {
        // Read one line, accumulating across transient failures — a
        // WouldBlock mid-line must not discard the prefix already read
        // (`read_line` appends, so retrying completes the line in place).
        let got_line = loop {
            match input.read_line(&mut buf) {
                Ok(0) => {
                    eof = true;
                    break !buf.is_empty();
                }
                Ok(_) => {
                    transient = 0;
                    break true;
                }
                Err(e) if matches!(e.kind(), ErrorKind::Interrupted | ErrorKind::WouldBlock) => {
                    transient += 1;
                    if transient > MAX_TRANSIENT_RETRIES {
                        eof = true;
                        break !buf.is_empty();
                    }
                }
                Err(e) => {
                    // A hard input error ends the stream like EOF would;
                    // the drain below still answers everything accepted.
                    let note = [Routed {
                        conn: 0,
                        frame: ServerFrame::Error {
                            session: None,
                            seq: None,
                            message: format!("input stream error: {e}"),
                        },
                    }];
                    let _ = emit(out, driver, &note);
                    eof = true;
                    break !buf.is_empty();
                }
            }
        };
        if !got_line {
            break;
        }
        lineno += 1;
        let line = buf.trim_end_matches(['\n', '\r']).to_string();
        buf.clear();
        let (pumped, fate) = driver.on_line(table, &line);
        if emit(out, driver, &pumped).is_err() {
            return 2; // the response stream is gone; nothing left to serve
        }
        let line = match fate {
            LineFate::Deliver(l) => l,
            LineFate::Skip => {
                let turn = table.pump_one();
                if emit(out, driver, &turn).is_err() {
                    return 2;
                }
                continue;
            }
            LineFate::Crash => return CRASH_EXIT_CODE,
        };
        let (frames, shutdown) = apply_line(table, &line, lineno, 0);
        let turn = table.pump_one();
        if emit(out, driver, &frames)
            .and_then(|()| emit(out, driver, &turn))
            .is_err()
        {
            return 2;
        }
        if shutdown {
            break;
        }
    }
    let last = table.drain_and_close_all();
    if emit(out, driver, &last).is_err() {
        return 2;
    }
    i32::from(table.any_poisoned())
}

/// Drains a recorded frame stream deterministically (the engine behind
/// `--replay`, callable on an in-memory string — the bench driver and the
/// replay/chaos tests use this directly). Same exit-code contract as
/// [`run`]; honors `fault_plan`/`journal_dir`/`resume` from `config`.
pub fn replay(config: ServeConfig, text: &str, out: &mut dyn Write) -> i32 {
    let (mut table, mut driver) = match prepare(config) {
        Ok(pair) => pair,
        Err(code) => return code,
    };
    run_replay(&mut table, &mut driver, text, out)
}

/// The offline deterministic loop: flow-controls full inboxes instead of
/// emitting `busy`, so output is a pure function of the replay file (and
/// the fault plan, which is part of that function's input).
fn run_replay(
    table: &mut SessionTable,
    driver: &mut FaultDriver,
    text: &str,
    out: &mut dyn Write,
) -> i32 {
    let mut shutdown = false;
    for (i, line) in text.lines().enumerate() {
        if shutdown {
            break;
        }
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let (pumped, fate) = driver.on_line(table, line);
        if emit(out, driver, &pumped).is_err() {
            return 2;
        }
        let line = match fate {
            LineFate::Deliver(l) => l,
            LineFate::Skip => {
                let turn = table.pump_one();
                if emit(out, driver, &turn).is_err() {
                    return 2;
                }
                continue;
            }
            LineFate::Crash => return CRASH_EXIT_CODE,
        };
        // Flow control: a feed into a full inbox (or past the queue
        // watermark) waits for the scheduler instead of bouncing
        // (deterministically — `pump_one` always checks at least one
        // event of a runnable session).
        if let Ok(ClientFrame::Feed { session, .. }) = parse_client_frame(&line) {
            while !table.can_accept(&session) {
                let turn = table.pump_one();
                if emit(out, driver, &turn).is_err() {
                    return 2;
                }
            }
        }
        let (frames, stop) = apply_line(table, &line, lineno, 0);
        shutdown = stop;
        let turn = table.pump_one();
        if emit(out, driver, &frames)
            .and_then(|()| emit(out, driver, &turn))
            .is_err()
        {
            return 2;
        }
    }
    let last = table.drain_and_close_all();
    if emit(out, driver, &last).is_err() {
        return 2;
    }
    i32::from(table.any_poisoned())
}

/// Messages from the socket threads to the scheduler thread.
enum SocketMsg {
    /// A new client connection (its write half).
    Conn(UnixStream),
    /// One frame line from connection `conn`.
    Line(usize, String),
    /// Connection `conn` reached EOF or a hard read error.
    Gone(usize),
}

/// The per-connection reader loop: forwards complete lines, retries
/// transient errors a bounded number of times, forwards a final partial
/// line without its newline (a torn frame — the parser answers with a
/// positioned `error`), and reports `Gone` on EOF or hard errors. Never
/// panics: a misbehaving client can at worst disconnect itself.
fn run_conn_reader(conn: usize, read_half: UnixStream, tx: mpsc::Sender<SocketMsg>) {
    let mut reader = BufReader::new(read_half);
    let mut buf = String::new();
    let mut transient = 0u32;
    loop {
        buf.clear();
        match reader.read_line(&mut buf) {
            Ok(0) => break,
            Ok(_) => {
                transient = 0;
                let line = buf.trim_end_matches(['\n', '\r']).to_string();
                if tx.send(SocketMsg::Line(conn, line)).is_err() {
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::Interrupted | ErrorKind::WouldBlock) => {
                transient += 1;
                if transient > MAX_TRANSIENT_RETRIES {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let _ = tx.send(SocketMsg::Gone(conn));
}

/// The Unix-socket transport: an acceptor thread plus one reader thread
/// per connection feed a channel; this thread owns the table and the
/// write halves, interleaving scheduler turns with frame ingest. Runs
/// until a `shutdown` frame arrives on any connection. Peer failures
/// degrade per-connection — a write error or disconnect marks that
/// connection gone and the daemon serves on.
fn run_socket(table: &mut SessionTable, path: &std::path::Path, out: &mut dyn Write) -> i32 {
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("tmcheck serve: cannot bind {}: {e}", path.display());
            return 2;
        }
    };
    let _ = writeln!(
        out,
        "{} listening on {}",
        crate::frame::PROTOCOL,
        path.display()
    );
    let _ = out.flush();
    let (tx, rx) = mpsc::channel::<SocketMsg>();
    {
        let tx = tx.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                if tx.send(SocketMsg::Conn(stream)).is_err() {
                    return;
                }
            }
        });
    }
    // Write halves by connection index (`None` once the peer is gone),
    // plus per-connection input line counts for error positions.
    let mut writers: Vec<Option<UnixStream>> = Vec::new();
    let mut line_counts: Vec<usize> = Vec::new();
    let route = |writers: &mut Vec<Option<UnixStream>>, frames: &[Routed]| {
        for r in frames {
            let Some(slot) = writers.get_mut(r.conn) else {
                continue; // the session's connection is gone; drop the frame
            };
            let Some(w) = slot.as_mut() else {
                continue;
            };
            let rendered = r.frame.render();
            let mut retries = 0u32;
            loop {
                match writeln!(w, "{rendered}") {
                    Ok(()) => break,
                    Err(e)
                        if matches!(e.kind(), ErrorKind::Interrupted | ErrorKind::WouldBlock)
                            && retries < MAX_TRANSIENT_RETRIES =>
                    {
                        retries += 1;
                    }
                    Err(_) => {
                        *slot = None;
                        break;
                    }
                }
            }
        }
    };
    loop {
        // Idle: block for input. Busy: poll, and spend the gap on turns.
        let msg = if table.idle() {
            match rx.recv() {
                Ok(m) => m,
                Err(_) => break,
            }
        } else {
            match rx.try_recv() {
                Ok(m) => m,
                Err(mpsc::TryRecvError::Empty) => {
                    let turn = table.pump_one();
                    route(&mut writers, &turn);
                    continue;
                }
                Err(mpsc::TryRecvError::Disconnected) => break,
            }
        };
        match msg {
            SocketMsg::Conn(stream) => {
                let conn = writers.len();
                match stream.try_clone() {
                    Ok(read_half) => {
                        writers.push(Some(stream));
                        line_counts.push(0);
                        let tx = tx.clone();
                        std::thread::spawn(move || run_conn_reader(conn, read_half, tx));
                    }
                    Err(_) => continue,
                }
            }
            SocketMsg::Line(conn, line) => {
                line_counts[conn] += 1;
                let (frames, shutdown) = apply_line(table, &line, line_counts[conn], conn);
                route(&mut writers, &frames);
                if shutdown {
                    let last = table.drain_and_close_all();
                    route(&mut writers, &last);
                    let _ = std::fs::remove_file(path);
                    return i32::from(table.any_poisoned());
                }
                let turn = table.pump_one();
                route(&mut writers, &turn);
            }
            SocketMsg::Gone(conn) => {
                if let Some(w) = writers.get_mut(conn) {
                    *w = None;
                }
            }
        }
    }
    table.journal_flush();
    let _ = std::fs::remove_file(path);
    i32::from(table.any_poisoned())
}
