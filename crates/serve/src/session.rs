//! One multiplexed check session: a resumable [`OpacityMonitor`] plus the
//! bounded inbox that decouples frame ingest from checking.
//!
//! The session is where the daemon's multiplexing discipline bottoms out in
//! the paper's machinery: every accepted `feed` event eventually flows
//! through [`OpacityMonitor::feed`], which drives the same resumable
//! `CheckSession` a standalone caller would — so a session's verdict
//! stream is a pure function of its own event stream. Scheduling (when the
//! inbox drains), memory governance (what `memo_capacity` the monitor runs
//! under), and backpressure (whether a `feed` was accepted at all) can
//! change *when* verdicts appear and how much work they cost, never what
//! they say. That purity is also what makes crash recovery sound: a
//! session rebuilt by [`Session::recover`] from its journaled event prefix
//! is indistinguishable from the one the crash destroyed.

use std::collections::VecDeque;
use std::time::Instant;

use tm_model::Event;
use tm_obs::ObsHandle;
use tm_opacity::incremental::{MonitorVerdict, OpacityMonitor};
use tm_opacity::search::SearchConfig;

use crate::frame::ServerFrame;
use crate::specs;

/// One open session.
pub(crate) struct Session {
    /// The client-chosen identifier.
    pub(crate) id: String,
    /// The resumable checker.
    monitor: OpacityMonitor<'static>,
    /// Accepted-but-unchecked events, bounded by the table's inbox capacity.
    pub(crate) inbox: VecDeque<Event>,
    /// Events accepted over the session's lifetime (inbox + checked).
    accepted: usize,
    /// A `close` frame arrived; emit the summary once the inbox drains.
    pub(crate) closing: bool,
    /// Latched on the first hard check error (ill-formed event, engine
    /// limit). Poisoned sessions reject further feeds with `error` frames.
    pub(crate) poisoned: bool,
    /// Sticky first violation index, mirrored from the monitor's verdicts.
    violated_at: Option<usize>,
    /// Transport routing tag (which connection opened the session; re-bound
    /// when the client reconnects and re-opens).
    pub(crate) conn: usize,
    /// Scheduler-clock value of the session's last activity (open, accepted
    /// feed, or a turn that drained inbox work) — the idle reaper's input.
    pub(crate) last_active: u64,
    /// The response cursor last written to the journal (events answered).
    pub(crate) journaled_cursor: usize,
    /// Set by the idle reaper so the summary carries `"reaped":true`.
    pub(crate) reaped: bool,
}

impl Session {
    /// Opens a session whose monitor runs under `search` (the governed
    /// `memo_capacity` is already folded in by the table).
    pub(crate) fn new(id: String, conn: usize, search: SearchConfig) -> Self {
        Session {
            id,
            monitor: OpacityMonitor::new(specs()).with_config(search),
            inbox: VecDeque::new(),
            accepted: 0,
            closing: false,
            poisoned: false,
            violated_at: None,
            conn,
            last_active: 0,
            journaled_cursor: 0,
            reaped: false,
        }
    }

    /// Rebuilds a session from its journaled state: the first `checked`
    /// events are re-fed silently through a fresh monitor (their response
    /// frames were delivered before the crash), the rest re-enter the
    /// inbox to be answered normally. `accepted` counts every journaled
    /// event, so `seq` numbering continues exactly where it stopped.
    pub(crate) fn recover(
        id: String,
        conn: usize,
        search: SearchConfig,
        events: Vec<Event>,
        checked: usize,
    ) -> Self {
        let checked = checked.min(events.len());
        let monitor = OpacityMonitor::recover(specs(), search, &events[..checked]);
        let inbox: VecDeque<Event> = events[checked..].iter().cloned().collect();
        Session {
            id,
            poisoned: monitor.is_poisoned(),
            violated_at: monitor.violated_at(),
            monitor,
            inbox,
            accepted: events.len(),
            closing: false,
            conn,
            last_active: 0,
            journaled_cursor: checked,
            reaped: false,
        }
    }

    /// Memo entries resident in the session's search core (telemetry).
    pub(crate) fn memo_resident(&self) -> usize {
        self.monitor.memo_resident()
    }

    /// Events accepted over the session's lifetime.
    pub(crate) fn accepted(&self) -> usize {
        self.accepted
    }

    /// Events already answered with a response frame (the journal's `ck`
    /// cursor): everything accepted that is no longer in the inbox.
    pub(crate) fn response_cursor(&self) -> usize {
        self.accepted - self.inbox.len()
    }

    /// Queues one event (capacity is enforced by the caller — the table
    /// owns the inbox bound so backpressure is observable in one place).
    pub(crate) fn enqueue(&mut self, event: Event) {
        self.inbox.push_back(event);
        self.accepted += 1;
    }

    /// Retunes the monitor's memo capacity (the governor's hook).
    pub(crate) fn set_memo_capacity(&mut self, capacity: Option<usize>) {
        self.monitor.set_memo_capacity(capacity);
    }

    /// Checks the oldest inbox event, returning the frame to emit and the
    /// search nodes the check cost (the scheduler's budget currency).
    /// Returns `None` when the inbox is empty.
    pub(crate) fn step(&mut self, obs: ObsHandle) -> Option<(ServerFrame, u64)> {
        let event = self.inbox.pop_front()?;
        let seq = self.accepted - self.inbox.len();
        if self.poisoned {
            // The monitor latches hard errors; don't burn a feed to
            // rediscover one we already reported.
            return Some((
                ServerFrame::Error {
                    session: Some(self.id.clone()),
                    seq: Some(seq),
                    message: "session poisoned by an earlier error".into(),
                },
                0,
            ));
        }
        let start = Instant::now();
        let fed = self.monitor.feed(event);
        match fed {
            Ok(verdict) => {
                obs.observe("serve.verdict_ns", start.elapsed().as_nanos() as u64);
                obs.counter_add("serve.verdicts", 1);
                // Charge the scheduler only for checks that actually ran:
                // invocation-skips and sticky repeat-violations are
                // near-free, and `last_stats` still describes the previous
                // check in those cases.
                let checked = matches!(verdict, MonitorVerdict::OpaqueChecked)
                    || (matches!(verdict, MonitorVerdict::Violated { .. })
                        && self.violated_at.is_none());
                let nodes = if checked {
                    self.monitor.last_stats().nodes as u64
                } else {
                    0
                };
                let (verdict, at) = match verdict {
                    MonitorVerdict::OpaqueChecked => ("opaque", None),
                    MonitorVerdict::OpaqueBySkip => ("opaque_skip", None),
                    MonitorVerdict::Violated { at } => {
                        self.violated_at.get_or_insert(at);
                        ("violated", Some(at))
                    }
                };
                Some((
                    ServerFrame::Verdict {
                        session: self.id.clone(),
                        seq,
                        verdict,
                        at,
                    },
                    nodes,
                ))
            }
            Err(err) => {
                self.poisoned = true;
                obs.counter_add("serve.poisoned", 1);
                Some((
                    ServerFrame::Error {
                        session: Some(self.id.clone()),
                        seq: Some(seq),
                        message: err.to_string(),
                    },
                    0,
                ))
            }
        }
    }

    /// The end-of-session summary.
    pub(crate) fn summary(&self) -> ServerFrame {
        let (checks, _skipped) = self.monitor.check_counts();
        ServerFrame::Closed {
            session: self.id.clone(),
            events: self.accepted,
            checks,
            violated_at: self.violated_at,
            poisoned: self.poisoned,
            reaped: self.reaped,
        }
    }
}
