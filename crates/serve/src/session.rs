//! One multiplexed check session: a resumable [`OpacityMonitor`] plus the
//! bounded inbox that decouples frame ingest from checking.
//!
//! The session is where the daemon's multiplexing discipline bottoms out in
//! the paper's machinery: every accepted `feed` event eventually flows
//! through [`OpacityMonitor::feed`], which drives the same resumable
//! `CheckSession` a standalone caller would — so a session's verdict
//! stream is a pure function of its own event stream. Scheduling (when the
//! inbox drains), memory governance (what `memo_capacity` the monitor runs
//! under), and backpressure (whether a `feed` was accepted at all) can
//! change *when* verdicts appear and how much work they cost, never what
//! they say.

use std::collections::VecDeque;
use std::time::Instant;

use tm_model::Event;
use tm_obs::ObsHandle;
use tm_opacity::incremental::{MonitorVerdict, OpacityMonitor};
use tm_opacity::search::SearchConfig;

use crate::frame::ServerFrame;
use crate::specs;

/// One open session.
pub(crate) struct Session {
    /// The client-chosen identifier.
    pub(crate) id: String,
    /// The resumable checker.
    monitor: OpacityMonitor<'static>,
    /// Accepted-but-unchecked events, bounded by the table's inbox capacity.
    pub(crate) inbox: VecDeque<Event>,
    /// Events accepted over the session's lifetime (inbox + checked).
    accepted: usize,
    /// A `close` frame arrived; emit the summary once the inbox drains.
    pub(crate) closing: bool,
    /// Latched on the first hard check error (ill-formed event, engine
    /// limit). Poisoned sessions reject further feeds with `error` frames.
    pub(crate) poisoned: bool,
    /// Sticky first violation index, mirrored from the monitor's verdicts.
    violated_at: Option<usize>,
    /// Transport routing tag (which connection opened the session).
    pub(crate) conn: usize,
}

impl Session {
    /// Opens a session whose monitor runs under `search` (the governed
    /// `memo_capacity` is already folded in by the table).
    pub(crate) fn new(id: String, conn: usize, search: SearchConfig) -> Self {
        Session {
            id,
            monitor: OpacityMonitor::new(specs()).with_config(search),
            inbox: VecDeque::new(),
            accepted: 0,
            closing: false,
            poisoned: false,
            violated_at: None,
            conn,
        }
    }

    /// Memo entries resident in the session's search core (telemetry).
    pub(crate) fn memo_resident(&self) -> usize {
        self.monitor.memo_resident()
    }

    /// Queues one event (capacity is enforced by the caller — the table
    /// owns the inbox bound so backpressure is observable in one place).
    pub(crate) fn enqueue(&mut self, event: Event) {
        self.inbox.push_back(event);
        self.accepted += 1;
    }

    /// Retunes the monitor's memo capacity (the governor's hook).
    pub(crate) fn set_memo_capacity(&mut self, capacity: Option<usize>) {
        self.monitor.set_memo_capacity(capacity);
    }

    /// Checks the oldest inbox event, returning the frame to emit and the
    /// search nodes the check cost (the scheduler's budget currency).
    /// Returns `None` when the inbox is empty.
    pub(crate) fn step(&mut self, obs: ObsHandle) -> Option<(ServerFrame, u64)> {
        let event = self.inbox.pop_front()?;
        let seq = self.accepted - self.inbox.len();
        if self.poisoned {
            // The monitor latches hard errors; don't burn a feed to
            // rediscover one we already reported.
            return Some((
                ServerFrame::Error {
                    session: Some(self.id.clone()),
                    message: "session poisoned by an earlier error".into(),
                },
                0,
            ));
        }
        let start = Instant::now();
        let fed = self.monitor.feed(event);
        match fed {
            Ok(verdict) => {
                obs.observe("serve.verdict_ns", start.elapsed().as_nanos() as u64);
                obs.counter_add("serve.verdicts", 1);
                // Charge the scheduler only for checks that actually ran:
                // invocation-skips and sticky repeat-violations are
                // near-free, and `last_stats` still describes the previous
                // check in those cases.
                let checked = matches!(verdict, MonitorVerdict::OpaqueChecked)
                    || (matches!(verdict, MonitorVerdict::Violated { .. })
                        && self.violated_at.is_none());
                let nodes = if checked {
                    self.monitor.last_stats().nodes as u64
                } else {
                    0
                };
                let (verdict, at) = match verdict {
                    MonitorVerdict::OpaqueChecked => ("opaque", None),
                    MonitorVerdict::OpaqueBySkip => ("opaque_skip", None),
                    MonitorVerdict::Violated { at } => {
                        self.violated_at.get_or_insert(at);
                        ("violated", Some(at))
                    }
                };
                Some((
                    ServerFrame::Verdict {
                        session: self.id.clone(),
                        seq,
                        verdict,
                        at,
                    },
                    nodes,
                ))
            }
            Err(err) => {
                self.poisoned = true;
                obs.counter_add("serve.poisoned", 1);
                Some((
                    ServerFrame::Error {
                        session: Some(self.id.clone()),
                        message: err.to_string(),
                    },
                    0,
                ))
            }
        }
    }

    /// The end-of-session summary.
    pub(crate) fn summary(&self) -> ServerFrame {
        let (checks, _skipped) = self.monitor.check_counts();
        ServerFrame::Closed {
            session: self.id.clone(),
            events: self.accepted,
            checks,
            violated_at: self.violated_at,
            poisoned: self.poisoned,
        }
    }
}
