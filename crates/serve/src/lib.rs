//! # tm-serve — the streaming opacity-monitoring daemon
//!
//! The paper's checker as a *service*: `tmcheck serve` ingests `tm-trace`
//! event streams from many concurrent client sessions and answers each
//! event with an opacity verdict, multiplexing thousands of independent
//! resumable [`tm_opacity::incremental::OpacityMonitor`]s behind one
//! ingest → session → verdict → artifact pipeline.
//!
//! The crate splits along that pipeline:
//!
//! * [`frame`] — the versioned `tm-serve/v1.1` wire protocol:
//!   line-delimited JSON frames (`open`/`feed`/`close`/`shutdown` in,
//!   `opened`/`verdict`/`ack`/`busy`/`error`/`closed` out), built on the
//!   hand-rolled [`tm_trace::Json`] document model;
//! * [`table`] — the [`SessionTable`]: fair round-robin scheduling under a
//!   per-turn node budget, aggregate memory governance (a global memo-byte
//!   ceiling apportioned across sessions via the monitors' sound
//!   `set_memo_capacity` hook), bounded-inbox backpressure, overload
//!   shedding, idle reaping, and the journal hooks;
//! * [`journal`] — the append-only, fsync-batched session journal and its
//!   torn-tail-tolerant reader, the substrate of `--journal`/`--resume`
//!   crash recovery;
//! * [`faults`] — the seeded fault plane ([`faults::FaultPlan`] /
//!   [`faults::FaultDriver`]): torn and dropped frames, stalls, transient
//!   write failures, budget spikes, and an injected crash, schedulable
//!   from `--fault-plan` and from the chaos tests;
//! * [`daemon`] — the transports (stdin, offline `--replay` for CI, a Unix
//!   socket) and the graceful drain that ends every run;
//! * [`client`] — the resilient client library: seq-tagged idempotent
//!   resends, capped exponential backoff, reconnect-and-re-open recovery.
//!
//! ## The one invariant
//!
//! **Multiplexing is verdict-invisible.** A session's verdict frames are a
//! pure function of its own event stream: scheduling order, node budgets,
//! backpressure, and memory-governance retunes change *when* verdicts are
//! emitted and what they cost, never their bytes. The replay tests pin
//! this by interleaving ≥ 64 sessions and comparing every session's
//! verdict frames byte-for-byte against a standalone monitor run — also
//! under a deliberately starved `--memo-budget`, where the governor is
//! shrinking every session's memo table mid-stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod faults;
pub mod frame;
pub mod journal;
pub mod table;

mod session;

pub use client::{Backoff, Client, ClientError, FrameLink, SessionOutcome, SocketLink};
pub use daemon::{replay, run, run_reader, Transport, CRASH_EXIT_CODE};
pub use faults::{Fault, FaultDriver, FaultKind, FaultPlan, LineFate};
pub use frame::{
    parse_client_frame, parse_server_frame, render_client_frame, ClientFrame, ServerFrame,
    PROTOCOL, PROTOCOL_MINOR, PROTOCOL_VERSION,
};
pub use journal::{read_journal, JournalState, JournalWriter};
pub use table::{Routed, ServeConfig, SessionTable, EST_ENTRY_BYTES, MIN_MEMO_CAP};

use std::sync::OnceLock;
use tm_model::SpecRegistry;

/// The process-wide specification registry sessions check against —
/// `'static` so monitors (which borrow their registry) can live in the
/// session table without lifetime plumbing. Register specs, matching the
/// rest of the `tmcheck` surface.
pub fn specs() -> &'static SpecRegistry {
    static SPECS: OnceLock<SpecRegistry> = OnceLock::new();
    SPECS.get_or_init(SpecRegistry::registers)
}
