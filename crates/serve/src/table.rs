//! The [`SessionTable`]: multiplexing, fair scheduling, memory governance,
//! backpressure, graceful degradation, and the journal hooks — the
//! daemon's brain, independent of any transport.
//!
//! ## Fairness and the node budget
//!
//! Runnable sessions (non-empty inbox) sit in a round-robin queue. One
//! scheduler *turn* ([`SessionTable::pump_one`]) takes the front session
//! and checks events from its inbox until the cumulative search nodes of
//! the turn exceed [`ServeConfig::node_budget`] (checked *after* each
//! event — events are atomic units, so the budget bounds when a session
//! yields, never how much of an event gets checked). A session with work
//! left re-queues at the back. One expensive session therefore delays its
//! peers by at most one budget-slice per turn, and a poisoned or violated
//! session (whose events become near-free) cannot monopolize anything —
//! the per-site-progress discipline the CRDT literature argues for, here
//! applied to check sessions.
//!
//! ## Memory governance
//!
//! With `--memo-budget BYTES` set, the table apportions a global memo-byte
//! ceiling equally across open sessions: each session's monitor gets
//! `budget / EST_ENTRY_BYTES / sessions` memo entries (floored at
//! [`MIN_MEMO_CAP`]), reapplied on every open and close. The retune hook
//! ([`tm_opacity::incremental::OpacityMonitor::set_memo_capacity`]) is
//! verdict-sound — memo entries are pure pruning, so shrinking a session's
//! table mid-stream costs re-exploration, never correctness (the replay
//! property tests pin this frame-for-frame). Budgets can also be retuned
//! at runtime ([`SessionTable::set_memo_budget`],
//! [`SessionTable::set_node_budget`]) — the fault plane's budget-spike
//! hook, sound for the same reason.
//!
//! ## Backpressure and graceful degradation
//!
//! Each inbox holds at most [`ServeConfig::inbox_capacity`] unchecked
//! events. A `feed` into a full inbox is **not** accepted: the table emits
//! a `busy` frame carrying the rejected event's would-be `seq` and the
//! client resends later. Offline replay instead flow-controls the reader
//! (see `daemon.rs`), so replay output never contains `busy` frames and
//! stays byte-stable. Three degradation knobs, all off by default:
//!
//! * [`ServeConfig::queue_watermark`] — when the run queue backs up past
//!   the watermark, further feeds are shed with `busy` frames carrying a
//!   `retry_after_turns` hint (the replay flow-control probe honors the
//!   same watermark, so replay remains busy-free);
//! * [`ServeConfig::memo_watermark_bytes`] — when resident memo exceeds
//!   the watermark, *opens* are shed with the same hinted `busy` (opens,
//!   not feeds: pumping cannot shrink memo, so shedding feeds on memo
//!   pressure could deadlock the replay flow control);
//! * [`ServeConfig::idle_reap_turns`] — sessions with an empty inbox and
//!   no activity for that many scheduler turns are closed by the reaper,
//!   their summary tagged `"reaped":true`.
//!
//! ## Seq-tagged feeds and the journal
//!
//! A feed tagged with `seq` is idempotent: `seq` ≤ the session's accepted
//! count is answered with `ack` (nothing fed twice), a gap is a positioned
//! error. With `--journal DIR`, accepted opens/events, per-session
//! response cursors, and closes are appended to the session journal (see
//! `journal.rs`); [`SessionTable::resume_from`] rebuilds the table from a
//! recovered [`JournalState`] and arranges for a re-fed input stream to
//! skip exactly the already-journaled prefix.

use std::collections::{HashMap, VecDeque};

use tm_model::Event;
use tm_obs::ObsHandle;
use tm_opacity::search::SearchConfig;

use crate::faults::FaultPlan;
use crate::frame::ServerFrame;
use crate::journal::{JournalState, JournalWriter};
use crate::session::Session;

/// Estimated resident bytes per memo entry (mask + canonical states +
/// queue bookkeeping, measured on the register workloads; deliberately
/// conservative so the byte ceiling errs toward under-use).
pub const EST_ENTRY_BYTES: u64 = 256;

/// Per-session memo-capacity floor: below this the table thrashes instead
/// of pruning, so governance degrades gracefully to "tiny but useful"
/// rather than disabling memoization (well above any shard count, so the
/// one-entry-per-shard floor of the sharded table never binds first).
pub const MIN_MEMO_CAP: usize = 64;

/// Daemon-wide configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum concurrently open sessions; `open` beyond it is refused
    /// with an `error` frame.
    pub max_sessions: usize,
    /// Global memo-byte ceiling apportioned across open sessions; `None`
    /// leaves every session at `search.memo_capacity`.
    pub memo_budget_bytes: Option<u64>,
    /// Unchecked events buffered per session before `busy` pushback.
    pub inbox_capacity: usize,
    /// Search nodes one session may burn per scheduler turn before
    /// yielding to the next runnable session.
    pub node_budget: u64,
    /// Base search configuration for every session's monitor.
    pub search: SearchConfig,
    /// Observability handle (sessions gauge, verdict-latency histogram,
    /// backpressure/eviction counters).
    pub obs: ObsHandle,
    /// Reap sessions idle (empty inbox, no accepted feed) for this many
    /// scheduler turns; `None` disables the reaper.
    pub idle_reap_turns: Option<u64>,
    /// Shed feeds with hinted `busy` frames once the run queue reaches
    /// this depth; `None` disables queue shedding.
    pub queue_watermark: Option<usize>,
    /// Shed opens with hinted `busy` frames once resident memo exceeds
    /// this many bytes; `None` disables memo shedding.
    pub memo_watermark_bytes: Option<u64>,
    /// Injected faults for the daemon loops (empty = none).
    pub fault_plan: FaultPlan,
    /// Append the session journal under this directory.
    pub journal_dir: Option<std::path::PathBuf>,
    /// Rebuild the table from `journal_dir`'s journal before serving.
    pub resume: bool,
    /// `sync_data` the journal every this many records.
    pub fsync_every: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 4096,
            memo_budget_bytes: None,
            inbox_capacity: 1024,
            node_budget: 50_000,
            search: SearchConfig::default(),
            obs: ObsHandle::disabled(),
            idle_reap_turns: None,
            queue_watermark: None,
            memo_watermark_bytes: None,
            fault_plan: FaultPlan::new(),
            journal_dir: None,
            resume: false,
            fsync_every: 32,
        }
    }
}

/// A server frame routed to the connection that must receive it.
#[derive(Clone, Debug)]
pub struct Routed {
    /// Transport routing tag (connection index; 0 for single-stream
    /// transports).
    pub conn: usize,
    /// The frame.
    pub frame: ServerFrame,
}

fn routed(conn: usize, frame: ServerFrame) -> Routed {
    Routed { conn, frame }
}

/// Input-stream records `--resume` must skip because their effects are
/// already journaled (the pre-crash prefix of a re-fed stream).
#[derive(Clone, Copy, Debug, Default)]
struct SkipCounts {
    /// Skip the session's (already journaled) `open` line.
    open: bool,
    /// Untagged `feed` lines to swallow (seq-tagged feeds dedup by `seq`
    /// instead, so they never consume skip counts).
    feeds: usize,
    /// Skip the `close` line of a session that completed before the crash.
    close: bool,
}

/// The multiplexer: all open sessions plus the scheduler's run queue.
pub struct SessionTable {
    config: ServeConfig,
    sessions: HashMap<String, Session>,
    /// Round-robin queue of sessions with non-empty inboxes. A session id
    /// appears at most once (enqueued when its inbox becomes non-empty).
    run_queue: VecDeque<String>,
    /// Latched when any session ever poisoned (drives the exit code).
    any_poisoned: bool,
    /// Scheduler clock: one tick per `pump_one` (the reaper's time base).
    clock: u64,
    /// The attached journal writer, if `--journal` is in force. Dropped on
    /// the first write error (graceful degradation: serving continues,
    /// journaling stops, one error frame reports it).
    journal: Option<JournalWriter>,
    /// Per-session skip counts installed by [`SessionTable::resume_from`].
    resume_skip: HashMap<String, SkipCounts>,
}

impl SessionTable {
    /// An empty table.
    pub fn new(config: ServeConfig) -> Self {
        config.obs.gauge_set("serve.sessions", 0);
        SessionTable {
            config,
            sessions: HashMap::new(),
            run_queue: VecDeque::new(),
            any_poisoned: false,
            clock: 0,
            journal: None,
            resume_skip: HashMap::new(),
        }
    }

    /// Open sessions right now.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Did any session (open or since closed) ever hit a hard error?
    pub fn any_poisoned(&self) -> bool {
        self.any_poisoned
    }

    /// Is there no queued work?
    pub fn idle(&self) -> bool {
        self.run_queue.is_empty()
    }

    /// Scheduler turns taken so far (the reaper's clock).
    pub fn turns(&self) -> u64 {
        self.clock
    }

    /// The per-turn node budget currently in force.
    pub fn node_budget(&self) -> u64 {
        self.config.node_budget
    }

    /// Retunes the per-turn node budget (the fault plane's CPU-spike hook;
    /// scheduling-only, so verdict bytes cannot change).
    pub fn set_node_budget(&mut self, nodes: u64) {
        self.config.node_budget = nodes.max(1);
    }

    /// The global memo budget currently in force.
    pub fn memo_budget(&self) -> Option<u64> {
        self.config.memo_budget_bytes
    }

    /// Retunes the global memo budget and reapportions it across open
    /// sessions (the fault plane's memory-spike hook; memo is pure
    /// pruning, so verdict bytes cannot change).
    pub fn set_memo_budget(&mut self, bytes: Option<u64>) {
        self.config.memo_budget_bytes = bytes;
        self.apply_governor();
    }

    /// Attaches a journal writer; subsequent opens/feeds/cursor
    /// advances/closes are logged through it.
    pub fn attach_journal(&mut self, writer: JournalWriter) {
        self.journal = Some(writer);
    }

    /// Whether a journal is currently attached and healthy.
    pub fn journaling(&self) -> bool {
        self.journal.is_some()
    }

    /// Flushes and syncs the journal (drain, shutdown, injected crash).
    pub fn journal_flush(&mut self) {
        if let Some(w) = self.journal.as_mut() {
            if w.flush_sync().is_err() {
                self.journal = None;
            }
        }
    }

    /// Runs one journal write, disabling journaling (and producing one
    /// session-less error frame) on failure — a full disk degrades the
    /// daemon to journal-less serving instead of killing sessions.
    fn journal_write(
        &mut self,
        write: impl FnOnce(&mut JournalWriter) -> std::io::Result<()>,
    ) -> Option<Routed> {
        let writer = self.journal.as_mut()?;
        match write(writer) {
            Ok(()) => {
                self.config.obs.counter_add("serve.journal_records", 1);
                None
            }
            Err(e) => {
                self.journal = None;
                self.config.obs.counter_add("serve.journal_failed", 1);
                Some(routed(
                    0,
                    ServerFrame::Error {
                        session: None,
                        seq: None,
                        message: format!("journal write failed; journaling disabled: {e}"),
                    },
                ))
            }
        }
    }

    /// Rebuilds the table from a recovered journal: closed sessions are
    /// skipped entirely (their poisoned flag still feeds the exit code),
    /// live sessions are reconstructed via `Session::recover` with their
    /// unanswered tail back in the inbox. Returns the number of live
    /// sessions recovered. Re-feeding the same input stream afterwards
    /// replays only what the journal had not yet seen: journaled opens,
    /// untagged feeds, and completed closes are skipped by count.
    pub fn resume_from(&mut self, state: &JournalState) -> usize {
        let obs = self.config.obs;
        let mut recovered = 0usize;
        for (id, js) in &state.sessions {
            if js.closed {
                self.any_poisoned |= js.poisoned_at_close;
                self.resume_skip.insert(
                    id.clone(),
                    SkipCounts {
                        open: true,
                        feeds: js.events.len(),
                        close: true,
                    },
                );
                continue;
            }
            let mut search = self.config.search;
            if let Some(cap) = self.governed_capacity(self.sessions.len() + 1) {
                search.memo_capacity = Some(cap);
            }
            obs.counter_add("serve.recovery_events", js.events.len() as u64);
            let session = Session::recover(id.clone(), 0, search, js.events.clone(), js.checked);
            if !session.inbox.is_empty() {
                self.run_queue.push_back(id.clone());
            }
            self.resume_skip.insert(
                id.clone(),
                SkipCounts {
                    open: true,
                    feeds: session.accepted(),
                    close: false,
                },
            );
            self.sessions.insert(id.clone(), session);
            recovered += 1;
        }
        self.apply_governor();
        obs.counter_add("serve.recovered_sessions", recovered as u64);
        obs.gauge_set("serve.sessions", self.sessions.len() as u64);
        recovered
    }

    /// Does `session` exist and have room for one more event? (The replay
    /// driver's flow-control probe; unknown sessions report `true` so the
    /// feed proceeds to its proper error path.) Honors the queue
    /// watermark, so replay under `--queue-watermark` flow-controls
    /// instead of shedding and stays busy-free.
    pub fn can_accept(&self, session: &str) -> bool {
        if let Some(wm) = self.config.queue_watermark {
            if self.run_queue.len() >= wm && self.sessions.contains_key(session) {
                return false;
            }
        }
        self.sessions
            .get(session)
            .map_or(true, |s| s.inbox.len() < self.config.inbox_capacity)
    }

    /// The per-session memo capacity the governor currently mandates
    /// (`None` = no budget configured; fall back to the base config).
    fn governed_capacity(&self, session_count: usize) -> Option<usize> {
        let budget = self.config.memo_budget_bytes?;
        let entries = (budget / EST_ENTRY_BYTES) as usize;
        Some((entries / session_count.max(1)).max(MIN_MEMO_CAP))
    }

    /// Reapplies the governor to every open session (on open/close and on
    /// runtime budget retunes — the points where the fair share changes).
    /// With no budget in force, sessions return to the base capacity (the
    /// spike-restore path needs the explicit reset).
    fn apply_governor(&mut self) {
        match self.governed_capacity(self.sessions.len()) {
            Some(cap) => {
                for s in self.sessions.values_mut() {
                    s.set_memo_capacity(Some(cap));
                }
                self.config
                    .obs
                    .gauge_set("serve.memo_capacity_per_session", cap as u64);
            }
            None => {
                let base = self.config.search.memo_capacity;
                for s in self.sessions.values_mut() {
                    s.set_memo_capacity(base);
                }
            }
        }
    }

    /// The overload hint attached to shed `busy` frames: one full cycle of
    /// the current run queue, after which the shed frame's turn comes up.
    fn retry_hint(&self) -> u64 {
        self.run_queue.len() as u64 + 1
    }

    /// Handles an `open` frame.
    pub fn open(&mut self, id: &str, conn: usize) -> Vec<Routed> {
        if let Some(skip) = self.resume_skip.get_mut(id) {
            if skip.open {
                // The journaled open already happened before the crash;
                // its `opened` frame was delivered then.
                skip.open = false;
                return Vec::new();
            }
        }
        if let Some(session) = self.sessions.get_mut(id) {
            if session.conn != conn {
                // A reconnecting client re-opens to re-bind its session to
                // the new connection; state and seq numbering carry over.
                session.conn = conn;
                self.config.obs.counter_add("serve.rebinds", 1);
                return vec![routed(
                    conn,
                    ServerFrame::Opened {
                        session: id.to_string(),
                    },
                )];
            }
            return vec![routed(
                conn,
                ServerFrame::Error {
                    session: Some(id.to_string()),
                    seq: None,
                    message: format!("session `{id}` is already open"),
                },
            )];
        }
        if self.sessions.len() >= self.config.max_sessions {
            self.config.obs.counter_add("serve.open_refused", 1);
            return vec![routed(
                conn,
                ServerFrame::Error {
                    session: Some(id.to_string()),
                    seq: None,
                    message: format!(
                        "session table full ({} open, --max-sessions {})",
                        self.sessions.len(),
                        self.config.max_sessions
                    ),
                },
            )];
        }
        if let Some(wm) = self.config.memo_watermark_bytes {
            if self.memo_resident() as u64 * EST_ENTRY_BYTES >= wm {
                self.config.obs.counter_add("serve.shed_opens", 1);
                return vec![routed(
                    conn,
                    ServerFrame::Busy {
                        session: id.to_string(),
                        inbox: self.config.inbox_capacity,
                        seq: None,
                        retry_after_turns: Some(self.retry_hint()),
                    },
                )];
            }
        }
        // Construct the monitor already bounded to the governed share so
        // its memo table picks a shard count matching its size class
        // (`set_capacity` keeps shard counts fixed).
        let mut search = self.config.search;
        if let Some(cap) = self.governed_capacity(self.sessions.len() + 1) {
            search.memo_capacity = Some(cap);
        }
        let mut session = Session::new(id.to_string(), conn, search);
        session.last_active = self.clock;
        self.sessions.insert(id.to_string(), session);
        self.apply_governor();
        let obs = self.config.obs;
        obs.counter_add("serve.sessions_opened", 1);
        obs.gauge_set("serve.sessions", self.sessions.len() as u64);
        let mut out = Vec::new();
        if let Some(err) = self.journal_write(|w| w.open(id)) {
            out.push(err);
        }
        out.push(routed(
            conn,
            ServerFrame::Opened {
                session: id.to_string(),
            },
        ));
        out
    }

    /// Handles a `feed` frame: enqueues the event, or pushes back with
    /// `busy` when the session's inbox is full or the overload governor is
    /// shedding. Seq-tagged feeds are idempotent: duplicates are answered
    /// with `ack`, gaps with a positioned error.
    pub fn feed(&mut self, id: &str, event: Event, seq: Option<usize>, conn: usize) -> Vec<Routed> {
        if seq.is_none() {
            if let Some(skip) = self.resume_skip.get_mut(id) {
                if skip.feeds > 0 {
                    // Journaled before the crash: the event is already in
                    // the recovered monitor/inbox (or the closed summary).
                    skip.feeds -= 1;
                    return Vec::new();
                }
            }
        }
        let inbox_capacity = self.config.inbox_capacity;
        let queue_watermark = self.config.queue_watermark;
        let obs = self.config.obs;
        let clock = self.clock;
        let hint = self.retry_hint();
        let queue_depth = self.run_queue.len();
        let Some(session) = self.sessions.get_mut(id) else {
            return vec![routed(
                conn,
                ServerFrame::Error {
                    session: Some(id.to_string()),
                    seq: None,
                    message: format!("no open session `{id}`"),
                },
            )];
        };
        let would_be = session.accepted() + 1;
        if let Some(seq) = seq {
            if seq < would_be {
                // Idempotent resend of an already-accepted event: ack the
                // acceptance cursor instead of feeding twice.
                obs.counter_add("serve.dup_feeds", 1);
                return vec![routed(
                    conn,
                    ServerFrame::Ack {
                        session: id.to_string(),
                        seq: session.accepted(),
                    },
                )];
            }
            if seq > would_be {
                return vec![routed(
                    conn,
                    ServerFrame::Error {
                        session: Some(id.to_string()),
                        seq: Some(seq),
                        message: format!("feed seq gap: got {seq}, expected {would_be}"),
                    },
                )];
            }
        }
        if session.closing {
            return vec![routed(
                conn,
                ServerFrame::Error {
                    session: Some(id.to_string()),
                    seq: None,
                    message: format!("session `{id}` is closing"),
                },
            )];
        }
        if session.inbox.len() >= inbox_capacity {
            obs.counter_add("serve.busy", 1);
            return vec![routed(
                conn,
                ServerFrame::Busy {
                    session: id.to_string(),
                    inbox: inbox_capacity,
                    seq: Some(would_be),
                    retry_after_turns: None,
                },
            )];
        }
        if let Some(wm) = queue_watermark {
            if queue_depth >= wm {
                obs.counter_add("serve.shed_feeds", 1);
                return vec![routed(
                    conn,
                    ServerFrame::Busy {
                        session: id.to_string(),
                        inbox: inbox_capacity,
                        seq: Some(would_be),
                        retry_after_turns: Some(hint),
                    },
                )];
            }
        }
        let was_empty = session.inbox.is_empty();
        session.enqueue(event.clone());
        session.last_active = clock;
        obs.counter_add("serve.frames_fed", 1);
        if was_empty {
            self.run_queue.push_back(id.to_string());
        }
        let mut out = Vec::new();
        if let Some(err) = self.journal_write(|w| w.event(id, &event)) {
            out.push(err);
        }
        out
    }

    /// Handles a `close` frame: the session drains its inbox through the
    /// scheduler as usual, then emits its `closed` summary and is removed
    /// (immediately, when the inbox is already empty).
    pub fn close(&mut self, id: &str, conn: usize) -> Vec<Routed> {
        if let Some(skip) = self.resume_skip.get_mut(id) {
            if skip.close {
                // The session completed (summary delivered) pre-crash.
                skip.close = false;
                return Vec::new();
            }
        }
        let Some(session) = self.sessions.get_mut(id) else {
            return vec![routed(
                conn,
                ServerFrame::Error {
                    session: Some(id.to_string()),
                    seq: None,
                    message: format!("no open session `{id}`"),
                },
            )];
        };
        session.closing = true;
        if session.inbox.is_empty() {
            return self.finish(id);
        }
        Vec::new()
    }

    /// Removes a fully-drained closing session, emitting its summary.
    fn finish(&mut self, id: &str) -> Vec<Routed> {
        let Some(session) = self.sessions.remove(id) else {
            return Vec::new();
        };
        debug_assert!(session.inbox.is_empty() && session.closing);
        self.any_poisoned |= session.poisoned;
        self.apply_governor();
        let obs = self.config.obs;
        obs.counter_add("serve.sessions_closed", 1);
        obs.gauge_set("serve.sessions", self.sessions.len() as u64);
        let mut out = Vec::new();
        if let Some(err) = self.journal_write(|w| w.close(id, session.poisoned)) {
            out.push(err);
        }
        out.push(routed(session.conn, session.summary()));
        out
    }

    /// Closes every session whose inbox is empty and whose last activity
    /// is at least `deadline` turns old (in id order, so reap output is
    /// deterministic). The reaper never touches sessions with queued work:
    /// a backlogged session is busy, not idle.
    fn reap_idle(&mut self, deadline: u64, out: &mut Vec<Routed>) {
        let mut due: Vec<String> = self
            .sessions
            .values()
            .filter(|s| {
                s.inbox.is_empty()
                    && !s.closing
                    && self.clock.saturating_sub(s.last_active) >= deadline
            })
            .map(|s| s.id.clone())
            .collect();
        due.sort();
        for id in due {
            if let Some(session) = self.sessions.get_mut(&id) {
                session.closing = true;
                session.reaped = true;
                self.config.obs.counter_add("serve.reaped", 1);
                out.extend(self.finish(&id));
            }
        }
    }

    /// One fair scheduler turn: the front runnable session checks inbox
    /// events until the turn's node budget is spent or its inbox drains.
    /// Advances the scheduler clock and runs the idle reaper. Returns the
    /// frames the turn produced (empty when idle).
    pub fn pump_one(&mut self) -> Vec<Routed> {
        self.clock += 1;
        let mut out = Vec::new();
        if let Some(deadline) = self.config.idle_reap_turns {
            self.reap_idle(deadline, &mut out);
        }
        let Some(id) = self.run_queue.pop_front() else {
            return out;
        };
        let obs = self.config.obs;
        let node_budget = self.config.node_budget;
        let clock = self.clock;
        let Some(session) = self.sessions.get_mut(&id) else {
            return out;
        };
        let conn = session.conn;
        let mut spent = 0u64;
        while spent < node_budget {
            match session.step(obs) {
                Some((frame, nodes)) => {
                    spent = spent.saturating_add(nodes.max(1));
                    out.push(routed(conn, frame));
                }
                None => break,
            }
        }
        session.last_active = clock;
        let cursor = session.response_cursor();
        let advanced = cursor > session.journaled_cursor;
        if advanced {
            session.journaled_cursor = cursor;
        }
        obs.counter_add("serve.turns", 1);
        let requeue = !session.inbox.is_empty();
        if advanced {
            if let Some(err) = self.journal_write(|w| w.checked(&id, cursor)) {
                out.push(err);
            }
        }
        if requeue {
            self.run_queue.push_back(id);
        } else if self.sessions.get(&id).is_some_and(|s| s.closing) {
            out.extend(self.finish(&id));
        }
        out
    }

    /// Drains every runnable session to empty (EOF / shutdown): repeated
    /// fair turns, so even the final drain interleaves sessions.
    pub fn pump_all(&mut self) -> Vec<Routed> {
        let mut out = Vec::new();
        while !self.idle() {
            out.extend(self.pump_one());
        }
        out
    }

    /// Drains everything, then closes every still-open session (shutdown's
    /// final sweep: no event is dropped, every session gets its summary).
    /// Summaries are emitted in session-id order so shutdown output is
    /// deterministic even though `HashMap` iteration is not. Ends with a
    /// journal flush so a clean exit leaves a clean journal tail.
    pub fn drain_and_close_all(&mut self) -> Vec<Routed> {
        let mut out = self.pump_all();
        let mut ids: Vec<String> = self.sessions.keys().cloned().collect();
        ids.sort();
        for id in ids {
            if let Some(session) = self.sessions.get_mut(&id) {
                session.closing = true;
            }
            out.extend(self.finish(&id));
        }
        self.journal_flush();
        out
    }

    /// Total memo entries resident across open sessions (telemetry).
    pub fn memo_resident(&self) -> usize {
        self.sessions.values().map(Session::memo_resident).sum()
    }

    /// The per-session memo capacity the governor currently mandates
    /// (`None` when no `--memo-budget` is configured).
    pub fn memo_capacity_per_session(&self) -> Option<usize> {
        self.governed_capacity(self.sessions.len())
    }
}
