//! The [`SessionTable`]: multiplexing, fair scheduling, memory governance,
//! and backpressure — the daemon's brain, independent of any transport.
//!
//! ## Fairness and the node budget
//!
//! Runnable sessions (non-empty inbox) sit in a round-robin queue. One
//! scheduler *turn* ([`SessionTable::pump_one`]) takes the front session
//! and checks events from its inbox until the cumulative search nodes of
//! the turn exceed [`ServeConfig::node_budget`] (checked *after* each
//! event — events are atomic units, so the budget bounds when a session
//! yields, never how much of an event gets checked). A session with work
//! left re-queues at the back. One expensive session therefore delays its
//! peers by at most one budget-slice per turn, and a poisoned or violated
//! session (whose events become near-free) cannot monopolize anything —
//! the per-site-progress discipline the CRDT literature argues for, here
//! applied to check sessions.
//!
//! ## Memory governance
//!
//! With `--memo-budget BYTES` set, the table apportions a global memo-byte
//! ceiling equally across open sessions: each session's monitor gets
//! `budget / EST_ENTRY_BYTES / sessions` memo entries (floored at
//! [`MIN_MEMO_CAP`]), reapplied on every open and close. The retune hook
//! ([`tm_opacity::incremental::OpacityMonitor::set_memo_capacity`]) is
//! verdict-sound — memo entries are pure pruning, so shrinking a session's
//! table mid-stream costs re-exploration, never correctness (the replay
//! property tests pin this frame-for-frame). This subsumes the old
//! "adaptive memo capacity" roadmap item: capacity now adapts to fleet
//! pressure rather than being fixed at monitor construction.
//!
//! ## Backpressure
//!
//! Each inbox holds at most [`ServeConfig::inbox_capacity`] unchecked
//! events. A `feed` into a full inbox is **not** accepted: the table emits
//! a `busy` frame and the client resends later. Offline replay instead
//! flow-controls the reader (see `daemon.rs`), so replay output never
//! contains `busy` frames and stays byte-stable.

use std::collections::{HashMap, VecDeque};

use tm_model::Event;
use tm_obs::ObsHandle;
use tm_opacity::search::SearchConfig;

use crate::frame::ServerFrame;
use crate::session::Session;

/// Estimated resident bytes per memo entry (mask + canonical states +
/// queue bookkeeping, measured on the register workloads; deliberately
/// conservative so the byte ceiling errs toward under-use).
pub const EST_ENTRY_BYTES: u64 = 256;

/// Per-session memo-capacity floor: below this the table thrashes instead
/// of pruning, so governance degrades gracefully to "tiny but useful"
/// rather than disabling memoization (well above any shard count, so the
/// one-entry-per-shard floor of the sharded table never binds first).
pub const MIN_MEMO_CAP: usize = 64;

/// Daemon-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Maximum concurrently open sessions; `open` beyond it is refused
    /// with an `error` frame.
    pub max_sessions: usize,
    /// Global memo-byte ceiling apportioned across open sessions; `None`
    /// leaves every session at `search.memo_capacity`.
    pub memo_budget_bytes: Option<u64>,
    /// Unchecked events buffered per session before `busy` pushback.
    pub inbox_capacity: usize,
    /// Search nodes one session may burn per scheduler turn before
    /// yielding to the next runnable session.
    pub node_budget: u64,
    /// Base search configuration for every session's monitor.
    pub search: SearchConfig,
    /// Observability handle (sessions gauge, verdict-latency histogram,
    /// backpressure/eviction counters).
    pub obs: ObsHandle,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 4096,
            memo_budget_bytes: None,
            inbox_capacity: 1024,
            node_budget: 50_000,
            search: SearchConfig::default(),
            obs: ObsHandle::disabled(),
        }
    }
}

/// A server frame routed to the connection that must receive it.
#[derive(Clone, Debug)]
pub struct Routed {
    /// Transport routing tag (connection index; 0 for single-stream
    /// transports).
    pub conn: usize,
    /// The frame.
    pub frame: ServerFrame,
}

fn routed(conn: usize, frame: ServerFrame) -> Routed {
    Routed { conn, frame }
}

/// The multiplexer: all open sessions plus the scheduler's run queue.
pub struct SessionTable {
    config: ServeConfig,
    sessions: HashMap<String, Session>,
    /// Round-robin queue of sessions with non-empty inboxes. A session id
    /// appears at most once (enqueued when its inbox becomes non-empty).
    run_queue: VecDeque<String>,
    /// Latched when any session ever poisoned (drives the exit code).
    any_poisoned: bool,
}

impl SessionTable {
    /// An empty table.
    pub fn new(config: ServeConfig) -> Self {
        config.obs.gauge_set("serve.sessions", 0);
        SessionTable {
            config,
            sessions: HashMap::new(),
            run_queue: VecDeque::new(),
            any_poisoned: false,
        }
    }

    /// Open sessions right now.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Did any session (open or since closed) ever hit a hard error?
    pub fn any_poisoned(&self) -> bool {
        self.any_poisoned
    }

    /// Is there no queued work?
    pub fn idle(&self) -> bool {
        self.run_queue.is_empty()
    }

    /// Does `session` exist and have inbox space for one more event?
    /// (The replay driver's flow-control probe; unknown sessions report
    /// `true` so the feed proceeds to its proper error path.)
    pub fn can_accept(&self, session: &str) -> bool {
        self.sessions
            .get(session)
            .map_or(true, |s| s.inbox.len() < self.config.inbox_capacity)
    }

    /// The per-session memo capacity the governor currently mandates
    /// (`None` = no budget configured; fall back to the base config).
    fn governed_capacity(&self, session_count: usize) -> Option<usize> {
        let budget = self.config.memo_budget_bytes?;
        let entries = (budget / EST_ENTRY_BYTES) as usize;
        Some((entries / session_count.max(1)).max(MIN_MEMO_CAP))
    }

    /// Reapplies the governor to every open session (on open/close — the
    /// points where the fair share changes).
    fn apply_governor(&mut self) {
        let Some(cap) = self.governed_capacity(self.sessions.len()) else {
            return;
        };
        for s in self.sessions.values_mut() {
            s.set_memo_capacity(Some(cap));
        }
        self.config
            .obs
            .gauge_set("serve.memo_capacity_per_session", cap as u64);
    }

    /// Handles an `open` frame.
    pub fn open(&mut self, id: &str, conn: usize) -> Vec<Routed> {
        if self.sessions.contains_key(id) {
            return vec![routed(
                conn,
                ServerFrame::Error {
                    session: Some(id.to_string()),
                    message: format!("session `{id}` is already open"),
                },
            )];
        }
        if self.sessions.len() >= self.config.max_sessions {
            self.config.obs.counter_add("serve.open_refused", 1);
            return vec![routed(
                conn,
                ServerFrame::Error {
                    session: Some(id.to_string()),
                    message: format!(
                        "session table full ({} open, --max-sessions {})",
                        self.sessions.len(),
                        self.config.max_sessions
                    ),
                },
            )];
        }
        // Construct the monitor already bounded to the governed share so
        // its memo table picks a shard count matching its size class
        // (`set_capacity` keeps shard counts fixed).
        let mut search = self.config.search;
        if let Some(cap) = self.governed_capacity(self.sessions.len() + 1) {
            search.memo_capacity = Some(cap);
        }
        self.sessions
            .insert(id.to_string(), Session::new(id.to_string(), conn, search));
        self.apply_governor();
        let obs = self.config.obs;
        obs.counter_add("serve.sessions_opened", 1);
        obs.gauge_set("serve.sessions", self.sessions.len() as u64);
        vec![routed(
            conn,
            ServerFrame::Opened {
                session: id.to_string(),
            },
        )]
    }

    /// Handles a `feed` frame: enqueues the event, or pushes back with
    /// `busy` when the session's inbox is full.
    pub fn feed(&mut self, id: &str, event: Event, conn: usize) -> Vec<Routed> {
        let inbox_capacity = self.config.inbox_capacity;
        let obs = self.config.obs;
        let Some(session) = self.sessions.get_mut(id) else {
            return vec![routed(
                conn,
                ServerFrame::Error {
                    session: Some(id.to_string()),
                    message: format!("no open session `{id}`"),
                },
            )];
        };
        if session.closing {
            return vec![routed(
                conn,
                ServerFrame::Error {
                    session: Some(id.to_string()),
                    message: format!("session `{id}` is closing"),
                },
            )];
        }
        if session.inbox.len() >= inbox_capacity {
            obs.counter_add("serve.busy", 1);
            return vec![routed(
                conn,
                ServerFrame::Busy {
                    session: id.to_string(),
                    inbox: inbox_capacity,
                },
            )];
        }
        let was_empty = session.inbox.is_empty();
        session.enqueue(event);
        obs.counter_add("serve.frames_fed", 1);
        if was_empty {
            self.run_queue.push_back(id.to_string());
        }
        Vec::new()
    }

    /// Handles a `close` frame: the session drains its inbox through the
    /// scheduler as usual, then emits its `closed` summary and is removed
    /// (immediately, when the inbox is already empty).
    pub fn close(&mut self, id: &str, conn: usize) -> Vec<Routed> {
        let Some(session) = self.sessions.get_mut(id) else {
            return vec![routed(
                conn,
                ServerFrame::Error {
                    session: Some(id.to_string()),
                    message: format!("no open session `{id}`"),
                },
            )];
        };
        session.closing = true;
        if session.inbox.is_empty() {
            return self.finish(id);
        }
        Vec::new()
    }

    /// Removes a fully-drained closing session, emitting its summary.
    fn finish(&mut self, id: &str) -> Vec<Routed> {
        let Some(session) = self.sessions.remove(id) else {
            return Vec::new();
        };
        debug_assert!(session.inbox.is_empty() && session.closing);
        self.any_poisoned |= session.poisoned;
        self.apply_governor();
        let obs = self.config.obs;
        obs.counter_add("serve.sessions_closed", 1);
        obs.gauge_set("serve.sessions", self.sessions.len() as u64);
        vec![routed(session.conn, session.summary())]
    }

    /// One fair scheduler turn: the front runnable session checks inbox
    /// events until the turn's node budget is spent or its inbox drains.
    /// Returns the frames the turn produced (empty when idle).
    pub fn pump_one(&mut self) -> Vec<Routed> {
        let Some(id) = self.run_queue.pop_front() else {
            return Vec::new();
        };
        let obs = self.config.obs;
        let node_budget = self.config.node_budget;
        let mut out = Vec::new();
        let mut spent = 0u64;
        let Some(session) = self.sessions.get_mut(&id) else {
            return Vec::new();
        };
        let conn = session.conn;
        while spent < node_budget {
            match session.step(obs) {
                Some((frame, nodes)) => {
                    spent = spent.saturating_add(nodes.max(1));
                    out.push(routed(conn, frame));
                }
                None => break,
            }
        }
        obs.counter_add("serve.turns", 1);
        if !session.inbox.is_empty() {
            self.run_queue.push_back(id);
        } else if session.closing {
            out.extend(self.finish(&id));
        }
        out
    }

    /// Drains every runnable session to empty (EOF / shutdown): repeated
    /// fair turns, so even the final drain interleaves sessions.
    pub fn pump_all(&mut self) -> Vec<Routed> {
        let mut out = Vec::new();
        while !self.idle() {
            out.extend(self.pump_one());
        }
        out
    }

    /// Drains everything, then closes every still-open session (shutdown's
    /// final sweep: no event is dropped, every session gets its summary).
    /// Summaries are emitted in session-id order so shutdown output is
    /// deterministic even though `HashMap` iteration is not.
    pub fn drain_and_close_all(&mut self) -> Vec<Routed> {
        let mut out = self.pump_all();
        let mut ids: Vec<String> = self.sessions.keys().cloned().collect();
        ids.sort();
        for id in ids {
            if let Some(session) = self.sessions.get_mut(&id) {
                session.closing = true;
            }
            out.extend(self.finish(&id));
        }
        out
    }

    /// Total memo entries resident across open sessions (telemetry).
    pub fn memo_resident(&self) -> usize {
        self.sessions.values().map(Session::memo_resident).sum()
    }

    /// The per-session memo capacity the governor currently mandates
    /// (`None` when no `--memo-budget` is configured).
    pub fn memo_capacity_per_session(&self) -> Option<usize> {
        self.governed_capacity(self.sessions.len())
    }
}
