//! Deterministic fault injection: the [`FaultPlan`] and the
//! [`FaultDriver`] that applies it to a running daemon.
//!
//! A fault plan is a schedule keyed by **input frame index** (1-based: the
//! N-th non-ignored line the transport hands the daemon). Keying on frame
//! indices rather than wall time makes every injected failure replayable:
//! the same plan over the same frame stream produces the same torn bytes,
//! the same dropped lines, the same budget spikes — so the chaos suite can
//! pin exact properties ("unaffected sessions are byte-identical to the
//! fault-free run") instead of sampling flaky timing windows. This is the
//! model-checking stance of the source paper turned on the daemon itself:
//! enumerate failure interleavings deterministically, then prove the
//! verdict stream survives them.
//!
//! ## Fault taxonomy
//!
//! | kind    | spec syntax       | effect at frame `F`                              |
//! |---------|-------------------|--------------------------------------------------|
//! | torn    | `torn@F:K`        | the line is truncated to `K` bytes (short read)  |
//! | drop    | `drop@F:N`        | `N` lines starting at `F` are lost (dead conn)   |
//! | stall   | `stall@F:T`       | `T` scheduler turns pass before `F` (slow-loris) |
//! | werr    | `werr@F:N`        | the next `N` response writes fail transiently    |
//! | memo    | `memo@F:BxD`      | memo budget pinned to `B` bytes for `D` frames   |
//! | node    | `node@F:NxD`      | node budget pinned to `N` for `D` frames         |
//! | crash   | `crash@F`         | the daemon dies before `F` (journal flushed)     |
//!
//! Plans come from three places: a spec string (`--fault-plan
//! "torn@12:5,drop@30:3"`), a JSON file (`--fault-plan plan.json`, the
//! `tm-faults/v1` document rendered by [`FaultPlan::to_json`]), or seeded
//! generation (`gen@SEED:HORIZONxCOUNT[:kind+kind+...]`) — the chaos
//! property suite's entry point, built on the same splitmix64 mix the
//! harness RNG family uses so plans are stable across platforms.

use std::collections::BTreeMap;

use tm_trace::Json;

use crate::table::{Routed, SessionTable};

/// One injected failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Truncate the input line to `keep` bytes (a short read / torn frame).
    Torn {
        /// Bytes of the line that survive (clamped to a char boundary).
        keep: usize,
    },
    /// Lose `frames` consecutive input lines, this one included — the
    /// in-flight tail of a dropped connection.
    Drop {
        /// Lines lost, `>= 1`.
        frames: usize,
    },
    /// A stalled (slow-loris) client: `turns` scheduler turns elapse
    /// before this line arrives, so every other session keeps draining.
    Stall {
        /// Scheduler turns to run before the line is applied.
        turns: u64,
    },
    /// Arm `writes` transient response-write failures: the next `writes`
    /// server frames are lost on the wire instead of delivered.
    WriteErr {
        /// Writes that fail, `>= 1`.
        writes: u32,
    },
    /// Pin the global memo budget to `bytes` for the next `frames` input
    /// lines, then restore the configured budget (a memory-pressure spike).
    MemoSpike {
        /// The spiked budget in bytes.
        bytes: u64,
        /// Lines the spike lasts.
        frames: usize,
    },
    /// Pin the per-turn node budget to `nodes` for the next `frames` input
    /// lines, then restore (a CPU-starvation spike).
    NodeSpike {
        /// The spiked per-turn budget.
        nodes: u64,
        /// Lines the spike lasts.
        frames: usize,
    },
    /// Kill the daemon before this line: the journal is flushed and the
    /// process exits with code 3, leaving recovery to `--resume`.
    Crash,
}

impl Fault {
    fn kind_name(&self) -> &'static str {
        match self {
            Fault::Torn { .. } => "torn",
            Fault::Drop { .. } => "drop",
            Fault::Stall { .. } => "stall",
            Fault::WriteErr { .. } => "werr",
            Fault::MemoSpike { .. } => "memo",
            Fault::NodeSpike { .. } => "node",
            Fault::Crash => "crash",
        }
    }
}

/// The fault kinds [`FaultPlan::generate`] may draw from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// [`Fault::Torn`].
    Torn,
    /// [`Fault::Drop`].
    Drop,
    /// [`Fault::Stall`].
    Stall,
    /// [`Fault::WriteErr`].
    WriteErr,
    /// [`Fault::MemoSpike`].
    MemoSpike,
    /// [`Fault::NodeSpike`].
    NodeSpike,
    /// [`Fault::Crash`] (placed at most once per generated plan).
    Crash,
}

impl FaultKind {
    /// Parses a kind name as spelled in the spec grammar.
    pub fn parse(s: &str) -> Result<FaultKind, String> {
        match s {
            "torn" => Ok(FaultKind::Torn),
            "drop" => Ok(FaultKind::Drop),
            "stall" => Ok(FaultKind::Stall),
            "werr" => Ok(FaultKind::WriteErr),
            "memo" => Ok(FaultKind::MemoSpike),
            "node" => Ok(FaultKind::NodeSpike),
            "crash" => Ok(FaultKind::Crash),
            other => Err(format!("unknown fault kind `{other}`")),
        }
    }
}

/// The fault kinds whose injected failures leave *other* sessions'
/// verdict streams untouched — the default draw set for the generated
/// chaos property (write errors lose arbitrary in-flight responses and
/// crashes end the run, so both are exercised by targeted suites instead).
pub const VERDICT_PRESERVING_KINDS: &[FaultKind] = &[
    FaultKind::Torn,
    FaultKind::Drop,
    FaultKind::Stall,
    FaultKind::MemoSpike,
    FaultKind::NodeSpike,
];

/// A deterministic schedule of injected faults, keyed by input frame index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults by 1-based frame index; several faults may share a frame and
    /// apply in insertion order.
    by_frame: BTreeMap<usize, Vec<Fault>>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; the driver's fast path).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.by_frame.is_empty()
    }

    /// Total scheduled faults.
    pub fn len(&self) -> usize {
        self.by_frame.values().map(Vec::len).sum()
    }

    /// Adds one fault at the given 1-based frame index.
    pub fn schedule(&mut self, frame: usize, fault: Fault) -> &mut Self {
        self.by_frame.entry(frame.max(1)).or_default().push(fault);
        self
    }

    /// The faults scheduled at `frame`, in insertion order.
    pub fn faults_at(&self, frame: usize) -> &[Fault] {
        self.by_frame.get(&frame).map_or(&[], Vec::as_slice)
    }

    /// Iterates `(frame, fault)` pairs in frame order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Fault)> {
        self.by_frame
            .iter()
            .flat_map(|(f, faults)| faults.iter().map(move |fault| (*f, fault)))
    }

    /// Parses a plan from either form `--fault-plan` accepts: a JSON
    /// document (first non-space byte `{`) or the compact spec grammar.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        if text.trim_start().starts_with('{') {
            FaultPlan::parse_json(text)
        } else {
            FaultPlan::parse_spec(text)
        }
    }

    /// Parses the compact spec grammar: comma-separated `kind@frame[:args]`
    /// entries (see the module docs for the per-kind argument shapes), plus
    /// `gen@SEED:HORIZONxCOUNT[:kind+kind+...]` which expands to a seeded
    /// generated plan over frames `1..=HORIZON`.
    pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (kind, rest) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault entry `{entry}`: expected `kind@frame[:args]`"))?;
            if kind == "gen" {
                plan.expand_gen(entry, rest)?;
                continue;
            }
            let (frame, args) = match rest.split_once(':') {
                Some((f, a)) => (f, Some(a)),
                None => (rest, None),
            };
            let frame: usize = frame
                .parse()
                .map_err(|_| format!("fault entry `{entry}`: bad frame index `{frame}`"))?;
            if frame == 0 {
                return Err(format!("fault entry `{entry}`: frame indices are 1-based"));
            }
            let arg_err = || format!("fault entry `{entry}`: bad arguments");
            let one =
                |a: Option<&str>| a.ok_or_else(arg_err)?.parse::<u64>().map_err(|_| arg_err());
            let two = |a: Option<&str>| -> Result<(u64, u64), String> {
                let (x, y) = a.ok_or_else(arg_err)?.split_once('x').ok_or_else(arg_err)?;
                Ok((
                    x.parse().map_err(|_| arg_err())?,
                    y.parse().map_err(|_| arg_err())?,
                ))
            };
            let fault = match kind {
                "torn" => Fault::Torn {
                    keep: one(args)? as usize,
                },
                "drop" => Fault::Drop {
                    frames: (one(args)? as usize).max(1),
                },
                "stall" => Fault::Stall { turns: one(args)? },
                "werr" => Fault::WriteErr {
                    writes: (one(args)? as u32).max(1),
                },
                "memo" => {
                    let (bytes, frames) = two(args)?;
                    Fault::MemoSpike {
                        bytes,
                        frames: (frames as usize).max(1),
                    }
                }
                "node" => {
                    let (nodes, frames) = two(args)?;
                    Fault::NodeSpike {
                        nodes,
                        frames: (frames as usize).max(1),
                    }
                }
                "crash" => {
                    if args.is_some() {
                        return Err(format!("fault entry `{entry}`: crash takes no arguments"));
                    }
                    Fault::Crash
                }
                other => return Err(format!("fault entry `{entry}`: unknown kind `{other}`")),
            };
            plan.schedule(frame, fault);
        }
        Ok(plan)
    }

    /// Expands one `gen@SEED:HORIZONxCOUNT[:kinds]` spec entry in place.
    fn expand_gen(&mut self, entry: &str, rest: &str) -> Result<(), String> {
        let err =
            || format!("fault entry `{entry}`: expected `gen@SEED:HORIZONxCOUNT[:kind+kind+...]`");
        let mut parts = rest.splitn(3, ':');
        let seed: u64 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let (h, c) = parts
            .next()
            .ok_or_else(err)?
            .split_once('x')
            .ok_or_else(err)?;
        let horizon: usize = h.parse().map_err(|_| err())?;
        let count: usize = c.parse().map_err(|_| err())?;
        let kinds: Vec<FaultKind> = match parts.next() {
            Some(list) => list
                .split('+')
                .map(FaultKind::parse)
                .collect::<Result<_, _>>()?,
            None => VERDICT_PRESERVING_KINDS.to_vec(),
        };
        if kinds.is_empty() {
            return Err(err());
        }
        let generated = FaultPlan::generate(seed, horizon, count, &kinds);
        for (frame, fault) in generated.iter() {
            self.schedule(frame, *fault);
        }
        Ok(())
    }

    /// Parses the `tm-faults/v1` JSON document form.
    pub fn parse_json(text: &str) -> Result<FaultPlan, String> {
        let doc = Json::parse(text).map_err(|e| format!("fault plan JSON: {}", e.message))?;
        match doc.get("plan") {
            Some(Json::Str(v)) if v == "tm-faults/v1" => {}
            _ => return Err("fault plan JSON: missing `\"plan\":\"tm-faults/v1\"`".into()),
        }
        let Some(Json::Arr(faults)) = doc.get("faults") else {
            return Err("fault plan JSON: missing `faults` array".into());
        };
        let int = |f: &Json, key: &str| -> Result<u64, String> {
            match f.get(key) {
                Some(Json::Int(v)) if *v >= 0 => Ok(*v as u64),
                _ => Err(format!("fault plan JSON: missing integer `{key}`")),
            }
        };
        let mut plan = FaultPlan::new();
        for f in faults {
            let Some(Json::Str(kind)) = f.get("kind") else {
                return Err("fault plan JSON: fault without string `kind`".into());
            };
            let frame = int(f, "frame")? as usize;
            if frame == 0 {
                return Err("fault plan JSON: frame indices are 1-based".into());
            }
            let fault = match kind.as_str() {
                "torn" => Fault::Torn {
                    keep: int(f, "keep")? as usize,
                },
                "drop" => Fault::Drop {
                    frames: (int(f, "frames")? as usize).max(1),
                },
                "stall" => Fault::Stall {
                    turns: int(f, "turns")?,
                },
                "werr" => Fault::WriteErr {
                    writes: (int(f, "writes")? as u32).max(1),
                },
                "memo" => Fault::MemoSpike {
                    bytes: int(f, "bytes")?,
                    frames: (int(f, "frames")? as usize).max(1),
                },
                "node" => Fault::NodeSpike {
                    nodes: int(f, "nodes")?,
                    frames: (int(f, "frames")? as usize).max(1),
                },
                "crash" => Fault::Crash,
                other => return Err(format!("fault plan JSON: unknown kind `{other}`")),
            };
            plan.schedule(frame, fault);
        }
        Ok(plan)
    }

    /// Renders the plan as its `tm-faults/v1` JSON document (one line).
    pub fn to_json(&self) -> String {
        let faults: Vec<Json> = self
            .iter()
            .map(|(frame, fault)| {
                let mut fields = vec![
                    ("kind".into(), Json::Str(fault.kind_name().into())),
                    ("frame".into(), Json::Int(frame as i64)),
                ];
                match fault {
                    Fault::Torn { keep } => fields.push(("keep".into(), Json::Int(*keep as i64))),
                    Fault::Drop { frames } => {
                        fields.push(("frames".into(), Json::Int(*frames as i64)))
                    }
                    Fault::Stall { turns } => {
                        fields.push(("turns".into(), Json::Int(*turns as i64)))
                    }
                    Fault::WriteErr { writes } => {
                        fields.push(("writes".into(), Json::Int(i64::from(*writes))))
                    }
                    Fault::MemoSpike { bytes, frames } => {
                        fields.push(("bytes".into(), Json::Int(*bytes as i64)));
                        fields.push(("frames".into(), Json::Int(*frames as i64)));
                    }
                    Fault::NodeSpike { nodes, frames } => {
                        fields.push(("nodes".into(), Json::Int(*nodes as i64)));
                        fields.push(("frames".into(), Json::Int(*frames as i64)));
                    }
                    Fault::Crash => {}
                }
                Json::Obj(0, fields)
            })
            .collect();
        Json::Obj(
            0,
            vec![
                ("plan".into(), Json::Str("tm-faults/v1".into())),
                ("faults".into(), Json::Arr(faults)),
            ],
        )
        .to_compact_string()
    }

    /// Generates a seeded plan of `count` faults over frames
    /// `1..=horizon`, drawing kinds uniformly from `kinds`. Deterministic
    /// in `(seed, horizon, count, kinds)` and platform-independent
    /// (splitmix64), so generated chaos cases are exactly reproducible
    /// from their seed. At most one [`Fault::Crash`] is placed per plan.
    pub fn generate(seed: u64, horizon: usize, count: usize, kinds: &[FaultKind]) -> FaultPlan {
        let mut plan = FaultPlan::new();
        if kinds.is_empty() || horizon == 0 {
            return plan;
        }
        // Distinguish same-seed plans with different shapes.
        let mut state = seed ^ (horizon as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut crashed = false;
        for _ in 0..count {
            let frame = 1 + (splitmix64(&mut state) as usize) % horizon;
            let kind = kinds[(splitmix64(&mut state) as usize) % kinds.len()];
            let r = splitmix64(&mut state);
            let fault = match kind {
                FaultKind::Torn => Fault::Torn {
                    keep: (r % 24) as usize,
                },
                FaultKind::Drop => Fault::Drop {
                    frames: 1 + (r % 3) as usize,
                },
                FaultKind::Stall => Fault::Stall { turns: 1 + r % 8 },
                FaultKind::WriteErr => Fault::WriteErr {
                    writes: 1 + (r % 3) as u32,
                },
                FaultKind::MemoSpike => Fault::MemoSpike {
                    bytes: crate::table::EST_ENTRY_BYTES * (16 + r % 256),
                    frames: 1 + (r % 32) as usize,
                },
                FaultKind::NodeSpike => Fault::NodeSpike {
                    nodes: 1 + r % 1000,
                    frames: 1 + (r % 32) as usize,
                },
                FaultKind::Crash => {
                    if crashed {
                        continue;
                    }
                    crashed = true;
                    Fault::Crash
                }
            };
            plan.schedule(frame, fault);
        }
        plan
    }
}

/// One splitmix64 step — the same platform-independent mix the harness RNG
/// family builds on (`tm-serve` deliberately carries no `rand` dependency).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What the driver decided about one input line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LineFate {
    /// Deliver this (possibly mutated) line to the frame parser.
    Deliver(String),
    /// The line was lost to a drop fault; skip it.
    Skip,
    /// A crash fault fired: the journal has been flushed, the daemon must
    /// exit with code 3 without draining.
    Crash,
}

/// Applies a [`FaultPlan`] to a daemon's input stream, one line at a time.
///
/// The driver owns the plan's runtime state: the frame counter, in-flight
/// drop spans, armed transient write failures, and pending budget-spike
/// restores. It also records which sessions injected input mutations
/// (torn/dropped lines) touched, so the chaos suite can partition sessions
/// into "affected" and "must-be-byte-identical".
pub struct FaultDriver {
    plan: FaultPlan,
    /// 1-based index of the most recently begun input line.
    frame: usize,
    /// Lines still to swallow from an in-flight [`Fault::Drop`].
    drop_left: usize,
    /// Armed transient write failures ([`Fault::WriteErr`]).
    write_fails_left: u32,
    /// Budget restores due at a future frame index.
    restores: Vec<(usize, Restore)>,
    /// Sessions whose input stream an injected mutation touched.
    affected: std::collections::BTreeSet<String>,
}

/// A budget value to put back when a spike expires.
#[derive(Clone, Copy, Debug)]
enum Restore {
    Memo(Option<u64>),
    Node(u64),
}

impl FaultDriver {
    /// A driver over the given plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultDriver {
            plan,
            frame: 0,
            drop_left: 0,
            write_fails_left: 0,
            restores: Vec::new(),
            affected: std::collections::BTreeSet::new(),
        }
    }

    /// True when the plan injects nothing (lets the daemon loops skip the
    /// per-line bookkeeping entirely).
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Advances to the next input line and applies every fault scheduled
    /// there. Returns any frames produced by stall-driven scheduler turns
    /// plus the line's fate.
    pub fn on_line(&mut self, table: &mut SessionTable, line: &str) -> (Vec<Routed>, LineFate) {
        self.frame += 1;
        let f = self.frame;
        let mut out = Vec::new();
        // Expired spikes restore before this line's faults apply, so
        // back-to-back spikes compose predictably.
        let mut i = 0;
        while i < self.restores.len() {
            if self.restores[i].0 <= f {
                match self.restores.swap_remove(i).1 {
                    Restore::Memo(bytes) => table.set_memo_budget(bytes),
                    Restore::Node(nodes) => table.set_node_budget(nodes),
                }
            } else {
                i += 1;
            }
        }
        if self.drop_left > 0 {
            self.drop_left -= 1;
            self.note_affected(line);
            return (out, LineFate::Skip);
        }
        let mut delivered = line.to_string();
        let mut fate_skip = false;
        for fault in self.plan.faults_at(f).to_vec() {
            match fault {
                Fault::Stall { turns } => {
                    for _ in 0..turns {
                        out.extend(table.pump_one());
                    }
                }
                Fault::Torn { keep } => {
                    self.note_affected(line);
                    let mut keep = keep.min(delivered.len());
                    while !delivered.is_char_boundary(keep) {
                        keep -= 1;
                    }
                    delivered.truncate(keep);
                }
                Fault::Drop { frames } => {
                    self.note_affected(line);
                    self.drop_left = frames - 1;
                    fate_skip = true;
                }
                Fault::WriteErr { writes } => {
                    self.write_fails_left += writes;
                }
                Fault::MemoSpike { bytes, frames } => {
                    self.restores
                        .push((f + frames, Restore::Memo(table.memo_budget())));
                    table.set_memo_budget(Some(bytes));
                }
                Fault::NodeSpike { nodes, frames } => {
                    self.restores
                        .push((f + frames, Restore::Node(table.node_budget())));
                    table.set_node_budget(nodes);
                }
                Fault::Crash => {
                    table.journal_flush();
                    return (out, LineFate::Crash);
                }
            }
        }
        if fate_skip {
            (out, LineFate::Skip)
        } else {
            (out, LineFate::Deliver(delivered))
        }
    }

    /// Consumes one armed transient write failure, if any — the emit path
    /// asks before every response write and drops the frame when `true`.
    pub fn take_write_failure(&mut self) -> bool {
        if self.write_fails_left > 0 {
            self.write_fails_left -= 1;
            true
        } else {
            false
        }
    }

    /// Sessions whose *input* an injected mutation touched (torn or
    /// dropped lines, attributed by parsing the original line). The
    /// complement of this set is what the chaos suite holds byte-identical
    /// to the fault-free run.
    pub fn affected_sessions(&self) -> &std::collections::BTreeSet<String> {
        &self.affected
    }

    fn note_affected(&mut self, original_line: &str) {
        if let Ok(doc) = Json::parse(original_line) {
            if let Some(Json::Str(s)) = doc.get("session") {
                self.affected.insert(s.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_roundtrips_through_json() {
        let plan = FaultPlan::parse_spec(
            "torn@12:5, drop@30:3, stall@40:5, werr@50:2, memo@60:8192x10, node@70:100x5, crash@80",
        )
        .unwrap();
        assert_eq!(plan.len(), 7);
        assert_eq!(plan.faults_at(12), &[Fault::Torn { keep: 5 }]);
        assert_eq!(plan.faults_at(80), &[Fault::Crash]);
        let json = plan.to_json();
        assert_eq!(FaultPlan::parse(&json).unwrap(), plan);
        // The dispatching parse accepts the spec form too.
        assert_eq!(FaultPlan::parse("torn@12:5").unwrap().len(), 1);
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for (bad, needle) in [
            ("torn", "expected `kind@frame"),
            ("torn@x:5", "bad frame index"),
            ("torn@0:5", "1-based"),
            ("warble@3:1", "unknown kind `warble`"),
            ("memo@3:77", "bad arguments"),
            ("crash@3:1", "crash takes no arguments"),
            ("gen@1:abc", "expected `gen@SEED"),
            ("gen@1:10x3:torn+zap", "unknown fault kind `zap`"),
        ] {
            let e = FaultPlan::parse_spec(bad).unwrap_err();
            assert!(e.contains(needle), "{bad}: {e}");
        }
        assert!(FaultPlan::parse_json("{}")
            .unwrap_err()
            .contains("tm-faults/v1"));
    }

    #[test]
    fn generation_is_deterministic_and_bounded_to_the_horizon() {
        let a = FaultPlan::generate(42, 100, 16, VERDICT_PRESERVING_KINDS);
        let b = FaultPlan::generate(42, 100, 16, VERDICT_PRESERVING_KINDS);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.iter().all(|(f, _)| (1..=100).contains(&f)));
        let c = FaultPlan::generate(43, 100, 16, VERDICT_PRESERVING_KINDS);
        assert_ne!(a, c, "different seeds draw different plans");
        // The gen@ spec entry expands to exactly the library generation.
        let spec = FaultPlan::parse_spec("gen@42:100x16:torn+drop+stall+memo+node").unwrap();
        assert_eq!(spec, a);
    }

    #[test]
    fn generated_crashes_appear_at_most_once() {
        for seed in 0..32 {
            let plan = FaultPlan::generate(seed, 50, 20, &[FaultKind::Crash, FaultKind::Stall]);
            let crashes = plan
                .iter()
                .filter(|(_, f)| matches!(f, Fault::Crash))
                .count();
            assert!(crashes <= 1, "seed {seed} placed {crashes} crashes");
        }
    }
}
