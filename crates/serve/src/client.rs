//! A resilient tm-serve client: capped exponential backoff, seq-tagged
//! idempotent resends, and reconnect-with-re-open recovery.
//!
//! The daemon's degradation surface (`busy` pushback with
//! `retry_after_turns` hints, dropped connections, lost response frames)
//! only adds up to a usable protocol if clients can drive it without
//! double-feeding events. This module is that driver: a [`Client`] runs
//! one session over any [`FrameLink`], tagging every feed with its `seq`
//! so resends after a bounce, reconnect, or suspected response loss are
//! idempotent (the daemon answers duplicates with `ack` and never feeds
//! an event twice — the chaos suite pins the resulting exactly-once
//! semantics against a fault-free reference run).
//!
//! [`FrameLink`] abstracts the wire so the same client logic runs over a
//! real Unix socket ([`SocketLink`]) and over the chaos harness's
//! in-memory link, which injects connection drops and response losses on
//! a seeded schedule.

use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use tm_model::Event;

use crate::frame::{parse_server_frame, render_client_frame, ClientFrame, ServerFrame};

/// A bidirectional frame pipe to the daemon.
///
/// `recv` is polling-style: `Ok(None)` means "no frame right now" (idle
/// or EOF), not an error — the client uses repeated idleness as its
/// response-loss heuristic. `backoff` lets daemon time pass: wall-clock
/// sleep on a real socket, scheduler turns on an in-memory harness.
pub trait FrameLink {
    /// Sends one rendered frame line (without trailing newline).
    fn send(&mut self, line: &str) -> io::Result<()>;
    /// Receives one response frame line, or `Ok(None)` when idle.
    fn recv(&mut self) -> io::Result<Option<String>>;
    /// Tears down and re-establishes the connection (the daemon sees a
    /// new connection; the client re-opens to re-bind its session).
    fn reconnect(&mut self) -> io::Result<()>;
    /// Lets `turns` scheduler turns' worth of daemon time pass.
    fn backoff(&mut self, turns: u64);
}

/// Capped exponential backoff policy for [`Client`].
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    /// First retry waits this many turns.
    pub base_turns: u64,
    /// Exponential growth is clamped here.
    pub cap_turns: u64,
    /// Consecutive recoveries (bounces, reconnects, resends) without
    /// progress before the client gives up.
    pub max_attempts: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base_turns: 1,
            cap_turns: 64,
            max_attempts: 16,
        }
    }
}

impl Backoff {
    /// The wait for the `attempt`-th consecutive retry (1-based).
    fn turns(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        self.base_turns
            .checked_shl(shift)
            .unwrap_or(self.cap_turns)
            .min(self.cap_turns)
            .max(1)
    }
}

/// Why a [`Client`] run gave up.
#[derive(Debug)]
pub enum ClientError {
    /// The backoff policy's attempt budget ran out without progress.
    Exhausted,
    /// The daemon sent something the protocol does not allow here.
    Protocol(String),
    /// The session disappeared server-side before its summary arrived.
    SessionLost,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted => write!(f, "retry budget exhausted"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::SessionLost => write!(f, "session lost before its summary"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Recovery counters a finished run reports (the chaos suite asserts the
/// faults it injected actually exercised these paths).
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// `busy` frames absorbed (backoff-then-resend cycles).
    pub busy_bounces: u64,
    /// Link-level reconnects (send/recv errors recovered).
    pub reconnects: u64,
    /// Resend sweeps triggered by suspected response loss.
    pub resends: u64,
    /// Duplicate feeds answered with `ack` (proof the daemon deduped).
    pub acks: u64,
}

/// What one session run produced.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// The response line for each event, indexed by `seq - 1`. `None`
    /// means the response was lost in transit and the event was confirmed
    /// via a later `ack` instead (the event was still fed exactly once).
    pub responses: Vec<Option<String>>,
    /// The rendered `closed` summary, when it arrived (`None` only if the
    /// summary itself was lost and the daemon confirmed the session gone).
    pub summary: Option<String>,
    /// Recovery counters.
    pub stats: LinkStats,
}

/// How many feeds the client keeps in flight beyond the last confirmed
/// acceptance (enough to exercise inbox pressure, small enough that a
/// bounce's resend sweep stays cheap).
const SEND_WINDOW: usize = 8;

/// Consecutive idle `recv`s before the client suspects a lost response
/// and resends from its acceptance cursor.
const IDLE_SUSPECT: u32 = 3;

/// Runs sessions over a [`FrameLink`] with a [`Backoff`] policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct Client {
    /// The retry policy.
    pub policy: Backoff,
}

impl Client {
    /// A client with the given policy.
    pub fn new(policy: Backoff) -> Self {
        Client { policy }
    }

    /// Opens `id`, feeds every event seq-tagged, closes, and collects the
    /// responses — recovering from `busy` bounces, connection failures,
    /// and lost responses along the way. Returns when the `closed`
    /// summary arrives (or the daemon confirms the session already
    /// finished after the summary was lost).
    pub fn run_session<L: FrameLink>(
        &self,
        link: &mut L,
        id: &str,
        events: &[Event],
    ) -> Result<SessionOutcome, ClientError> {
        let n = events.len();
        let mut responses: Vec<Option<String>> = vec![None; n];
        let mut stats = LinkStats::default();
        // `accepted` = highest seq the daemon has confirmed taking;
        // `sent` = highest seq we have put on the wire this connection.
        let mut accepted = 0usize;
        let mut sent = 0usize;
        let mut opened = false;
        let mut close_sent = false;
        let mut close_ever_sent = false;
        let mut attempts = 0u32;
        let mut idle_spins = 0u32;
        'outer: loop {
            macro_rules! bump_attempts {
                () => {{
                    attempts += 1;
                    if attempts > self.policy.max_attempts {
                        return Err(ClientError::Exhausted);
                    }
                }};
            }
            macro_rules! recover_link {
                () => {{
                    bump_attempts!();
                    stats.reconnects += 1;
                    link.backoff(self.policy.turns(attempts));
                    let _ = link.reconnect();
                    opened = false;
                    sent = accepted;
                    close_sent = false;
                    continue 'outer;
                }};
            }
            if !opened {
                let line = render_client_frame(&ClientFrame::Open {
                    session: id.to_string(),
                });
                if link.send(&line).is_err() {
                    recover_link!();
                }
                opened = true;
            }
            while sent < n && sent < accepted + SEND_WINDOW {
                let line = render_client_frame(&ClientFrame::Feed {
                    session: id.to_string(),
                    event: events[sent].clone(),
                    seq: Some(sent + 1),
                });
                if link.send(&line).is_err() {
                    recover_link!();
                }
                sent += 1;
            }
            if sent == n && accepted == n && !close_sent {
                let line = render_client_frame(&ClientFrame::Close {
                    session: id.to_string(),
                });
                if link.send(&line).is_err() {
                    recover_link!();
                }
                close_sent = true;
                close_ever_sent = true;
            }
            let received = match link.recv() {
                Ok(r) => r,
                Err(_) => recover_link!(),
            };
            let Some(line) = received else {
                idle_spins += 1;
                if idle_spins >= IDLE_SUSPECT {
                    idle_spins = 0;
                    if accepted < sent {
                        // Suspected lost responses: rewind the send cursor;
                        // duplicates are answered with `ack`.
                        bump_attempts!();
                        stats.resends += 1;
                        sent = accepted;
                    } else if close_sent {
                        bump_attempts!();
                        close_sent = false; // resend the close
                    } else {
                        bump_attempts!();
                        link.backoff(self.policy.turns(attempts));
                    }
                } else {
                    link.backoff(1);
                }
                continue 'outer;
            };
            idle_spins = 0;
            let frame = parse_server_frame(&line).map_err(|e| ClientError::Protocol(e.message))?;
            match frame {
                ServerFrame::Opened { .. } => {
                    attempts = 0;
                }
                ServerFrame::Ack { seq, .. } => {
                    stats.acks += 1;
                    accepted = accepted.max(seq);
                    attempts = 0;
                }
                ServerFrame::Verdict { seq, .. } => {
                    accepted = accepted.max(seq);
                    if (1..=n).contains(&seq) && responses[seq - 1].is_none() {
                        responses[seq - 1] = Some(line);
                    }
                    attempts = 0;
                }
                ServerFrame::Busy {
                    seq,
                    retry_after_turns,
                    ..
                } => {
                    stats.busy_bounces += 1;
                    bump_attempts!();
                    match seq {
                        // The daemon rejected seq k: everything from k on
                        // must be resent once the pressure clears.
                        Some(k) => sent = sent.min(k.saturating_sub(1)),
                        // A shed open: re-offer it after the wait.
                        None => opened = false,
                    }
                    let turns = retry_after_turns.unwrap_or_else(|| self.policy.turns(attempts));
                    link.backoff(turns.min(self.policy.cap_turns).max(1));
                }
                ServerFrame::Error {
                    seq: Some(k),
                    session: Some(_),
                    message,
                } => {
                    if message.contains("seq gap") {
                        // A pipelined feed landed after an earlier one
                        // bounced (and the bounce was lost in flight): the
                        // daemon consumed nothing. Rewind to the last
                        // confirmed acceptance; duplicates are acked.
                        bump_attempts!();
                        stats.resends += 1;
                        sent = accepted;
                        link.backoff(self.policy.turns(attempts));
                    } else {
                        // A positioned error *is* event k's response (a
                        // poisoned session's latched diagnosis): record it
                        // and advance — the daemon has consumed that seq.
                        accepted = accepted.max(k);
                        if (1..=n).contains(&k) && responses[k - 1].is_none() {
                            responses[k - 1] = Some(line);
                        }
                        attempts = 0;
                    }
                }
                ServerFrame::Error {
                    session: Some(_),
                    seq: None,
                    message,
                } => {
                    if message.contains("already open") {
                        // A benign re-open race; the session is ours.
                        opened = true;
                    } else if message.contains("no open session")
                        && close_ever_sent
                        && accepted == n
                    {
                        // The summary was lost but the daemon confirms the
                        // session finished; everything was fed exactly once.
                        return Ok(SessionOutcome {
                            responses,
                            summary: None,
                            stats,
                        });
                    } else {
                        return Err(ClientError::Protocol(message));
                    }
                }
                ServerFrame::Error {
                    session: None,
                    message,
                    ..
                } => return Err(ClientError::Protocol(message)),
                ServerFrame::Closed { .. } => {
                    return Ok(SessionOutcome {
                        responses,
                        summary: Some(line),
                        stats,
                    });
                }
            }
        }
    }
}

/// [`FrameLink`] over a real Unix-domain socket to a live daemon.
///
/// `recv` uses a short read timeout so idleness maps to `Ok(None)`;
/// partial lines interrupted by the timeout are stitched back together
/// across calls, so a slow daemon never causes a torn frame client-side.
pub struct SocketLink {
    path: PathBuf,
    stream: Option<Conn>,
    /// Partial line carried across timed-out reads.
    pending: String,
    /// `backoff(1)`'s wall-clock value.
    turn: Duration,
}

struct Conn {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl SocketLink {
    /// A link that dials the daemon socket at `path` (connects lazily on
    /// the first send).
    pub fn new(path: PathBuf) -> Self {
        SocketLink {
            path,
            stream: None,
            pending: String::new(),
            turn: Duration::from_millis(2),
        }
    }

    fn conn(&mut self) -> io::Result<&mut Conn> {
        if self.stream.is_none() {
            let writer = UnixStream::connect(&self.path)?;
            writer.set_read_timeout(Some(Duration::from_millis(20)))?;
            let read_half = writer.try_clone()?;
            self.stream = Some(Conn {
                reader: BufReader::new(read_half),
                writer,
            });
        }
        match self.stream.as_mut() {
            Some(conn) => Ok(conn),
            None => Err(io::Error::new(ErrorKind::NotConnected, "not connected")),
        }
    }
}

impl FrameLink for SocketLink {
    fn send(&mut self, line: &str) -> io::Result<()> {
        let conn = self.conn()?;
        match writeln!(conn.writer, "{line}") {
            Ok(()) => Ok(()),
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    fn recv(&mut self) -> io::Result<Option<String>> {
        let Some(conn) = self.stream.as_mut() else {
            return Err(io::Error::new(ErrorKind::NotConnected, "not connected"));
        };
        let mut chunk = String::new();
        match conn.reader.read_line(&mut chunk) {
            Ok(0) => {
                if self.pending.is_empty() {
                    Ok(None)
                } else {
                    // EOF inside a partial frame: surface what we have;
                    // the parser will answer with an error frame's worth
                    // of diagnostics client-side.
                    Ok(Some(std::mem::take(&mut self.pending)))
                }
            }
            Ok(_) => {
                let mut full = std::mem::take(&mut self.pending);
                full.push_str(chunk.trim_end_matches(['\n', '\r']));
                if chunk.ends_with('\n') {
                    Ok(Some(full))
                } else {
                    // Timed out mid-line on a previous call boundary:
                    // stitch and wait for the rest.
                    self.pending = full;
                    Ok(None)
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                self.pending.push_str(chunk.trim_end_matches(['\n', '\r']));
                Ok(None)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(None),
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    fn reconnect(&mut self) -> io::Result<()> {
        self.stream = None;
        self.pending.clear();
        self.conn().map(|_| ())
    }

    fn backoff(&mut self, turns: u64) {
        std::thread::sleep(self.turn.saturating_mul(turns.min(1000) as u32));
    }
}
