//! The chaos property suite: seeded fault plans against the daemon's
//! robustness contract.
//!
//! Three pinned properties:
//!
//! 1. **No generated plan crashes the daemon.** Any plan drawn from the
//!    verdict-preserving kinds (torn frames, dropped lines, stalls, budget
//!    spikes) yields a normal exit — the fault plane degrades, never
//!    panics.
//! 2. **Unaffected sessions are byte-identical.** Sessions whose input no
//!    injected mutation touched produce exactly the frames of the
//!    fault-free run, byte for byte — injected chaos is perfectly
//!    contained to the sessions it hits.
//! 3. **Kill + `--resume` equals the uninterrupted run.** An injected
//!    crash mid-stream (journal flushed, exit 3) followed by a resumed
//!    replay of the same input produces, per session, the same verdict
//!    and summary lines as a run that was never interrupted.
//!
//! Plus the client half of the story: a [`Client`] over a fault-injecting
//! in-memory link reaches the fault-free outcome exactly once despite
//! connection drops, lost responses, and `busy` pushback.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::path::PathBuf;

use tm_harness::randhist::{random_history, GenConfig};
use tm_model::History;
use tm_serve::faults::VERDICT_PRESERVING_KINDS;
use tm_serve::{
    parse_client_frame, render_client_frame, replay, Backoff, Client, ClientFrame, Fault,
    FaultPlan, FrameLink, Routed, ServeConfig, SessionTable, CRASH_EXIT_CODE,
};
use tm_trace::Json;

/// A fleet of random sessions across the three generator profiles.
fn battery(n: usize, base_seed: u64) -> Vec<(String, History)> {
    let profiles = [
        GenConfig::default(),
        GenConfig {
            txs: 6,
            objs: 2,
            max_ops: 5,
            noise: 0.4,
            commit_pending: 0.3,
            abort: 0.2,
        },
        GenConfig {
            txs: 5,
            objs: 1,
            max_ops: 4,
            noise: 0.6,
            commit_pending: 0.2,
            abort: 0.4,
        },
    ];
    (0..n)
        .map(|i| {
            (
                format!("s{i:02}"),
                random_history(&profiles[i % 3], base_seed * 131 + i as u64),
            )
        })
        .collect()
}

/// All sessions open, events interleave round-robin, all sessions close.
fn interleaved_stream(sessions: &[(String, History)]) -> String {
    let mut lines = Vec::new();
    for (id, _) in sessions {
        lines.push(render_client_frame(&ClientFrame::Open {
            session: id.clone(),
        }));
    }
    let max_len = sessions.iter().map(|(_, h)| h.len()).max().unwrap_or(0);
    for round in 0..max_len {
        for (id, h) in sessions {
            if let Some(event) = h.events().get(round) {
                lines.push(render_client_frame(&ClientFrame::Feed {
                    session: id.clone(),
                    event: event.clone(),
                    seq: None,
                }));
            }
        }
    }
    for (id, _) in sessions {
        lines.push(render_client_frame(&ClientFrame::Close {
            session: id.clone(),
        }));
    }
    lines.join("\n")
}

fn run_replay(config: ServeConfig, stream: &str) -> (i32, String) {
    let mut out = Vec::new();
    let code = replay(config, stream, &mut out);
    (
        code,
        String::from_utf8(out).expect("daemon output is UTF-8"),
    )
}

/// Groups output lines by their `session` field (exact bytes, per-session
/// order). `kinds` filters on the `frame` field when non-empty.
fn session_lines(output: &str, kinds: &[&str]) -> BTreeMap<String, Vec<String>> {
    let mut by_session: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for line in output.lines() {
        let doc = Json::parse(line).expect("daemon emits valid JSON");
        if !kinds.is_empty() {
            match doc.get("frame") {
                Some(Json::Str(k)) if kinds.contains(&k.as_str()) => {}
                _ => continue,
            }
        }
        if let Some(Json::Str(session)) = doc.get("session") {
            by_session
                .entry(session.clone())
                .or_default()
                .push(line.to_string());
        }
    }
    by_session
}

/// A conservative superset of the sessions the plan's input mutations can
/// touch: the session of every torn line and of every line inside a drop
/// span. (Overlapping drops make this a superset of the driver's exact
/// attribution — sound for the "unaffected must be identical" property.)
fn affected_superset(plan: &FaultPlan, stream: &str) -> BTreeSet<String> {
    let lines: Vec<&str> = stream.lines().collect();
    let mut affected = BTreeSet::new();
    let mut mark = |idx: usize| {
        if let Some(line) = lines.get(idx) {
            if let Ok(doc) = Json::parse(line) {
                if let Some(Json::Str(s)) = doc.get("session") {
                    affected.insert(s.clone());
                }
            }
        }
    };
    for (frame, fault) in plan.iter() {
        match fault {
            Fault::Torn { .. } => mark(frame - 1),
            Fault::Drop { frames } => {
                for k in 0..*frames {
                    mark(frame - 1 + k);
                }
            }
            _ => {}
        }
    }
    affected
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tm-serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

#[test]
fn generated_fault_plans_never_crash_and_spare_unaffected_sessions() {
    for seed in [11u64, 23, 47] {
        let sessions = battery(36, seed);
        let stream = interleaved_stream(&sessions);
        let total = stream.lines().count();
        let (ref_code, ref_out) = run_replay(ServeConfig::default(), &stream);
        assert!(
            ref_code == 0 || ref_code == 1,
            "seed {seed}: fault-free run exited {ref_code}"
        );
        let reference = session_lines(&ref_out, &[]);

        let plan = FaultPlan::generate(seed, total, 24, VERDICT_PRESERVING_KINDS);
        assert!(!plan.is_empty(), "seed {seed} generated an empty plan");
        let config = ServeConfig {
            fault_plan: plan.clone(),
            ..ServeConfig::default()
        };
        let (code, out) = run_replay(config, &stream);
        assert!(
            code == 0 || code == 1,
            "seed {seed}: injected faults must degrade, not crash (exit {code})"
        );

        let affected = affected_superset(&plan, &stream);
        let got = session_lines(&out, &[]);
        let mut spared = 0usize;
        for (id, _) in &sessions {
            if affected.contains(id) {
                continue;
            }
            spared += 1;
            assert_eq!(
                got.get(id),
                reference.get(id),
                "seed {seed}: unaffected session {id} diverged from the fault-free run"
            );
        }
        assert!(
            spared >= sessions.len() / 2,
            "seed {seed}: a 24-fault plan should leave most of {} sessions untouched \
             (spared {spared})",
            sessions.len()
        );
    }
}

#[test]
fn kill_and_resume_matches_the_uninterrupted_run_per_session() {
    for seed in [3u64, 8, 21] {
        let sessions = battery(32, 1000 + seed);
        let stream = interleaved_stream(&sessions);
        let n = stream.lines().count();
        let (ref_code, ref_out) = run_replay(ServeConfig::default(), &stream);
        let reference = session_lines(&ref_out, &["verdict", "closed"]);

        for crash_at in [n / 4, n / 2, 3 * n / 4] {
            let dir = temp_dir(&format!("resume-{seed}-{crash_at}"));
            let mut plan = FaultPlan::new();
            plan.schedule(crash_at.max(2), Fault::Crash);
            let (code1, out1) = run_replay(
                ServeConfig {
                    fault_plan: plan,
                    journal_dir: Some(dir.clone()),
                    ..ServeConfig::default()
                },
                &stream,
            );
            assert_eq!(
                code1, CRASH_EXIT_CODE,
                "seed {seed}: the guillotine at frame {crash_at} must fire"
            );
            let (code2, out2) = run_replay(
                ServeConfig {
                    journal_dir: Some(dir.clone()),
                    resume: true,
                    ..ServeConfig::default()
                },
                &stream,
            );
            assert_eq!(
                code2, ref_code,
                "seed {seed}: the resumed run's exit code must match the uninterrupted run"
            );
            let stitched = format!("{out1}{out2}");
            assert_eq!(
                session_lines(&stitched, &["verdict", "closed"]),
                reference,
                "seed {seed}: crash at {crash_at} + resume diverged from the \
                 uninterrupted run"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn a_torn_journal_tail_resumes_from_the_longest_valid_prefix() {
    let sessions = battery(8, 777);
    let stream = interleaved_stream(&sessions);
    let dir = temp_dir("torn-tail");
    let mut plan = FaultPlan::new();
    plan.schedule(stream.lines().count() / 2, Fault::Crash);
    let (code1, _) = run_replay(
        ServeConfig {
            fault_plan: plan,
            journal_dir: Some(dir.clone()),
            fsync_every: 1,
            ..ServeConfig::default()
        },
        &stream,
    );
    assert_eq!(code1, CRASH_EXIT_CODE);

    // Tear the journal mid-record, as a crash inside a write would.
    let path = tm_serve::journal::journal_path(&dir);
    let bytes = std::fs::read(&path).expect("journal exists");
    assert!(bytes.len() > 8, "journal too short to tear");
    std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("tear journal");
    let state = tm_serve::read_journal(&dir).expect("torn tail still reads");
    assert!(
        state.torn_bytes > 0,
        "the tear must surface as a torn tail, not an error"
    );

    // Resume never panics on a torn tail: the valid prefix recovers, the
    // replay re-feeds the rest, and the run completes normally.
    let (code2, out2) = run_replay(
        ServeConfig {
            journal_dir: Some(dir.clone()),
            resume: true,
            ..ServeConfig::default()
        },
        &stream,
    );
    assert!(
        code2 == 0 || code2 == 1,
        "resume from a torn journal must complete (exit {code2})"
    );
    assert_eq!(
        session_lines(&out2, &["closed"]).len(),
        sessions.len(),
        "every session still reaches its summary"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_sessions_are_reaped_with_a_flagged_summary() {
    let mut table = SessionTable::new(ServeConfig {
        idle_reap_turns: Some(4),
        ..ServeConfig::default()
    });
    table.open("worker", 0);
    table.open("idler", 0);
    let h = random_history(&GenConfig::default(), 1);
    let mut out = Vec::new();
    for e in h.events() {
        out.extend(table.feed("worker", e.clone(), None, 0));
        out.extend(table.pump_one());
    }
    for _ in 0..16 {
        out.extend(table.pump_one());
    }
    let reaped: Vec<&Routed> = out
        .iter()
        .filter(|r| {
            matches!(
                &r.frame,
                tm_serve::ServerFrame::Closed {
                    session,
                    reaped: true,
                    events: 0,
                    ..
                } if session == "idler"
            )
        })
        .collect();
    assert_eq!(
        reaped.len(),
        1,
        "the idle session must be reaped exactly once with reaped:true"
    );
    // The busy session outlived the idler's deadline (feeds kept it
    // active), then idled out itself once its stream went quiet.
    assert_eq!(table.session_count(), 0, "both sessions eventually reaped");
    let worker_summary = out.iter().find(|r| {
        matches!(
            &r.frame,
            tm_serve::ServerFrame::Closed { session, .. } if session == "worker"
        )
    });
    assert!(
        matches!(
            &worker_summary.expect("worker summary").frame,
            tm_serve::ServerFrame::Closed { events, reaped: true, .. } if *events == h.len()
        ),
        "the worker drained all its events before its own reap"
    );
}

#[test]
fn feeds_past_the_queue_watermark_bounce_with_a_retry_hint() {
    let mut table = SessionTable::new(ServeConfig {
        queue_watermark: Some(2),
        ..ServeConfig::default()
    });
    for i in 0..3 {
        table.open(&format!("s{i}"), 0);
    }
    let e = tm_model::Event::TryCommit(tm_model::TxId(1));
    assert!(table.feed("s0", e.clone(), None, 0).is_empty());
    assert!(table.feed("s1", e.clone(), None, 0).is_empty());
    // Two sessions queued: the governor sheds the third with a hint that
    // covers one full cycle of the current queue.
    let shed = table.feed("s2", e.clone(), None, 0);
    assert!(
        matches!(
            &shed[0].frame,
            tm_serve::ServerFrame::Busy {
                session,
                seq: Some(1),
                retry_after_turns: Some(3),
                ..
            } if session == "s2"
        ),
        "expected a shed busy with a retry hint, got {:?}",
        shed[0].frame
    );
    // After the backlog drains, the resend is accepted.
    table.pump_all();
    assert!(table.feed("s2", e, None, 0).is_empty());
}

#[test]
fn opens_are_shed_when_resident_memo_exceeds_the_watermark() {
    let mut table = SessionTable::new(ServeConfig {
        memo_watermark_bytes: Some(tm_serve::EST_ENTRY_BYTES),
        ..ServeConfig::default()
    });
    assert!(matches!(
        table.open("a", 0)[0].frame,
        tm_serve::ServerFrame::Opened { .. }
    ));
    let h = random_history(&GenConfig::default(), 5);
    for e in h.events() {
        table.feed("a", e.clone(), None, 0);
    }
    table.pump_all();
    assert!(table.memo_resident() > 0, "checking must populate the memo");
    let shed = table.open("b", 0);
    assert!(
        matches!(
            &shed[0].frame,
            tm_serve::ServerFrame::Busy {
                session,
                seq: None,
                retry_after_turns: Some(_),
                ..
            } if session == "b"
        ),
        "expected the open to shed under memo pressure, got {:?}",
        shed[0].frame
    );
    // Closing the resident session releases the pressure.
    table.close("a", 0);
    table.pump_all();
    assert!(matches!(
        table.open("b", 0).last().expect("frames").frame,
        tm_serve::ServerFrame::Opened { .. }
    ));
}

// ---------------------------------------------------------------------
// The client half: exactly-once delivery over a faulty link.
// ---------------------------------------------------------------------

/// One splitmix64 step (the same platform-independent mix the fault plane
/// uses; tm-serve carries no `rand`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An in-memory [`FrameLink`] wrapping a [`SessionTable`] directly, with
/// seeded connection failures and response losses. A reconnect bumps the
/// connection index, so frames routed to the old connection are lost
/// exactly as a real daemon loses them — the client must re-open to
/// re-bind before anything flows again.
struct ChaosLink {
    table: SessionTable,
    conn: usize,
    outbox: VecDeque<String>,
    rng: u64,
    send_fail_pct: u64,
    lose_pct: u64,
}

impl ChaosLink {
    fn new(config: ServeConfig, seed: u64, send_fail_pct: u64, lose_pct: u64) -> Self {
        ChaosLink {
            table: SessionTable::new(config),
            conn: 0,
            outbox: VecDeque::new(),
            rng: seed,
            send_fail_pct,
            lose_pct,
        }
    }

    fn roll(&mut self, pct: u64) -> bool {
        pct > 0 && splitmix64(&mut self.rng) % 100 < pct
    }

    fn deliver(&mut self, frames: Vec<Routed>) {
        for r in frames {
            if r.conn != self.conn {
                continue; // routed to a connection that no longer exists
            }
            if self.roll(self.lose_pct) {
                continue; // lost on the wire
            }
            self.outbox.push_back(r.frame.render());
        }
    }
}

impl FrameLink for ChaosLink {
    fn send(&mut self, line: &str) -> io::Result<()> {
        if self.roll(self.send_fail_pct) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected connection failure",
            ));
        }
        let frames = match parse_client_frame(line) {
            Ok(ClientFrame::Open { session }) => self.table.open(&session, self.conn),
            Ok(ClientFrame::Feed {
                session,
                event,
                seq,
            }) => self.table.feed(&session, event, seq, self.conn),
            Ok(ClientFrame::Close { session }) => self.table.close(&session, self.conn),
            Ok(ClientFrame::Shutdown) | Err(_) => Vec::new(),
        };
        // No scheduler turn here: the daemon only drains between reads,
        // so back-to-back sends can fill an inbox and earn real `busy`
        // pushback.
        self.deliver(frames);
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Option<String>> {
        if self.outbox.is_empty() {
            let turn = self.table.pump_one();
            self.deliver(turn);
        }
        Ok(self.outbox.pop_front())
    }

    fn reconnect(&mut self) -> io::Result<()> {
        self.conn += 1;
        self.outbox.clear();
        Ok(())
    }

    fn backoff(&mut self, turns: u64) {
        for _ in 0..turns {
            let turn = self.table.pump_one();
            self.deliver(turn);
        }
    }
}

#[test]
fn a_clean_link_needs_no_recovery_machinery() {
    let h = random_history(&GenConfig::default(), 9);
    assert!(h.len() >= 8, "need a non-trivial history");
    let mut link = ChaosLink::new(ServeConfig::default(), 1, 0, 0);
    let outcome = Client::new(Backoff::default())
        .run_session(&mut link, "clean", h.events())
        .expect("clean run");
    assert!(outcome.responses.iter().all(Option::is_some));
    assert!(outcome.summary.is_some());
    assert_eq!(outcome.stats.reconnects, 0);
    assert_eq!(outcome.stats.resends, 0);
}

#[test]
fn the_client_reaches_the_fault_free_outcome_over_a_chaotic_link() {
    let h = random_history(&GenConfig::default(), 9);
    // The fault-free reference outcome.
    let mut clean = ChaosLink::new(ServeConfig::default(), 1, 0, 0);
    let reference = Client::new(Backoff::default())
        .run_session(&mut clean, "s", h.events())
        .expect("reference run");

    // A tiny inbox forces busy pushback on top of the injected failures.
    let policy = Backoff {
        base_turns: 1,
        cap_turns: 8,
        max_attempts: 500,
    };
    let mut totals = tm_serve::client::LinkStats::default();
    for seed in [2u64, 5, 13] {
        let config = ServeConfig {
            inbox_capacity: 2,
            ..ServeConfig::default()
        };
        let mut chaotic = ChaosLink::new(config, seed, 12, 18);
        let outcome = Client::new(policy)
            .run_session(&mut chaotic, "s", h.events())
            .unwrap_or_else(|e| panic!("seed {seed}: client gave up: {e}"));

        // Exactly-once: every response that did arrive is byte-identical
        // to the fault-free run's response for the same seq.
        for (i, got) in outcome.responses.iter().enumerate() {
            if let Some(line) = got {
                assert_eq!(
                    Some(line),
                    reference.responses[i].as_ref(),
                    "seed {seed}: event {} diverged",
                    i + 1
                );
            }
        }
        if let Some(summary) = &outcome.summary {
            assert_eq!(
                Some(summary),
                reference.summary.as_ref(),
                "seed {seed}: the summary must match the fault-free run"
            );
        }
        totals.busy_bounces += outcome.stats.busy_bounces;
        totals.reconnects += outcome.stats.reconnects;
        totals.resends += outcome.stats.resends;
        totals.acks += outcome.stats.acks;
    }
    // The injected faults actually exercised every recovery path.
    assert!(totals.busy_bounces > 0, "no busy pushback was absorbed");
    assert!(totals.reconnects > 0, "no connection failure was recovered");
    assert!(totals.resends > 0, "no lost response triggered a resend");
    assert!(totals.acks > 0, "no duplicate feed was deduped with an ack");
}
