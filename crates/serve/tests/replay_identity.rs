//! The daemon's acceptance property: **multiplexing is verdict-identical
//! to standalone checking**. Every history fed as one of ≥ 64 interleaved
//! concurrent sessions through the replay path must yield byte-identical
//! verdict frames to a direct single-session monitor run (which drives the
//! same resumable `CheckSession` a standalone caller would) — including
//! under a constrained memo budget, where the governor is shrinking every
//! session's memo table as sessions come and go.

use proptest::prelude::*;
use tm_harness::randhist::{random_history, GenConfig};
use tm_model::builder::paper;
use tm_model::History;
use tm_opacity::incremental::{MonitorVerdict, OpacityMonitor};
use tm_serve::{render_client_frame, replay, ClientFrame, ServeConfig, ServerFrame};
use tm_trace::Json;

/// Builds a replay stream: all sessions open, then events interleave
/// round-robin one per session per round, then all sessions close.
fn interleaved_stream(sessions: &[(String, History)]) -> String {
    let mut lines = Vec::new();
    for (id, _) in sessions {
        lines.push(render_client_frame(&ClientFrame::Open {
            session: id.clone(),
        }));
    }
    let max_len = sessions.iter().map(|(_, h)| h.len()).max().unwrap_or(0);
    for round in 0..max_len {
        for (id, h) in sessions {
            if let Some(event) = h.events().get(round) {
                lines.push(render_client_frame(&ClientFrame::Feed {
                    session: id.clone(),
                    event: event.clone(),
                    seq: None,
                }));
            }
        }
    }
    for (id, _) in sessions {
        lines.push(render_client_frame(&ClientFrame::Close {
            session: id.clone(),
        }));
    }
    lines.join("\n")
}

/// The reference: one standalone monitor per history, its verdicts
/// rendered through the same frame schema the daemon speaks.
fn reference_verdict_lines(id: &str, h: &History) -> Vec<String> {
    let specs = tm_serve::specs();
    let mut monitor = OpacityMonitor::new(specs);
    let mut lines = Vec::new();
    for (i, e) in h.events().iter().enumerate() {
        match monitor.feed(e.clone()) {
            Ok(verdict) => {
                let (verdict, at) = match verdict {
                    MonitorVerdict::OpaqueChecked => ("opaque", None),
                    MonitorVerdict::OpaqueBySkip => ("opaque_skip", None),
                    MonitorVerdict::Violated { at } => ("violated", Some(at)),
                };
                lines.push(
                    ServerFrame::Verdict {
                        session: id.to_string(),
                        seq: i + 1,
                        verdict,
                        at,
                    }
                    .render(),
                );
            }
            Err(_) => break, // poisoned: no further verdict frames either way
        }
    }
    lines
}

/// Runs the replay and groups its verdict frames by session, preserving
/// per-session order and the exact output bytes.
fn replayed_verdict_lines(config: ServeConfig, stream: &str) -> (i32, Vec<(String, Vec<String>)>) {
    let mut out = Vec::new();
    let code = replay(config, stream, &mut out);
    let text = String::from_utf8(out).expect("daemon output is UTF-8");
    let mut by_session: Vec<(String, Vec<String>)> = Vec::new();
    for line in text.lines() {
        let doc = Json::parse(line).expect("daemon emits valid JSON");
        if doc.get("frame") != Some(&Json::Str("verdict".into())) {
            continue;
        }
        let Some(Json::Str(session)) = doc.get("session") else {
            panic!("verdict frame without session: {line}");
        };
        match by_session.iter_mut().find(|(id, _)| id == session) {
            Some((_, lines)) => lines.push(line.to_string()),
            None => by_session.push((session.clone(), vec![line.to_string()])),
        }
    }
    (code, by_session)
}

fn battery() -> Vec<(String, History)> {
    let mut sessions = Vec::new();
    // The paper's named histories (H2/H3 are not well-formed complete
    // feeds for the monitor in all cases, but H1/H4/H5 are the
    // conformance staples — H1 violates, H4/H5 hold).
    for (name, h) in [
        ("paper-h1", paper::h1()),
        ("paper-h4", paper::h4()),
        ("paper-h5", paper::h5()),
    ] {
        sessions.push((name.to_string(), h));
    }
    // Random well-formed histories across the three generator profiles
    // until the table holds 64+ concurrent sessions.
    let profiles = [
        GenConfig::default(),
        GenConfig {
            txs: 6,
            objs: 2,
            max_ops: 5,
            noise: 0.4,
            commit_pending: 0.3,
            abort: 0.2,
        },
        GenConfig {
            txs: 5,
            objs: 1,
            max_ops: 4,
            noise: 0.6,
            commit_pending: 0.2,
            abort: 0.4,
        },
    ];
    for seed in 0..64u64 {
        let config = profiles[(seed % 3) as usize];
        sessions.push((
            format!("rand-{seed:02}"),
            random_history(&config, 1000 + seed),
        ));
    }
    sessions
}

fn assert_identical(config: ServeConfig, label: &str) {
    let sessions = battery();
    assert!(sessions.len() >= 64, "battery too small");
    let stream = interleaved_stream(&sessions);
    let (code, by_session) = replayed_verdict_lines(config, &stream);
    assert_eq!(code, 0, "{label}: clean battery must exit 0");
    for (id, h) in &sessions {
        let expected = reference_verdict_lines(id, h);
        let got = by_session
            .iter()
            .find(|(s, _)| s == id)
            .map(|(_, lines)| lines.clone())
            .unwrap_or_default();
        assert_eq!(
            got, expected,
            "{label}: session {id} diverged from the standalone monitor"
        );
    }
}

#[test]
fn sixty_four_interleaved_sessions_match_standalone_monitors() {
    assert_identical(ServeConfig::default(), "unbudgeted");
}

#[test]
fn constrained_memo_budget_is_verdict_invisible() {
    // A deliberately starved budget: 64 sessions share ~128 entries'
    // worth of bytes, so the governor pins everyone at the floor and
    // retunes on every open/close.
    let config = ServeConfig {
        memo_budget_bytes: Some(128 * tm_serve::EST_ENTRY_BYTES),
        ..ServeConfig::default()
    };
    assert_identical(config, "starved-budget");
}

#[test]
fn tiny_node_budget_changes_scheduling_not_verdicts() {
    // One search node per turn: every session yields constantly, the
    // run queue churns — and nothing observable changes.
    let config = ServeConfig {
        node_budget: 1,
        ..ServeConfig::default()
    };
    assert_identical(config, "node-budget-1");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random small fleets: interleaved replay matches the standalone
    /// monitor for every member, budgeted or not.
    #[test]
    fn random_fleets_are_verdict_identical(
        base_seed in 0u64..5_000,
        fleet in 2usize..8,
        budget_sel in 0usize..2,
    ) {
        let budgeted = budget_sel == 1;
        let sessions: Vec<(String, History)> = (0..fleet)
            .map(|i| {
                (
                    format!("s{i}"),
                    random_history(&GenConfig::default(), base_seed * 31 + i as u64),
                )
            })
            .collect();
        let stream = interleaved_stream(&sessions);
        let config = ServeConfig {
            memo_budget_bytes: budgeted.then_some(64 * tm_serve::EST_ENTRY_BYTES),
            ..ServeConfig::default()
        };
        let (code, by_session) = replayed_verdict_lines(config, &stream);
        prop_assert_eq!(code, 0);
        for (id, h) in &sessions {
            let expected = reference_verdict_lines(id, h);
            let got = by_session
                .iter()
                .find(|(s, _)| s == id)
                .map(|(_, lines)| lines.clone())
                .unwrap_or_default();
            prop_assert_eq!(&got, &expected, "session {} diverged", id);
        }
    }
}
