//! Transport error-path hardening: injected read errors, garbage bytes,
//! torn frames, and abrupt disconnects must degrade into positioned
//! `error` frames or a clean drain — never a panic, never an exit code
//! outside {0, 1}.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;

use tm_harness::randhist::{random_history, GenConfig};
use tm_model::History;
use tm_serve::{
    render_client_frame, run, run_reader, Backoff, Client, ClientFrame, ServeConfig, SocketLink,
    Transport,
};
use tm_trace::Json;

/// A reader that follows a script of data chunks and injected errors,
/// then reports EOF. Wrapped in a `BufReader` it feeds the daemon's
/// stdin-style loop exactly the failure sequence under test.
struct ScriptedReader {
    steps: VecDeque<Result<Vec<u8>, io::ErrorKind>>,
}

impl ScriptedReader {
    fn new(steps: Vec<Result<Vec<u8>, io::ErrorKind>>) -> BufReader<ScriptedReader> {
        BufReader::new(ScriptedReader {
            steps: steps.into(),
        })
    }
}

impl Read for ScriptedReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.steps.pop_front() {
            Some(Ok(bytes)) => {
                assert!(bytes.len() <= buf.len(), "scripted chunk too large");
                buf[..bytes.len()].copy_from_slice(&bytes);
                Ok(bytes.len())
            }
            Some(Err(kind)) => Err(io::Error::new(kind, "injected transport error")),
            None => Ok(0),
        }
    }
}

fn open_feed_close(id: &str, h: &History) -> String {
    let mut lines = vec![render_client_frame(&ClientFrame::Open {
        session: id.to_string(),
    })];
    for e in h.events() {
        lines.push(render_client_frame(&ClientFrame::Feed {
            session: id.to_string(),
            event: e.clone(),
            seq: None,
        }));
    }
    lines.push(render_client_frame(&ClientFrame::Close {
        session: id.to_string(),
    }));
    lines.join("\n") + "\n"
}

fn frames_of(output: &[u8]) -> Vec<Json> {
    String::from_utf8(output.to_vec())
        .expect("daemon output is UTF-8")
        .lines()
        .map(|l| Json::parse(l).expect("daemon emits valid JSON"))
        .collect()
}

fn kind(doc: &Json) -> String {
    match doc.get("frame") {
        Some(Json::Str(s)) => s.clone(),
        other => panic!("frame field missing or non-string: {other:?}"),
    }
}

fn message(doc: &Json) -> String {
    match doc.get("message") {
        Some(Json::Str(s)) => s.clone(),
        _ => String::new(),
    }
}

#[test]
fn transient_read_errors_are_retried_and_the_run_completes() {
    let h = random_history(&GenConfig::default(), 4);
    let text = open_feed_close("s", &h);
    let split = text.len() / 2;
    // Interrupted is swallowed by the buffered reader's own retry loop;
    // WouldBlock surfaces to the daemon, which must retry it bounded-ly.
    let input = ScriptedReader::new(vec![
        Ok(text.as_bytes()[..split].to_vec()),
        Err(io::ErrorKind::WouldBlock),
        Err(io::ErrorKind::Interrupted),
        Err(io::ErrorKind::WouldBlock),
        Ok(text.as_bytes()[split..].to_vec()),
    ]);
    let mut out = Vec::new();
    let code = run_reader(ServeConfig::default(), input, &mut out);
    assert_eq!(code, 0, "transient errors must not change the outcome");
    let frames = frames_of(&out);
    assert_eq!(
        frames.iter().filter(|f| kind(f) == "verdict").count(),
        h.len(),
        "every event still gets its verdict"
    );
    assert_eq!(frames.iter().filter(|f| kind(f) == "closed").count(), 1);
}

#[test]
fn a_hard_read_error_mid_stream_drains_accepted_work() {
    let h = random_history(&GenConfig::default(), 4);
    let text = open_feed_close("s", &h);
    // Cut the stream with a broken pipe after the open and two feeds.
    let keep: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
    let input = ScriptedReader::new(vec![
        Ok(keep.into_bytes()),
        Err(io::ErrorKind::BrokenPipe),
        Ok(text.into_bytes()), // never reached: the stream is gone
    ]);
    let mut out = Vec::new();
    let code = run_reader(ServeConfig::default(), input, &mut out);
    assert!(
        code == 0 || code == 1,
        "a broken input is a degraded run, not a failure (exit {code})"
    );
    let frames = frames_of(&out);
    assert!(
        frames
            .iter()
            .any(|f| kind(f) == "error" && message(f).contains("input stream error")),
        "the hard error must be reported on the response stream"
    );
    let closed = frames
        .iter()
        .find(|f| kind(f) == "closed")
        .expect("accepted work still drains to a summary");
    assert_eq!(
        closed.get("events"),
        Some(&Json::Int(2)),
        "both accepted feeds were checked before the summary"
    );
}

#[test]
fn an_unbounded_transient_stream_gives_up_and_drains() {
    let h = random_history(&GenConfig::default(), 4);
    let text = open_feed_close("s", &h);
    // The whole session lands, then the source would-block forever; a
    // frame queued behind the stall must never be processed.
    let mut steps: Vec<Result<Vec<u8>, io::ErrorKind>> = vec![Ok(text.into_bytes())];
    steps.extend((0..80).map(|_| Err(io::ErrorKind::WouldBlock)));
    steps.push(Ok(render_client_frame(&ClientFrame::Open {
        session: "late".to_string(),
    })
    .into_bytes()));
    let mut out = Vec::new();
    let code = run_reader(ServeConfig::default(), ScriptedReader::new(steps), &mut out);
    assert_eq!(code, 0);
    let frames = frames_of(&out);
    assert_eq!(frames.iter().filter(|f| kind(f) == "closed").count(), 1);
    assert!(
        !frames
            .iter()
            .any(|f| f.get("session") == Some(&Json::Str("late".into()))),
        "frames behind an exhausted transient stall must not be processed"
    );
}

#[test]
fn garbage_bytes_mid_frame_become_a_positioned_error() {
    let h = random_history(&GenConfig::default(), 4);
    let mut lines: Vec<String> = open_feed_close("s", &h).lines().map(String::from).collect();
    lines.insert(2, "}{ not a frame \u{1F525}".to_string());
    let text = lines.join("\n") + "\n";
    let input = ScriptedReader::new(vec![Ok(text.into_bytes())]);
    let mut out = Vec::new();
    let code = run_reader(ServeConfig::default(), input, &mut out);
    assert_eq!(code, 0, "garbage is reported, not fatal");
    let frames = frames_of(&out);
    let errors: Vec<String> = frames
        .iter()
        .filter(|f| kind(f) == "error")
        .map(message)
        .collect();
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert!(
        errors[0].starts_with("input line 3:"),
        "the error must carry the exact input position: {}",
        errors[0]
    );
    assert_eq!(
        frames.iter().filter(|f| kind(f) == "verdict").count(),
        h.len(),
        "the session around the garbage is untouched"
    );
}

#[test]
fn non_utf8_bytes_end_the_stream_but_drain_accepted_work() {
    let h = random_history(&GenConfig::default(), 4);
    let text = open_feed_close("s", &h);
    let keep: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
    let mut bytes = keep.into_bytes();
    bytes.extend_from_slice(&[0xFF, 0xFE, 0x80, b'\n']);
    let input = ScriptedReader::new(vec![Ok(bytes)]);
    let mut out = Vec::new();
    let code = run_reader(ServeConfig::default(), input, &mut out);
    assert!(code == 0 || code == 1);
    let frames = frames_of(&out);
    assert!(
        frames
            .iter()
            .any(|f| kind(f) == "error" && message(f).contains("input stream error")),
        "invalid UTF-8 is a hard stream error"
    );
    assert_eq!(
        frames.iter().filter(|f| kind(f) == "closed").count(),
        1,
        "the accepted feed still drains to a summary"
    );
}

#[test]
fn eof_inside_a_partial_line_is_parsed_or_reported_in_place() {
    let h = random_history(&GenConfig::default(), 4);
    let text = open_feed_close("s", &h);
    // Keep the open and one feed, then tear the second feed mid-frame and
    // end the stream without a newline.
    let lines: Vec<&str> = text.lines().collect();
    let torn = &lines[2][..lines[2].len() / 2];
    let stream = format!("{}\n{}\n{}", lines[0], lines[1], torn);
    let input = ScriptedReader::new(vec![Ok(stream.into_bytes())]);
    let mut out = Vec::new();
    let code = run_reader(ServeConfig::default(), input, &mut out);
    assert_eq!(code, 0);
    let frames = frames_of(&out);
    let errors: Vec<String> = frames
        .iter()
        .filter(|f| kind(f) == "error")
        .map(message)
        .collect();
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert!(
        errors[0].starts_with("input line 3:"),
        "the torn tail is positioned like any bad frame: {}",
        errors[0]
    );
    assert_eq!(
        frames.iter().filter(|f| kind(f) == "closed").count(),
        1,
        "the session still drains at EOF"
    );
}

#[test]
fn socket_sessions_survive_garbage_neighbors_and_reconnect_with_seq_continuity() {
    let dir = std::env::temp_dir().join(format!("tm-serve-transport-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("serve.sock");
    let server = {
        let path = path.clone();
        std::thread::spawn(move || {
            let mut banner = Vec::new();
            run(Transport::Socket(path), ServeConfig::default(), &mut banner)
        })
    };
    let connect = || {
        for _ in 0..200 {
            if let Ok(c) = UnixStream::connect(&path) {
                return c;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("daemon socket never came up");
    };

    // A misbehaving neighbor: garbage, then a torn frame cut off by an
    // abrupt disconnect. It gets a positioned error; the daemon serves on.
    {
        let conn = connect();
        let mut writer = conn.try_clone().expect("clone socket");
        let mut reader = BufReader::new(conn);
        writeln!(writer, "not a frame at all").expect("write garbage");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read error frame");
        let doc = Json::parse(line.trim_end()).expect("valid JSON");
        assert_eq!(kind(&doc), "error");
        assert!(message(&doc).starts_with("input line 1:"), "{line}");
        write!(writer, "{{\"frame\":\"fe").expect("write torn frame");
        // Drop both halves mid-frame: the daemon must treat the tail as a
        // torn frame on a gone connection and keep running.
    }

    // A session that survives a client-side crash: feed part of a history
    // on one connection, vanish, reconnect, re-open to re-bind, and finish
    // with continuous seq numbering.
    let h = random_history(&GenConfig::default(), 7);
    assert!(h.len() >= 4, "need a splittable history");
    let split = h.len() / 2;
    let feed_line = |i: usize| {
        render_client_frame(&ClientFrame::Feed {
            session: "phoenix".to_string(),
            event: h.events()[i].clone(),
            seq: Some(i + 1),
        })
    };
    let verdict_seqs = {
        let conn = connect();
        let mut writer = conn.try_clone().expect("clone socket");
        let mut reader = BufReader::new(conn);
        writeln!(
            writer,
            "{}",
            render_client_frame(&ClientFrame::Open {
                session: "phoenix".to_string()
            })
        )
        .expect("open");
        for i in 0..split {
            writeln!(writer, "{}", feed_line(i)).expect("feed");
        }
        let mut seqs = Vec::new();
        while seqs.len() < split {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).expect("read") > 0);
            let doc = Json::parse(line.trim_end()).expect("valid JSON");
            if kind(&doc) == "verdict" {
                if let Some(Json::Int(s)) = doc.get("seq") {
                    seqs.push(*s);
                }
            }
        }
        seqs
        // Connection dropped here, session left open with work done.
    };
    assert_eq!(verdict_seqs, (1..=split as i64).collect::<Vec<_>>());

    let conn = connect();
    let mut writer = conn.try_clone().expect("clone socket");
    let mut reader = BufReader::new(conn);
    writeln!(
        writer,
        "{}",
        render_client_frame(&ClientFrame::Open {
            session: "phoenix".to_string()
        })
    )
    .expect("re-open");
    for i in split..h.len() {
        writeln!(writer, "{}", feed_line(i)).expect("feed");
    }
    writeln!(
        writer,
        "{}",
        render_client_frame(&ClientFrame::Close {
            session: "phoenix".to_string()
        })
    )
    .expect("close");
    let mut seqs = Vec::new();
    let mut summary = None;
    while summary.is_none() {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read") > 0,
            "daemon closed before the summary"
        );
        let doc = Json::parse(line.trim_end()).expect("valid JSON");
        match kind(&doc).as_str() {
            "verdict" => {
                if let Some(Json::Int(s)) = doc.get("seq") {
                    seqs.push(*s);
                }
            }
            "closed" => summary = Some(doc),
            _ => {}
        }
    }
    assert_eq!(
        seqs,
        (split as i64 + 1..=h.len() as i64).collect::<Vec<_>>(),
        "seq numbering must continue across the reconnect"
    );
    assert_eq!(
        summary.expect("summary").get("events"),
        Some(&Json::Int(h.len() as i64)),
        "the summary accounts for both connections' feeds"
    );

    // A full client-library run against the same live daemon.
    let mut link = SocketLink::new(path.clone());
    let outcome = Client::new(Backoff::default())
        .run_session(
            &mut link,
            "library",
            random_history(&GenConfig::default(), 8).events(),
        )
        .expect("client session over a live socket");
    assert!(outcome.summary.is_some());
    assert!(outcome.responses.iter().all(Option::is_some));

    let conn = connect();
    let mut writer = conn.try_clone().expect("clone socket");
    writeln!(writer, "{}", render_client_frame(&ClientFrame::Shutdown)).expect("shutdown");
    let code = server.join().expect("daemon thread");
    assert_eq!(code, 0, "a clean shutdown after all that chaos");
    let _ = std::fs::remove_dir_all(&dir);
}
