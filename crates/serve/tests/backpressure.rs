//! Backpressure and memory-governance coverage: a session exceeding its
//! inbox bound receives `busy` and *recovers* (resending after the daemon
//! catches up loses nothing), and shrinking the global memo budget
//! mid-stream — by crowding the table with new sessions — never changes a
//! session's verdicts, frame for frame.

use tm_harness::randhist::{random_history, GenConfig};
use tm_model::Event;
use tm_obs::ObsHandle;
use tm_serve::{ServeConfig, ServerFrame, SessionTable, MIN_MEMO_CAP};

fn verdict_lines(frames: &[tm_serve::Routed]) -> Vec<String> {
    frames
        .iter()
        .filter(|r| matches!(r.frame, ServerFrame::Verdict { .. }))
        .map(|r| r.frame.render())
        .collect()
}

/// Feeds a whole history through a table, pumping only when pushed back,
/// resending every `busy`-bounced event until accepted. Returns all
/// verdict frames in emission order.
fn feed_with_resends(table: &mut SessionTable, id: &str, events: &[Event]) -> (Vec<String>, usize) {
    let mut verdicts = Vec::new();
    let mut busy_seen = 0usize;
    for e in events {
        loop {
            let frames = table.feed(id, e.clone(), None, 0);
            let accepted = !frames
                .iter()
                .any(|r| matches!(r.frame, ServerFrame::Busy { .. }));
            verdicts.extend(verdict_lines(&frames));
            if accepted {
                break;
            }
            // Bounced: catch up one scheduler turn, then resend.
            busy_seen += 1;
            let turn = table.pump_one();
            verdicts.extend(verdict_lines(&turn));
        }
    }
    let rest = table.pump_all();
    verdicts.extend(verdict_lines(&rest));
    (verdicts, busy_seen)
}

#[test]
fn full_inbox_bounces_busy_and_the_session_recovers() {
    let h = random_history(&GenConfig::default(), 42);
    assert!(h.len() > 6, "need a non-trivial history");

    // Reference: a roomy table that never pushes back.
    let mut roomy = SessionTable::new(ServeConfig::default());
    roomy.open("s", 0);
    let (expected, roomy_busy) = feed_with_resends(&mut roomy, "s", h.events());
    assert_eq!(roomy_busy, 0, "roomy table must not push back");

    // A 3-slot inbox with no pumping between feeds: busy frames are
    // guaranteed, and resending after one turn recovers every event.
    let mut tight = SessionTable::new(ServeConfig {
        inbox_capacity: 3,
        ..ServeConfig::default()
    });
    tight.open("s", 0);
    let (got, tight_busy) = feed_with_resends(&mut tight, "s", h.events());
    assert!(tight_busy > 0, "3-slot inbox must bounce at least once");
    assert_eq!(
        got, expected,
        "recovery after busy lost or reordered events"
    );
}

#[test]
fn governor_shrinks_capacity_as_sessions_crowd_in_and_restores_on_close() {
    // 1 MiB budget: alone, a session gets the full entry allowance;
    // with 63 peers it gets a 64th of it; when they close it grows back.
    let budget = 1u64 << 20;
    let mut table = SessionTable::new(ServeConfig {
        memo_budget_bytes: Some(budget),
        ..ServeConfig::default()
    });
    table.open("s0", 0);
    let alone = table.memo_capacity_per_session().unwrap();
    for i in 1..64 {
        table.open(&format!("s{i}"), 0);
    }
    let crowded = table.memo_capacity_per_session().unwrap();
    assert!(
        crowded < alone,
        "capacity must shrink under crowding ({alone} -> {crowded})"
    );
    assert!(crowded >= MIN_MEMO_CAP, "floor must hold");
    assert_eq!(crowded, alone / 64);
    for i in 1..64 {
        table.close(&format!("s{i}"), 0);
    }
    table.pump_all();
    assert_eq!(table.session_count(), 1);
    assert_eq!(
        table.memo_capacity_per_session().unwrap(),
        alone,
        "capacity must restore as sessions close"
    );
}

#[test]
fn mid_stream_budget_shrink_never_changes_verdicts() {
    // The satellite's property, frame for frame: session `probe` checks
    // the same history (a) alone on an unbudgeted table, and (b) while 40
    // sessions pile in mid-stream on a starved table — the governor
    // shrinking `probe`'s memo capacity between its feeds. Verdicts must
    // be byte-identical.
    for seed in [7u64, 99, 1234] {
        let h = random_history(
            &GenConfig {
                txs: 6,
                objs: 2,
                max_ops: 5,
                noise: 0.4,
                commit_pending: 0.3,
                abort: 0.2,
            },
            seed,
        );
        let mut plain = SessionTable::new(ServeConfig::default());
        plain.open("probe", 0);
        let (expected, _) = feed_with_resends(&mut plain, "probe", h.events());

        let mut starved = SessionTable::new(ServeConfig {
            memo_budget_bytes: Some(40 * 256),
            ..ServeConfig::default()
        });
        starved.open("probe", 0);
        let mut got = Vec::new();
        for (i, e) in h.events().iter().enumerate() {
            // Crowd the table while the probe session is mid-stream.
            if i == h.len() / 2 {
                for j in 0..40 {
                    starved.open(&format!("crowd{j}"), 0);
                }
            }
            got.extend(verdict_lines(&starved.feed("probe", e.clone(), None, 0)));
            got.extend(verdict_lines(&starved.pump_one()));
        }
        got.extend(verdict_lines(&starved.pump_all()));
        assert_eq!(got, expected, "seed {seed}: budget shrink changed verdicts");
    }
}

#[test]
fn open_and_feed_errors_are_frames_not_panics() {
    let mut table = SessionTable::new(ServeConfig {
        max_sessions: 2,
        ..ServeConfig::default()
    });
    assert!(matches!(
        table.open("a", 0)[0].frame,
        ServerFrame::Opened { .. }
    ));
    // Duplicate open.
    let dup = table.open("a", 0);
    assert!(
        matches!(&dup[0].frame, ServerFrame::Error { message, .. } if message.contains("already open"))
    );
    // Table full.
    table.open("b", 0);
    let full = table.open("c", 0);
    assert!(
        matches!(&full[0].frame, ServerFrame::Error { message, .. } if message.contains("table full"))
    );
    // Feed/close on unknown sessions.
    let nofeed = table.feed("ghost", Event::TryCommit(tm_model::TxId(1)), None, 0);
    assert!(
        matches!(&nofeed[0].frame, ServerFrame::Error { message, .. } if message.contains("no open session"))
    );
    let noclose = table.close("ghost", 0);
    assert!(matches!(&noclose[0].frame, ServerFrame::Error { .. }));
    // Feeding a closing session is refused.
    table.close("a", 0);
    // "a" had an empty inbox, so it is gone entirely now.
    let closed = table.feed("a", Event::TryCommit(tm_model::TxId(1)), None, 0);
    assert!(matches!(&closed[0].frame, ServerFrame::Error { .. }));
    assert_eq!(table.session_count(), 1);
}

#[test]
fn obs_counters_track_busy_and_sessions() {
    let obs = ObsHandle::install();
    let mut table = SessionTable::new(ServeConfig {
        inbox_capacity: 1,
        obs,
        ..ServeConfig::default()
    });
    table.open("s", 0);
    let e = Event::TryCommit(tm_model::TxId(1));
    table.feed("s", e.clone(), None, 0);
    table.feed("s", e.clone(), None, 0); // bounced: inbox holds 1
    let snap = obs.snapshot().expect("enabled");
    assert_eq!(snap.counter("serve.busy"), Some(1));
    assert_eq!(snap.counter("serve.sessions_opened"), Some(1));
    assert_eq!(snap.counter("serve.frames_fed"), Some(1));
}
