//! Daemon lifecycle coverage: graceful drain on EOF, the `shutdown` frame,
//! exit codes (poisoned sessions → 1), parse-error frames with line
//! numbers, and a live Unix-socket round trip.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;

use tm_model::builder::paper;
use tm_serve::{render_client_frame, replay, run, ClientFrame, ServeConfig, Transport};
use tm_trace::Json;

fn frames_of(output: &[u8]) -> Vec<Json> {
    String::from_utf8(output.to_vec())
        .expect("daemon output is UTF-8")
        .lines()
        .map(|l| Json::parse(l).expect("daemon emits valid JSON"))
        .collect()
}

fn kind(doc: &Json) -> String {
    match doc.get("frame") {
        Some(Json::Str(s)) => s.clone(),
        other => panic!("frame field missing or non-string: {other:?}"),
    }
}

fn stream(frames: &[ClientFrame]) -> String {
    frames
        .iter()
        .map(render_client_frame)
        .collect::<Vec<_>>()
        .join("\n")
}

fn open_feed_all(id: &str, h: &tm_model::History) -> Vec<ClientFrame> {
    let mut frames = vec![ClientFrame::Open {
        session: id.to_string(),
    }];
    for e in h.events() {
        frames.push(ClientFrame::Feed {
            session: id.to_string(),
            event: e.clone(),
            seq: None,
        });
    }
    frames
}

#[test]
fn eof_drains_and_emits_closed_summaries_in_id_order() {
    // Two sessions left open at EOF: the drain must still check every
    // queued event and emit both `closed` summaries, sorted by id.
    let mut input = open_feed_all("zeta", &paper::h4());
    input.extend(open_feed_all("alpha", &paper::h5()));
    let mut out = Vec::new();
    let code = replay(ServeConfig::default(), &stream(&input), &mut out);
    assert_eq!(code, 0);
    let frames = frames_of(&out);
    let closed: Vec<&Json> = frames.iter().filter(|f| kind(f) == "closed").collect();
    assert_eq!(closed.len(), 2, "every open session gets a summary at EOF");
    assert_eq!(closed[0].get("session"), Some(&Json::Str("alpha".into())));
    assert_eq!(closed[1].get("session"), Some(&Json::Str("zeta".into())));
    // The summaries account for every fed event as checked work.
    assert_eq!(
        closed[1].get("events"),
        Some(&Json::Int(paper::h4().len() as i64))
    );
    let verdicts = frames.iter().filter(|f| kind(f) == "verdict").count();
    assert_eq!(verdicts, paper::h4().len() + paper::h5().len());
}

#[test]
fn shutdown_frame_stops_ingest_but_finishes_queued_work() {
    // shutdown arrives while feeds are still queued behind it in the file;
    // queued work before the frame completes, frames after it are ignored.
    let mut input = open_feed_all("s", &paper::h4());
    input.push(ClientFrame::Shutdown);
    input.push(ClientFrame::Open {
        session: "late".to_string(),
    });
    let mut out = Vec::new();
    let code = replay(ServeConfig::default(), &stream(&input), &mut out);
    assert_eq!(code, 0);
    let frames = frames_of(&out);
    assert!(
        !frames
            .iter()
            .any(|f| f.get("session") == Some(&Json::Str("late".into()))),
        "frames after shutdown must not be processed"
    );
    let verdicts = frames.iter().filter(|f| kind(f) == "verdict").count();
    assert_eq!(verdicts, paper::h4().len(), "queued feeds still complete");
    assert_eq!(frames.iter().filter(|f| kind(f) == "closed").count(), 1);
}

#[test]
fn poisoned_session_sets_exit_code_one_and_summary_flag() {
    // A malformed stream for the monitor: a `ret` with no matching `inv`
    // is a hard WellFormedness error — the session poisons, later feeds
    // answer with error frames, and the daemon exits 1.
    let bad = tm_model::Event::Ret {
        tx: tm_model::TxId(1),
        obj: tm_model::ObjId::register(0),
        op: tm_model::OpName::Read,
        val: tm_model::Value::Int(0),
    };
    let input = vec![
        ClientFrame::Open {
            session: "bad".to_string(),
        },
        ClientFrame::Feed {
            session: "bad".to_string(),
            event: bad.clone(),
            seq: None,
        },
        ClientFrame::Feed {
            session: "bad".to_string(),
            event: bad,
            seq: None,
        },
        ClientFrame::Close {
            session: "bad".to_string(),
        },
    ];
    let mut out = Vec::new();
    let code = replay(ServeConfig::default(), &stream(&input), &mut out);
    assert_eq!(code, 1, "a poisoned session must surface in the exit code");
    let frames = frames_of(&out);
    let errors = frames.iter().filter(|f| kind(f) == "error").count();
    assert_eq!(errors, 2, "the poisoning event and the poisoned follow-up");
    let closed = frames
        .iter()
        .find(|f| kind(f) == "closed")
        .expect("summary still emitted");
    assert_eq!(closed.get("poisoned"), Some(&Json::Bool(true)));
}

#[test]
fn garbage_lines_become_error_frames_with_line_numbers() {
    let input = format!(
        "{}\nnot json at all\n{{\"frame\":\"warble\"}}\n\n{}",
        render_client_frame(&ClientFrame::Open {
            session: "s".to_string()
        }),
        render_client_frame(&ClientFrame::Close {
            session: "s".to_string()
        }),
    );
    let mut out = Vec::new();
    let code = replay(ServeConfig::default(), &input, &mut out);
    assert_eq!(code, 0, "protocol errors are reported, not fatal");
    let frames = frames_of(&out);
    let errors: Vec<String> = frames
        .iter()
        .filter(|f| kind(f) == "error")
        .map(|f| match f.get("message") {
            Some(Json::Str(s)) => s.clone(),
            _ => panic!("error frame without message"),
        })
        .collect();
    assert_eq!(errors.len(), 2);
    assert!(errors[0].starts_with("input line 2:"), "got: {}", errors[0]);
    assert!(errors[1].starts_with("input line 3:"), "got: {}", errors[1]);
    // The blank line 4 is skipped, and the valid close still lands.
    assert!(frames.iter().any(|f| kind(f) == "closed"));
}

#[test]
fn missing_replay_file_is_a_usage_error() {
    let mut out = Vec::new();
    let code = run(
        Transport::Replay("/nonexistent/frames.jsonl".into()),
        ServeConfig::default(),
        &mut out,
    );
    assert_eq!(code, 2);
    assert!(out.is_empty(), "no frames on a usage failure");
}

#[test]
fn socket_round_trip_serves_a_session_and_shuts_down() {
    let dir = std::env::temp_dir().join(format!("tm-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("serve.sock");
    let server = {
        let path = path.clone();
        std::thread::spawn(move || {
            let mut banner = Vec::new();
            run(Transport::Socket(path), ServeConfig::default(), &mut banner)
        })
    };
    // The daemon removes stale files then binds; poll until it is up.
    let mut conn = None;
    for _ in 0..200 {
        match UnixStream::connect(&path) {
            Ok(c) => {
                conn = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    let conn = conn.expect("daemon socket never came up");
    let mut writer = conn.try_clone().expect("clone socket");
    let mut reader = BufReader::new(conn);

    let h = paper::h1(); // violates: exercises the full verdict vocabulary
    let mut frames = open_feed_all("live", &h);
    frames.push(ClientFrame::Close {
        session: "live".to_string(),
    });
    for f in &frames {
        writeln!(writer, "{}", render_client_frame(f)).expect("write frame");
    }
    let mut got = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read frame") == 0 {
            panic!("socket closed before the session summary: {got:?}");
        }
        let doc = Json::parse(line.trim_end()).expect("server emits valid JSON");
        let k = kind(&doc);
        got.push(doc);
        if k == "closed" {
            break;
        }
    }
    assert_eq!(kind(&got[0]), "opened");
    let verdicts = got.iter().filter(|f| kind(f) == "verdict").count();
    assert_eq!(verdicts, h.len(), "one verdict per fed event");
    assert!(got
        .iter()
        .any(|f| f.get("verdict") == Some(&Json::Str("violated".into()))));

    writeln!(writer, "{}", render_client_frame(&ClientFrame::Shutdown)).expect("write shutdown");
    let code = server.join().expect("daemon thread");
    assert_eq!(code, 0);
    assert!(!path.exists(), "socket file removed on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
