//! # tm-bench — benchmark harness
//!
//! Criterion benchmarks regenerating the paper's quantitative content:
//!
//! * `benches/lower_bound.rs` — E8/E9: the Theorem-3 scenarios (wall-clock
//!   companion to the exact step counts printed by
//!   `cargo run --release --example lower_bound`);
//! * `benches/checker.rs` — E13: definitional checker, graph construction,
//!   online monitor, and the memoization ablation;
//! * `benches/throughput.rs` — E14: committed-transaction throughput and
//!   abort rates across the TM design space, plus the contention-manager
//!   ablation;
//! * `benches/model_ops.rs` — model-layer primitives (projection, legality,
//!   well-formedness).
//!
//! The library itself only hosts shared history generators for the benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use tm_model::{History, HistoryBuilder};

/// Builds a legal sequential chain history: `n` transactions, each reading
/// the previous value of `x` and writing the next (a checker-friendly
/// baseline whose serialization is unique).
pub fn chain_history(n: u32) -> History {
    let mut b = HistoryBuilder::new();
    for t in 1..=n {
        b = b
            .read(t, "x", (t - 1) as i64)
            .write(t, "x", t as i64)
            .commit_ok(t);
    }
    b.build()
}

/// Builds a history of `n` concurrent committed blind writers to one
/// register (the stress case for the serialization search: n! orders, tiny
/// state space — memoization's best case).
pub fn blind_writers_history(n: u32) -> History {
    let mut b = HistoryBuilder::new();
    for t in 1..=n {
        b = b.write(t, "x", t as i64);
    }
    for t in 1..=n {
        b = b.commit_ok(t);
    }
    b.build()
}

/// Builds a mixed reader/writer history with `n` committed transactions on
/// two registers that exercises backtracking in the checker.
pub fn mixed_history(n: u32) -> History {
    let mut b = HistoryBuilder::new();
    let mut last_x = 0i64;
    for t in 1..=n {
        if t % 2 == 1 {
            b = b
                .write(t, "x", t as i64)
                .write(t, "y", t as i64)
                .commit_ok(t);
            last_x = t as i64;
        } else {
            b = b.read(t, "x", last_x).read(t, "y", last_x).commit_ok(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::SpecRegistry;
    use tm_opacity::opacity::is_opaque;

    #[test]
    fn generated_bench_histories_are_opaque() {
        let specs = SpecRegistry::registers();
        for h in [chain_history(6), blind_writers_history(6), mixed_history(8)] {
            assert!(tm_model::is_well_formed(&h));
            assert!(is_opaque(&h, &specs).unwrap().opaque, "{h}");
        }
    }
}
