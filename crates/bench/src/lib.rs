//! # tm-bench — benchmark harness
//!
//! Criterion benchmarks regenerating the paper's quantitative content:
//!
//! * `benches/lower_bound.rs` — E8/E9: the Theorem-3 scenarios (wall-clock
//!   companion to the exact step counts printed by
//!   `cargo run --release --example lower_bound`);
//! * `benches/checker.rs` — E13: definitional checker, graph construction,
//!   online monitor, and the memoization ablation;
//! * `benches/throughput.rs` — E14: committed-transaction throughput and
//!   abort rates across the TM design space, plus the contention-manager
//!   ablation;
//! * `benches/model_ops.rs` — model-layer primitives (projection, legality,
//!   well-formedness);
//! * `benches/monitor.rs` — the resumable online monitor against batch
//!   re-check-from-scratch on growing histories (the `report` bin writes
//!   the machine-readable companion `BENCH_monitor.json`);
//! * `benches/clocks.rs` — commit-throughput scaling of the pluggable
//!   version-clock schemes (`single`/`sharded:N`/`deferred`) on the
//!   commit-storm workload (companion artifact: `BENCH_clocks.json`).
//!
//! The library itself only hosts shared history generators for the benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use tm_model::{History, HistoryBuilder};

/// Builds a legal sequential chain history: `n` transactions, each reading
/// the previous value of `x` and writing the next (a checker-friendly
/// baseline whose serialization is unique).
pub fn chain_history(n: u32) -> History {
    let mut b = HistoryBuilder::new();
    for t in 1..=n {
        b = b
            .read(t, "x", (t - 1) as i64)
            .write(t, "x", t as i64)
            .commit_ok(t);
    }
    b.build()
}

/// Builds a history of `n` concurrent committed blind writers to one
/// register (the stress case for the serialization search: n! orders, tiny
/// state space — memoization's best case).
pub fn blind_writers_history(n: u32) -> History {
    let mut b = HistoryBuilder::new();
    for t in 1..=n {
        b = b.write(t, "x", t as i64);
    }
    for t in 1..=n {
        b = b.commit_ok(t);
    }
    b.build()
}

/// The standard workload of the `monitor` bench: a prefix-opaque history of
/// repeated **contention knots**, each of which makes a from-scratch check
/// backtrack while the resumable monitor extends its previous witness.
///
/// One knot on a fresh register: six concurrent blind writers, then — once
/// the first writer is commit-pending — a reader that observes the *first*
/// writer's value and commits. The only serializations place `w1` and then
/// the reader before the remaining writers, so an unbiased DFS must first
/// exhaust the dead subtrees in which `w2..w6` precede the reader. Knots
/// are real-time-sequenced, so every re-check from scratch re-pays the
/// search for *every* knot so far, while the incremental monitor pays each
/// knot once and then walks its witness in linear time.
///
/// Every prefix of the workload is opaque, so a monitor consumes it
/// end-to-end. `events` may land mid-knot; the truncated prefix is still
/// well-formed.
pub fn monitor_workload(events: usize) -> History {
    const WRITERS: u32 = 6;
    let per_round = 4 * WRITERS as usize + 4;
    let rounds = events.div_ceil(per_round).max(1) as u32;
    let mut b = HistoryBuilder::new();
    for r in 0..rounds {
        let obj = format!("k{r}");
        let base = r * (WRITERS + 1);
        let reader = base + WRITERS + 1;
        for i in 1..=WRITERS {
            b = b.write(base + i, &obj, ((base + i) * 10) as i64);
        }
        b = b.try_commit(base + 1);
        b = b.read(reader, &obj, ((base + 1) * 10) as i64);
        b = b.commit(base + 1);
        for i in 2..=WRITERS {
            b = b.try_commit(base + i).commit(base + i);
        }
        b = b.try_commit(reader).commit(reader);
    }
    b.build().prefix(events)
}

/// The workload of the `search/*` bench suite: `knots` mutually concurrent
/// contention knots — `writers` blind writers plus one reader per knot,
/// each knot on its own register — closed by a committed reader observing a
/// value nobody ever wrote.
///
/// Every transaction's first event precedes every completion, so there are
/// **no real-time edges at all**: every transaction is a root candidate,
/// which gives the parallel search `knots × (writers + 1) + 1` independent
/// root subtrees to distribute over its work-stealing pool. The impossible
/// final read makes the history non-opaque, so a batch check must exhaust
/// the entire serialization space — a deterministic node count with no
/// early-exit variance, which is what a throughput-scaling bench needs.
/// The per-knot state spaces multiply, so the dead-end memo grows into the
/// thousands of entries even at small sizes (the stress case for
/// `memo_capacity`).
pub fn search_knot_history(knots: u32, writers: u32) -> History {
    let mut b = HistoryBuilder::new();
    // Phase 1: every operation completes before any transaction does, so
    // pred masks stay empty and every placement order is real-time-legal.
    for r in 0..knots {
        let obj = format!("k{r}");
        let base = r * (writers + 1);
        for i in 1..=writers {
            b = b.write(base + i, &obj, ((base + i) * 10) as i64);
        }
        // The knot reader observes the knot's FIRST writer, so only
        // serializations where that writer is the latest write before the
        // reader survive — the search must thread every knot's needle
        // simultaneously.
        b = b.read(base + writers + 1, &obj, ((base + 1) * 10) as i64);
    }
    let poison = knots * (writers + 1) + 1;
    b = b.read(poison, "k0", -1);
    // Phase 2: all completions.
    for r in 0..knots {
        let base = r * (writers + 1);
        for i in 1..=writers + 1 {
            b = b.try_commit(base + i).commit(base + i);
        }
    }
    b = b.try_commit(poison).commit(poison);
    b.build()
}

/// The memory-stress workload of the `search/*` suite: `knots`
/// **real-time-sequenced** contention knots, all on ONE register, closed by
/// a committed reader observing a value nobody wrote.
///
/// Real-time order makes the search strictly phased — knot `r+1`'s
/// transactions are placeable only after every knot-`r` transaction — and
/// the shared register makes the phases *converge*: whatever knot `r`'s
/// last writer left behind, knot `r+1`'s first placement overwrites it, so
/// cross-knot state products collapse and the unbounded node count grows
/// only linearly in `knots`. The dead-end table, however, accumulates every
/// knot's interior: its peak grows with the history while the *live*
/// working set is roughly one knot's interior plus the convergence spine —
/// exactly the shape on which a bounded memo should win, and the workload
/// behind the "quarter-capacity costs <20% extra nodes" bar pinned in the
/// tests below. (The impossible final read forces exhaustion, so node
/// counts are deterministic.)
pub fn sequential_knot_search(knots: u32, writers: u32) -> History {
    let mut b = HistoryBuilder::new();
    for r in 0..knots {
        let base = r * (writers + 1);
        let reader = base + writers + 1;
        for i in 1..=writers {
            b = b.write(base + i, "x", ((base + i) * 10) as i64);
        }
        b = b.try_commit(base + 1);
        b = b.read(reader, "x", ((base + 1) * 10) as i64);
        b = b.commit(base + 1);
        for i in 2..=writers {
            b = b.try_commit(base + i).commit(base + i);
        }
        b = b.try_commit(reader).commit(reader);
    }
    let poison = knots * (writers + 1) + 1;
    b = b.read(poison, "x", -1).try_commit(poison).commit(poison);
    b.build()
}

/// The adversary of the root-split parallel search: `knots` contention
/// knots (`writers` blind writers plus one needle reader per knot, each on
/// its own register) **chained in real time behind one-transaction
/// gates**, closed by a committed reader observing a value nobody wrote.
///
/// Each phase opens with a *gate* transaction that completes before any
/// later transaction begins, so the gate is a real-time predecessor of
/// everything after it — the history's **root fan-out is exactly 1 by
/// construction** (only the first gate is placeable on an empty frontier,
/// and it is committed, so it admits one placement). Root-only parallelism
/// therefore degenerates to a sequential walk no matter how many workers
/// are configured; only dynamic subtree splitting
/// ([`tm_opacity::SearchConfig::split_depth`]) lets the pool distribute
/// the wide interior of each knot (knot `r`'s `writers + 1` transactions
/// are mutually concurrent, and the reader observes the knot's FIRST
/// writer, so the needle prunes late). Distinct final writes per knot keep
/// the phase-boundary states distinct, so the interior work grows with
/// `writers ^ knots` — plenty of nodes to distribute. The impossible final
/// read keeps the history non-opaque, so every check exhausts the space:
/// deterministic sequential node counts with no early-exit variance.
pub fn rt_chain_knot_history(knots: u32, writers: u32) -> History {
    let mut b = HistoryBuilder::new();
    let mut next = 1u32;
    for r in 0..knots {
        // The gate: completes before every later transaction's first event.
        let gate = next;
        next += 1;
        b = b
            .write(gate, &format!("g{r}"), 1)
            .try_commit(gate)
            .commit(gate);
        // The knot: all invocations precede all completions, so the knot's
        // transactions are mutually concurrent (no intra-knot RT edges).
        let obj = format!("k{r}");
        let base = next;
        next += writers + 1;
        for i in 0..writers {
            b = b.write(base + i, &obj, ((base + i) * 10) as i64);
        }
        let reader = base + writers;
        b = b.read(reader, &obj, (base * 10) as i64);
        for i in 0..=writers {
            b = b.try_commit(base + i).commit(base + i);
        }
    }
    let poison = next;
    b = b.read(poison, "k0", -1).try_commit(poison).commit(poison);
    b.build()
}

/// Builds a mixed reader/writer history with `n` committed transactions on
/// two registers that exercises backtracking in the checker.
pub fn mixed_history(n: u32) -> History {
    let mut b = HistoryBuilder::new();
    let mut last_x = 0i64;
    for t in 1..=n {
        if t % 2 == 1 {
            b = b
                .write(t, "x", t as i64)
                .write(t, "y", t as i64)
                .commit_ok(t);
            last_x = t as i64;
        } else {
            b = b.read(t, "x", last_x).read(t, "y", last_x).commit_ok(t);
        }
    }
    b.build()
}

/// Total DFS nodes for checking every response-event prefix of `h` from
/// scratch — the cost model of the pre-resumable monitor, and the baseline
/// the `monitor` bench and `BENCH_monitor.json` compare against.
pub fn batch_prefix_nodes(h: &History, specs: &tm_model::SpecRegistry) -> usize {
    let mut total = 0;
    for i in 0..h.len() {
        if h.events()[i].is_response() {
            total += tm_opacity::opacity::is_opaque(&h.prefix(i + 1), specs)
                .expect("workload prefixes are checkable")
                .stats
                .nodes;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::SpecRegistry;
    use tm_opacity::incremental::OpacityMonitor;
    use tm_opacity::opacity::is_opaque;

    #[test]
    fn generated_bench_histories_are_opaque() {
        let specs = SpecRegistry::registers();
        for h in [chain_history(6), blind_writers_history(6), mixed_history(8)] {
            assert!(tm_model::is_well_formed(&h));
            assert!(is_opaque(&h, &specs).unwrap().opaque, "{h}");
        }
    }

    #[test]
    fn monitor_workload_prefixes_are_opaque_and_well_formed() {
        let specs = SpecRegistry::registers();
        let h = monitor_workload(72);
        assert_eq!(h.len(), 72);
        assert!(tm_model::is_well_formed(&h));
        let mut m = OpacityMonitor::new(&specs);
        assert_eq!(
            m.feed_all(&h).unwrap(),
            None,
            "every prefix of the standard workload must be opaque"
        );
    }

    #[test]
    fn search_knot_history_is_wellformed_nonopaque_and_root_parallel() {
        use tm_opacity::search::Search;
        use tm_opacity::{SearchConfig, SearchMode};
        let specs = SpecRegistry::registers();
        let h = search_knot_history(2, 3);
        assert!(tm_model::is_well_formed(&h));
        let seq = Search::new(&h, &specs, SearchMode::OPACITY, SearchConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert!(!seq.holds(), "the poison read must defeat every witness");
        // Parallel verdict identity on the bench workload itself.
        for jobs in [2usize, 4, 8] {
            let out = Search::new(
                &h,
                &specs,
                SearchMode::OPACITY,
                SearchConfig {
                    search_jobs: jobs,
                    ..SearchConfig::default()
                },
            )
            .unwrap()
            .run()
            .unwrap();
            assert_eq!(out.holds(), seq.holds(), "jobs={jobs}");
        }
    }

    #[test]
    fn rt_chain_knot_history_has_root_fanout_one_and_splits_feed_workers() {
        use tm_opacity::search::Search;
        use tm_opacity::{SearchConfig, SearchMode};
        let specs = SpecRegistry::registers();
        let h = rt_chain_knot_history(3, 3);
        assert!(tm_model::is_well_formed(&h));
        let seq = Search::new(&h, &specs, SearchMode::OPACITY, SearchConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert!(!seq.holds(), "the poison read must defeat every witness");
        // Root fan-out 1 by construction: with splitting disabled, the
        // parallel engine degenerates to a single root task no matter the
        // worker count — no steals, nothing donated.
        let rootonly = Search::new(
            &h,
            &specs,
            SearchMode::OPACITY,
            SearchConfig {
                search_jobs: 8,
                split_depth: 0,
                ..SearchConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(rootonly.holds(), seq.holds());
        assert_eq!(rootonly.stats.steals, 0, "root fan-out must be 1");
        assert_eq!(rootonly.stats.donated_tasks, 0, "splitting was disabled");
        // With splitting enabled the hungry workers actually get fed, and
        // the verdict is unchanged.
        for jobs in [4usize, 8] {
            let out = Search::new(
                &h,
                &specs,
                SearchMode::OPACITY,
                SearchConfig {
                    search_jobs: jobs,
                    ..SearchConfig::default()
                },
            )
            .unwrap()
            .run()
            .unwrap();
            assert_eq!(out.holds(), seq.holds(), "jobs={jobs}");
            assert!(
                out.stats.donated_tasks > 0,
                "jobs={jobs}: splitting must feed the hungry workers"
            );
            assert!(out.stats.splits > 0, "jobs={jobs}");
            assert!(
                out.stats.splits <= out.stats.donated_tasks,
                "each split donates at least one task"
            );
        }
    }

    #[test]
    fn bounded_memo_quarter_cap_regresses_nodes_under_20_percent() {
        // The ROADMAP's bounded-memory acceptance bar, pinned
        // deterministically on the phased contention-knot workload: with
        // the memo capped at 1/4 of the unbounded table's peak size, the
        // resident count respects the cap, the cap genuinely binds
        // (evictions happen), the verdict is unchanged, and the total
        // search work grows by less than 20%.
        use tm_opacity::{CheckSession, SearchConfig, SearchMode};
        let specs = SpecRegistry::registers();
        let h = sequential_knot_search(15, 3);
        let mut unbounded = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
        for e in h.events() {
            unbounded.extend(e).unwrap();
        }
        let base = unbounded.check().unwrap();
        assert!(!base.holds());
        // A batch check never invalidates mid-check, so the table only
        // grows: the post-check resident count IS the peak.
        let peak = unbounded.memo_resident();
        assert!(
            peak >= 256,
            "workload too small to exercise the bound: {peak}"
        );
        let cap = peak / 4;
        let mut bounded = CheckSession::new(
            &specs,
            SearchMode::OPACITY,
            SearchConfig {
                memo_capacity: Some(cap),
                ..SearchConfig::default()
            },
        );
        for e in h.events() {
            bounded.extend(e).unwrap();
        }
        let out = bounded.check().unwrap();
        assert_eq!(out.holds(), base.holds(), "verdict unchanged");
        assert!(
            bounded.memo_resident() <= cap,
            "resident {} exceeds cap {cap}",
            bounded.memo_resident()
        );
        assert!(out.stats.evictions > 0, "the cap must actually bind");
        let overhead = out.stats.nodes as f64 / base.stats.nodes.max(1) as f64 - 1.0;
        assert!(
            overhead < 0.20,
            "quarter-capacity overhead {:.1}% (nodes {} vs {})",
            overhead * 100.0,
            out.stats.nodes,
            base.stats.nodes
        );
    }

    #[test]
    fn bounded_memo_monitor_latency_path_degrades_gracefully() {
        // The streaming half of the bounded-memory story: the monitor's
        // invalidation already keeps its table small, and even an
        // aggressive cap (an eighth of the streaming peak) costs only a
        // modest amount of re-exploration — no thrash cliff.
        use tm_opacity::incremental::OpacityMonitor;
        use tm_opacity::SearchConfig;
        let specs = SpecRegistry::registers();
        let h = monitor_workload(192);
        let mut unbounded = OpacityMonitor::new(&specs);
        let mut peak = 0usize;
        for e in h.events() {
            unbounded.feed(e.clone()).unwrap();
            peak = peak.max(unbounded.memo_resident());
        }
        let base_nodes = unbounded.lifetime_stats().nodes.max(1);
        let cap = (peak / 8).max(1);
        let mut bounded = OpacityMonitor::new(&specs).with_config(SearchConfig {
            memo_capacity: Some(cap),
            ..SearchConfig::default()
        });
        assert_eq!(bounded.feed_all(&h).unwrap(), None, "verdicts unchanged");
        assert!(bounded.memo_resident() <= cap);
        let nodes = bounded.lifetime_stats().nodes;
        assert!(
            nodes < base_nodes * 2,
            "eighth-capacity streaming overhead too high: {nodes} vs {base_nodes}"
        );
    }

    #[test]
    fn incremental_monitor_beats_batch_rechecks_5x_at_length_64() {
        // The acceptance bar of the resumable-core refactor: on the standard
        // workload at history length 64, the incremental path does at most a
        // fifth of the batch path's search work (deterministic node counts,
        // so this is a stable proxy for the wall-clock bench).
        let specs = SpecRegistry::registers();
        let h = monitor_workload(64);
        assert_eq!(h.len(), 64);
        let mut m = OpacityMonitor::new(&specs);
        assert_eq!(m.feed_all(&h).unwrap(), None);
        let incremental = m.lifetime_stats().nodes.max(1);
        let batch = batch_prefix_nodes(&h, &specs);
        assert!(
            batch >= 5 * incremental,
            "batch {batch} nodes vs incremental {incremental} nodes: ratio {:.2} < 5",
            batch as f64 / incremental as f64
        );
    }
}
