//! # tm-bench — benchmark harness
//!
//! Criterion benchmarks regenerating the paper's quantitative content:
//!
//! * `benches/lower_bound.rs` — E8/E9: the Theorem-3 scenarios (wall-clock
//!   companion to the exact step counts printed by
//!   `cargo run --release --example lower_bound`);
//! * `benches/checker.rs` — E13: definitional checker, graph construction,
//!   online monitor, and the memoization ablation;
//! * `benches/throughput.rs` — E14: committed-transaction throughput and
//!   abort rates across the TM design space, plus the contention-manager
//!   ablation;
//! * `benches/model_ops.rs` — model-layer primitives (projection, legality,
//!   well-formedness);
//! * `benches/monitor.rs` — the resumable online monitor against batch
//!   re-check-from-scratch on growing histories (the `report` bin writes
//!   the machine-readable companion `BENCH_monitor.json`);
//! * `benches/clocks.rs` — commit-throughput scaling of the pluggable
//!   version-clock schemes (`single`/`sharded:N`/`deferred`) on the
//!   commit-storm workload (companion artifact: `BENCH_clocks.json`).
//!
//! The library itself only hosts shared history generators for the benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use tm_model::{History, HistoryBuilder};

/// Builds a legal sequential chain history: `n` transactions, each reading
/// the previous value of `x` and writing the next (a checker-friendly
/// baseline whose serialization is unique).
pub fn chain_history(n: u32) -> History {
    let mut b = HistoryBuilder::new();
    for t in 1..=n {
        b = b
            .read(t, "x", (t - 1) as i64)
            .write(t, "x", t as i64)
            .commit_ok(t);
    }
    b.build()
}

/// Builds a history of `n` concurrent committed blind writers to one
/// register (the stress case for the serialization search: n! orders, tiny
/// state space — memoization's best case).
pub fn blind_writers_history(n: u32) -> History {
    let mut b = HistoryBuilder::new();
    for t in 1..=n {
        b = b.write(t, "x", t as i64);
    }
    for t in 1..=n {
        b = b.commit_ok(t);
    }
    b.build()
}

/// The standard workload of the `monitor` bench: a prefix-opaque history of
/// repeated **contention knots**, each of which makes a from-scratch check
/// backtrack while the resumable monitor extends its previous witness.
///
/// One knot on a fresh register: six concurrent blind writers, then — once
/// the first writer is commit-pending — a reader that observes the *first*
/// writer's value and commits. The only serializations place `w1` and then
/// the reader before the remaining writers, so an unbiased DFS must first
/// exhaust the dead subtrees in which `w2..w6` precede the reader. Knots
/// are real-time-sequenced, so every re-check from scratch re-pays the
/// search for *every* knot so far, while the incremental monitor pays each
/// knot once and then walks its witness in linear time.
///
/// Every prefix of the workload is opaque, so a monitor consumes it
/// end-to-end. `events` may land mid-knot; the truncated prefix is still
/// well-formed.
pub fn monitor_workload(events: usize) -> History {
    const WRITERS: u32 = 6;
    let per_round = 4 * WRITERS as usize + 4;
    let rounds = events.div_ceil(per_round).max(1) as u32;
    let mut b = HistoryBuilder::new();
    for r in 0..rounds {
        let obj = format!("k{r}");
        let base = r * (WRITERS + 1);
        let reader = base + WRITERS + 1;
        for i in 1..=WRITERS {
            b = b.write(base + i, &obj, ((base + i) * 10) as i64);
        }
        b = b.try_commit(base + 1);
        b = b.read(reader, &obj, ((base + 1) * 10) as i64);
        b = b.commit(base + 1);
        for i in 2..=WRITERS {
            b = b.try_commit(base + i).commit(base + i);
        }
        b = b.try_commit(reader).commit(reader);
    }
    b.build().prefix(events)
}

/// Builds a mixed reader/writer history with `n` committed transactions on
/// two registers that exercises backtracking in the checker.
pub fn mixed_history(n: u32) -> History {
    let mut b = HistoryBuilder::new();
    let mut last_x = 0i64;
    for t in 1..=n {
        if t % 2 == 1 {
            b = b
                .write(t, "x", t as i64)
                .write(t, "y", t as i64)
                .commit_ok(t);
            last_x = t as i64;
        } else {
            b = b.read(t, "x", last_x).read(t, "y", last_x).commit_ok(t);
        }
    }
    b.build()
}

/// Total DFS nodes for checking every response-event prefix of `h` from
/// scratch — the cost model of the pre-resumable monitor, and the baseline
/// the `monitor` bench and `BENCH_monitor.json` compare against.
pub fn batch_prefix_nodes(h: &History, specs: &tm_model::SpecRegistry) -> usize {
    let mut total = 0;
    for i in 0..h.len() {
        if h.events()[i].is_response() {
            total += tm_opacity::opacity::is_opaque(&h.prefix(i + 1), specs)
                .expect("workload prefixes are checkable")
                .stats
                .nodes;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::SpecRegistry;
    use tm_opacity::incremental::OpacityMonitor;
    use tm_opacity::opacity::is_opaque;

    #[test]
    fn generated_bench_histories_are_opaque() {
        let specs = SpecRegistry::registers();
        for h in [chain_history(6), blind_writers_history(6), mixed_history(8)] {
            assert!(tm_model::is_well_formed(&h));
            assert!(is_opaque(&h, &specs).unwrap().opaque, "{h}");
        }
    }

    #[test]
    fn monitor_workload_prefixes_are_opaque_and_well_formed() {
        let specs = SpecRegistry::registers();
        let h = monitor_workload(72);
        assert_eq!(h.len(), 72);
        assert!(tm_model::is_well_formed(&h));
        let mut m = OpacityMonitor::new(&specs);
        assert_eq!(
            m.feed_all(&h).unwrap(),
            None,
            "every prefix of the standard workload must be opaque"
        );
    }

    #[test]
    fn incremental_monitor_beats_batch_rechecks_5x_at_length_64() {
        // The acceptance bar of the resumable-core refactor: on the standard
        // workload at history length 64, the incremental path does at most a
        // fifth of the batch path's search work (deterministic node counts,
        // so this is a stable proxy for the wall-clock bench).
        let specs = SpecRegistry::registers();
        let h = monitor_workload(64);
        assert_eq!(h.len(), 64);
        let mut m = OpacityMonitor::new(&specs);
        assert_eq!(m.feed_all(&h).unwrap(), None);
        let incremental = m.lifetime_stats().nodes.max(1);
        let batch = batch_prefix_nodes(&h, &specs);
        assert!(
            batch >= 5 * incremental,
            "batch {batch} nodes vs incremental {incremental} nodes: ratio {:.2} < 5",
            batch as f64 / incremental as f64
        );
    }
}
