//! `report` — regenerates the full experiment report as markdown.
//!
//! ```sh
//! cargo run --release -p tm-bench --bin report > results.md
//! ```
//!
//! Covers: the criteria table on the paper's histories (E1/E2), the
//! Theorem-2 cross-validation summary (E7), and the Theorem-3 step-count
//! sweeps (E8/E9). Wall-clock numbers live in the Criterion benches; this
//! report contains only machine-independent quantities (verdicts and exact
//! step counts), so it is diff-stable across runs.

use tm_harness::complexity::{paper_scenario, solo_scan, sweep};
use tm_harness::randhist::{random_history, GenConfig};
use tm_model::builder::paper;
use tm_model::SpecRegistry;
use tm_opacity::criteria::classify;
use tm_opacity::graphcheck::decide_via_graph;
use tm_opacity::opacity::is_opaque;

fn yesno(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn main() {
    let specs = SpecRegistry::registers();
    println!("# opacity-tm experiment report\n");

    // ---- E1/E2: criteria table ------------------------------------------
    println!("## Criteria on the paper's histories (E1/E2)\n");
    println!("| history | serializable | strict-ser | recoverable | ACA | strict | rigorous | SI | opaque |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for (name, h) in [
        ("H1 (Fig. 1)", paper::h1()),
        ("H2", paper::h2()),
        ("H3", paper::h3()),
        ("H4", paper::h4()),
        ("H5 (Fig. 2)", paper::h5()),
    ] {
        let p = classify(&h, &specs).expect("paper histories are checkable");
        let si = tm_opacity::criteria::snapshot_isolated(&h, &specs).expect("registers");
        println!(
            "| {name} | {} | {} | {} | {} | {} | {} | {} | **{}** |",
            yesno(p.serializable),
            yesno(p.strictly_serializable),
            yesno(p.recoverable),
            yesno(p.avoids_cascading_aborts),
            yesno(p.strict),
            yesno(p.rigorous),
            yesno(si),
            yesno(p.opaque),
        );
    }

    // ---- E7: Theorem-2 cross-validation summary --------------------------
    println!("\n## Theorem 2 cross-validation (E7)\n");
    let config = GenConfig::default();
    let n = 400u64;
    let mut agree = 0;
    let mut opaque_count = 0;
    for seed in 0..n {
        let h = random_history(&config, seed);
        let d = is_opaque(&h, &specs).unwrap().opaque;
        let g = decide_via_graph(&h, &specs, 6).unwrap().opaque();
        if d == g {
            agree += 1;
        }
        if d {
            opaque_count += 1;
        }
    }
    println!(
        "- definitional vs graph decider: **{agree}/{n} agree** \
         ({opaque_count} opaque, {} non-opaque)\n",
        n - opaque_count
    );

    // ---- E8: paper scenario ----------------------------------------------
    println!("## Theorem 3 — paper scenario, steps of T1's final read (E8)\n");
    let ks = [8usize, 32, 128, 512];
    let rows = sweep(&ks, true, paper_scenario);
    print!("| stm |");
    for k in ks {
        print!(" k={k} |");
    }
    println!(" T1 outcome |");
    print!("|---|");
    for _ in ks {
        print!("---|");
    }
    println!("---|");
    for name in [
        "dstm",
        "astm",
        "tl2",
        "visible",
        "tpl",
        "mvstm",
        "sistm",
        "nonopaque",
    ] {
        print!("| {name} |");
        let mut outcome = "";
        for k in ks {
            let r = rows.iter().find(|r| r.stm == name && r.k == k).unwrap();
            print!(" {} |", r.last_read_steps);
            outcome = if r.t1_committed { "commit" } else { "abort" };
        }
        println!(" {outcome} |");
    }

    // ---- E9: solo scan ----------------------------------------------------
    println!("\n## Theorem 3 — solo scan, total read steps per transaction (E9)\n");
    let rows = sweep(&ks, false, solo_scan);
    print!("| stm |");
    for k in ks {
        print!(" k={k} |");
    }
    println!();
    print!("|---|");
    for _ in ks {
        print!("---|");
    }
    println!();
    for name in [
        "glock",
        "dstm",
        "astm",
        "tl2",
        "visible",
        "tpl",
        "mvstm",
        "sistm",
        "nonopaque",
    ] {
        print!("| {name} |");
        for k in ks {
            let r = rows.iter().find(|r| r.stm == name && r.k == k).unwrap();
            print!(" {} |", r.total_read_steps);
        }
        println!();
    }

    println!(
        "\n_Exact deterministic base-object step counts; see EXPERIMENTS.md for interpretation._"
    );
}
