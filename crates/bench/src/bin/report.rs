//! `report` — regenerates the full experiment report as markdown.
//!
//! ```sh
//! cargo run --release -p tm-bench --bin report > results.md
//! cargo run --release -p tm-bench --bin report -- --quick   # CI mode
//! ```
//!
//! Covers: the criteria table on the paper's histories (E1/E2), the
//! Theorem-2 cross-validation summary (E7, sharded across workers), the
//! Theorem-3 step-count sweeps (E8/E9), and the monitor scaling study. The
//! markdown contains only machine-independent quantities (verdicts and
//! exact node/step counts), so it is diff-stable across runs; wall-clock
//! numbers go to **`BENCH_monitor.json`** (history length vs
//! incremental/batch check time and node counts) and
//! **`BENCH_search.json`** (parallel-search node throughput per worker
//! count, bounded-memo node overheads, and verdict-latency percentiles —
//! hand-timed and as folded `check.verdict_ns` histograms — under a
//! streaming monitor at several memo caps), and **`BENCH_serve.json`**
//! (the serve daemon: N concurrent synthetic sessions interleaved through
//! the deterministic replay engine, unbudgeted and under a starved global
//! memo budget, with verdict-latency p50/p95/p99 folded from the daemon's
//! `serve.verdict_ns` histogram) — the machine-readable artifacts CI
//! uploads so the perf trajectory of the resumable core is tracked from
//! PR to PR.
//!
//! Flags: `--quick` shrinks the E7 sample and the monitor sweep for CI;
//! `--jobs N` overrides the worker count (default: available parallelism);
//! `--rt-smoke` runs only the RT-chain split-scaling smoke (1 vs 4
//! workers, prints the wall-clock ratio and split counters, writes no
//! artifacts) — the warn-only CI probe for the depth-adaptive splitter.

use std::time::Instant;

use tm_bench::{batch_prefix_nodes, monitor_workload, rt_chain_knot_history, search_knot_history};
use tm_harness::complexity::{paper_scenario, solo_scan, sweep};
use tm_harness::parallel::default_jobs;
use tm_harness::randhist::{cross_validate, GenConfig};
use tm_harness::workload::{commit_storm, typed_storm};
use tm_harness::ObjectKind;
use tm_model::builder::paper;
use tm_model::SpecRegistry;
use tm_opacity::criteria::classify;
use tm_opacity::incremental::OpacityMonitor;
use tm_stm::objects::TypedStm;
use tm_stm::{ClockScheme, StmConfig, TmRegistry};

fn yesno(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// One row of the monitor scaling study.
struct MonitorPoint {
    events: usize,
    incremental_ns: u128,
    batch_ns: u128,
    incremental_nodes: usize,
    batch_nodes: usize,
}

fn monitor_points(lens: &[usize]) -> Vec<MonitorPoint> {
    let specs = SpecRegistry::registers();
    lens.iter()
        .map(|&events| {
            let h = monitor_workload(events);
            let t0 = Instant::now();
            let mut m = OpacityMonitor::new(&specs);
            m.feed_all(&h).expect("workload is well-formed");
            let incremental_ns = t0.elapsed().as_nanos();
            let incremental_nodes = m.lifetime_stats().nodes;
            let t0 = Instant::now();
            let batch_nodes = batch_prefix_nodes(&h, &specs);
            let batch_ns = t0.elapsed().as_nanos();
            MonitorPoint {
                events,
                incremental_ns,
                batch_ns,
                incremental_nodes,
                batch_nodes,
            }
        })
        .collect()
}

/// One row of the per-object-type throughput suite.
struct ObjectPoint {
    tm: &'static str,
    object: &'static str,
    threads: usize,
    ops: usize,
    commits: u64,
    aborts: u64,
    wall_ns: u128,
}

/// Measures the typed-object storm for every TM × object kind.
fn object_points(tm_names: &[&'static str], threads: usize, ops: usize) -> Vec<ObjectPoint> {
    let reg = TmRegistry::suite();
    let mut out = Vec::new();
    for kind in ObjectKind::ALL {
        for &name in tm_names {
            let typed = TypedStm::new(
                kind.standard_space(threads * ops),
                reg.factory(name).expect("suite TM name"),
            );
            typed.stm().recorder().set_enabled(false);
            let t0 = Instant::now();
            let stats = typed_storm(&typed, kind, threads, ops);
            let wall_ns = t0.elapsed().as_nanos();
            out.push(ObjectPoint {
                tm: name,
                object: kind.name(),
                threads,
                ops,
                commits: stats.commits,
                aborts: stats.aborts,
                wall_ns,
            });
        }
    }
    out
}

/// Renders `BENCH_objects.json` by hand (no serde in the tree).
fn objects_json(points: &[ObjectPoint]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"typed-objects\",\n");
    out.push_str("  \"workload\": \"per-object-kind storms (tm_harness::typed_storm)\",\n");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let total = p.commits.max(1);
        let per_sec = total as f64 / (p.wall_ns.max(1) as f64 / 1e9);
        out.push_str(&format!(
            "    {{\"tm\": \"{}\", \"object\": \"{}\", \"threads\": {}, \"ops\": {}, \
             \"commits\": {}, \"aborts\": {}, \"wall_ns\": {}, \"commits_per_sec\": {:.0}}}{}\n",
            p.tm,
            p.object,
            p.threads,
            p.ops,
            p.commits,
            p.aborts,
            p.wall_ns,
            per_sec,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One row of the clock-scheme commit-throughput suite.
struct ClockPoint {
    tm: &'static str,
    clock: String,
    threads: usize,
    txs: usize,
    commits: u64,
    aborts: u64,
    wall_ns: u128,
}

/// Measures the commit storm for every clocked TM × clock scheme × thread
/// count — the quantitative answer to the ROADMAP's sharded-clock item.
fn clock_points(thread_counts: &[usize], txs: usize) -> Vec<ClockPoint> {
    let reg = TmRegistry::suite();
    let mut out = Vec::new();
    for tm in ["tl2", "mvstm"] {
        for scheme in [
            ClockScheme::Single,
            ClockScheme::Sharded(8),
            ClockScheme::Deferred,
        ] {
            for &threads in thread_counts {
                let spec = format!("{tm}+{scheme}");
                let stm = reg
                    .build_with(&spec, &StmConfig::new(threads).recording(false))
                    .expect("clocked TM spec");
                let t0 = Instant::now();
                let stats = commit_storm(stm.as_ref(), threads, txs);
                let wall_ns = t0.elapsed().as_nanos();
                assert!(
                    stm.recorder().is_empty(),
                    "{spec}: recording-off run allocated events"
                );
                out.push(ClockPoint {
                    tm,
                    clock: scheme.to_string(),
                    threads,
                    txs,
                    commits: stats.commits,
                    aborts: stats.aborts,
                    wall_ns,
                });
            }
        }
    }
    out
}

/// Renders `BENCH_clocks.json` by hand (no serde in the tree).
fn clocks_json(points: &[ClockPoint]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"clocks\",\n");
    out.push_str(
        "  \"workload\": \"disjoint-register commit storm (tm_harness::commit_storm)\",\n",
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let per_sec = p.commits.max(1) as f64 / (p.wall_ns.max(1) as f64 / 1e9);
        out.push_str(&format!(
            "    {{\"tm\": \"{}\", \"clock\": \"{}\", \"threads\": {}, \"txs\": {}, \
             \"commits\": {}, \"aborts\": {}, \"wall_ns\": {}, \"commits_per_sec\": {:.0}}}{}\n",
            p.tm,
            p.clock,
            p.threads,
            p.txs,
            p.commits,
            p.aborts,
            p.wall_ns,
            per_sec,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One row of the parallel-search scaling study.
struct SearchScalingPoint {
    workers: usize,
    wall_ns: u128,
    nodes: usize,
}

/// Batch-checks the concurrent contention-knot workload once per worker
/// count. The workload is non-opaque, so every run exhausts the same
/// serialization space — no early-exit variance.
fn search_scaling_points(
    worker_counts: &[usize],
    knots: u32,
    writers: u32,
) -> Vec<SearchScalingPoint> {
    use tm_opacity::search::Search;
    use tm_opacity::{SearchConfig, SearchMode};
    let specs = SpecRegistry::registers();
    let h = search_knot_history(knots, writers);
    worker_counts
        .iter()
        .map(|&workers| {
            let config = SearchConfig {
                search_jobs: workers,
                ..SearchConfig::default()
            };
            let t0 = Instant::now();
            let out = Search::new(&h, &specs, SearchMode::OPACITY, config)
                .expect("workload is well-formed")
                .run()
                .expect("workload is checkable");
            let wall_ns = t0.elapsed().as_nanos();
            assert!(!out.holds(), "the knot workload must stay non-opaque");
            SearchScalingPoint {
                workers,
                wall_ns,
                nodes: out.stats.nodes,
            }
        })
        .collect()
}

/// One row of the RT-chain split-scaling study: root fan-out is 1 by
/// construction, so these points isolate the depth-adaptive splitter.
struct RtChainPoint {
    workers: usize,
    wall_ns: u128,
    nodes: usize,
    splits: usize,
    donated: usize,
}

/// Batch-checks the realtime-chained knot workload once per worker count.
/// Like the concurrent knot it is non-opaque, so every run exhausts the
/// same space; unlike it, the root split contributes nothing — all
/// scaling comes from subtree donation.
fn rt_chain_scaling_points(worker_counts: &[usize], knots: u32, writers: u32) -> Vec<RtChainPoint> {
    use tm_opacity::search::Search;
    use tm_opacity::{SearchConfig, SearchMode};
    let specs = SpecRegistry::registers();
    let h = rt_chain_knot_history(knots, writers);
    worker_counts
        .iter()
        .map(|&workers| {
            let config = SearchConfig {
                search_jobs: workers,
                ..SearchConfig::default()
            };
            let t0 = Instant::now();
            let out = Search::new(&h, &specs, SearchMode::OPACITY, config)
                .expect("workload is well-formed")
                .run()
                .expect("workload is checkable");
            let wall_ns = t0.elapsed().as_nanos();
            assert!(!out.holds(), "the RT-chain workload must stay non-opaque");
            RtChainPoint {
                workers,
                wall_ns,
                nodes: out.stats.nodes,
                splits: out.stats.splits,
                donated: out.stats.donated_tasks,
            }
        })
        .collect()
}

/// One row of the bounded-memo verdict-latency study.
struct SearchLatencyPoint {
    /// `None` = unbounded.
    cap: Option<usize>,
    events: usize,
    p50_ns: u128,
    p95_ns: u128,
    p99_ns: u128,
    resident: usize,
    evictions: usize,
    total_nodes: usize,
    /// The monitor's own `check.verdict_ns` histogram, folded from an
    /// observability sink installed on the search config — the same
    /// artifact `tmcheck --metrics-out` writes, so the two surfaces are
    /// cross-checkable.
    hist_count: u64,
    hist_p50_ns: u64,
    hist_p95_ns: u64,
    hist_p99_ns: u64,
}

/// The latency at percentile `p` of a sorted sample.
fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Streams the contention-knot monitor workload through an
/// `OpacityMonitor` per memo capacity, collecting per-verdict latencies.
/// The first run is unbounded and determines the peak table size; the
/// remaining caps are fractions of it (the ROADMAP's bounded-memory
/// question: what does a memory budget cost in verdict latency?).
fn search_latency_points(events: usize, fractions: &[usize]) -> Vec<SearchLatencyPoint> {
    use tm_opacity::SearchConfig;
    let specs = SpecRegistry::registers();
    let h = monitor_workload(events);
    let mut out = Vec::new();
    let mut peak = 0usize;
    for (i, cap) in std::iter::once(None)
        .chain(fractions.iter().map(|&f| Some(f)))
        .enumerate()
    {
        // One sink per cap: the monitor's internal checks fold their
        // verdict latencies into `check.verdict_ns`, isolated per run.
        let obs = tm_obs::ObsHandle::install();
        let config = match cap {
            None => SearchConfig {
                obs,
                ..SearchConfig::default()
            },
            Some(frac) => SearchConfig {
                memo_capacity: Some((peak / frac).max(1)),
                obs,
                ..SearchConfig::default()
            },
        };
        let mut m = OpacityMonitor::new(&specs).with_config(config);
        let mut latencies: Vec<u128> = Vec::new();
        let mut running_peak = 0usize;
        for e in h.events() {
            let is_response = e.is_response();
            let t0 = Instant::now();
            m.feed(e.clone()).expect("workload is opaque prefix-wise");
            if is_response {
                latencies.push(t0.elapsed().as_nanos());
                running_peak = running_peak.max(m.memo_resident());
            }
        }
        latencies.sort_unstable();
        if i == 0 {
            // The streaming peak, not the (invalidation-shrunk) final size.
            peak = running_peak.max(1);
        }
        let snap = obs.snapshot().expect("installed sink");
        let (hist_count, hist_p50_ns, hist_p95_ns, hist_p99_ns) = snap
            .histogram("check.verdict_ns")
            .map(|h| {
                (
                    h.count(),
                    h.quantile(0.5),
                    h.quantile(0.95),
                    h.quantile(0.99),
                )
            })
            .unwrap_or_default();
        out.push(SearchLatencyPoint {
            cap: config.memo_capacity,
            events,
            p50_ns: percentile(&latencies, 50.0),
            p95_ns: percentile(&latencies, 95.0),
            p99_ns: percentile(&latencies, 99.0),
            resident: running_peak,
            evictions: m.memo_evictions(),
            total_nodes: m.lifetime_stats().nodes,
            hist_count,
            hist_p50_ns,
            hist_p95_ns,
            hist_p99_ns,
        });
    }
    out
}

/// One row of the batch bounded-memo study (deterministic node counts).
struct SearchMemoryPoint {
    /// `None` = unbounded baseline.
    cap: Option<usize>,
    nodes: usize,
    resident: usize,
    evictions: usize,
}

/// Batch-checks the phased knot workload unbounded (establishing the peak
/// table size), then at caps of peak/2 and peak/4 — the ROADMAP's
/// "what does a memory budget cost" question, with exact node counts.
fn search_memory_points(knots: u32, writers: u32) -> Vec<SearchMemoryPoint> {
    use tm_opacity::{CheckSession, SearchConfig, SearchMode};
    let specs = SpecRegistry::registers();
    let h = tm_bench::sequential_knot_search(knots, writers);
    let mut out = Vec::new();
    let mut peak = 0usize;
    for cap in [None, Some(2usize), Some(4)] {
        let config = SearchConfig {
            memo_capacity: cap.map(|frac| (peak / frac).max(1)),
            ..SearchConfig::default()
        };
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, config);
        for e in h.events() {
            s.extend(e).expect("workload is well-formed");
        }
        let r = s.check().expect("workload is checkable");
        assert!(!r.holds(), "the phased knot workload must stay non-opaque");
        if cap.is_none() {
            peak = s.memo_resident().max(1);
        }
        out.push(SearchMemoryPoint {
            cap: config.memo_capacity,
            nodes: r.stats.nodes,
            resident: s.memo_resident(),
            evictions: r.stats.evictions,
        });
    }
    out
}

/// Renders `BENCH_search.json` by hand (no serde in the tree): the
/// node-throughput scaling points (tracked by `bench_trend`), the batch
/// bounded-memo points, and the verdict-latency points — each carrying
/// both hand-timed percentiles and the folded `check.verdict_ns`
/// histogram (`hist_*` fields, trend-diffed lower-is-better).
fn search_json(
    scaling: &[SearchScalingPoint],
    rt_chain: &[RtChainPoint],
    memory: &[SearchMemoryPoint],
    latency: &[SearchLatencyPoint],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"search\",\n");
    out.push_str(
        "  \"workload\": \"concurrent contention knots (tm_bench::search_knot_history) + \
         RT-chained knots (tm_bench::rt_chain_knot_history) + \
         phased knots (tm_bench::sequential_knot_search) + streaming monitor knots \
         (tm_bench::monitor_workload)\",\n",
    );
    out.push_str("  \"points\": [\n");
    let base_ns = scaling.first().map(|p| p.wall_ns).unwrap_or(1).max(1);
    let total = scaling.len() + rt_chain.len() + memory.len() + latency.len();
    let mut emitted = 0usize;
    for p in scaling {
        emitted += 1;
        let per_sec = p.nodes as f64 / (p.wall_ns.max(1) as f64 / 1e9);
        let speedup = base_ns as f64 / p.wall_ns.max(1) as f64;
        out.push_str(&format!(
            "    {{\"workers\": {}, \"wall_ns\": {}, \"nodes\": {}, \
             \"nodes_per_sec\": {:.0}, \"speedup\": {:.2}}}{}\n",
            p.workers,
            p.wall_ns,
            p.nodes,
            per_sec,
            speedup,
            if emitted == total { "" } else { "," }
        ));
    }
    // RT-chain points carry a "workload" discriminator so bench_trend can
    // key them separately from the legacy knot points above.
    let rt_base_ns = rt_chain.first().map(|p| p.wall_ns).unwrap_or(1).max(1);
    for p in rt_chain {
        emitted += 1;
        let per_sec = p.nodes as f64 / (p.wall_ns.max(1) as f64 / 1e9);
        let speedup = rt_base_ns as f64 / p.wall_ns.max(1) as f64;
        out.push_str(&format!(
            "    {{\"workload\": \"rt_chain\", \"workers\": {}, \"wall_ns\": {}, \
             \"nodes\": {}, \"nodes_per_sec\": {:.0}, \"speedup\": {:.2}, \
             \"splits\": {}, \"donated_tasks\": {}}}{}\n",
            p.workers,
            p.wall_ns,
            p.nodes,
            per_sec,
            speedup,
            p.splits,
            p.donated,
            if emitted == total { "" } else { "," }
        ));
    }
    let membase = memory.first().map(|p| p.nodes).unwrap_or(1).max(1);
    for p in memory {
        emitted += 1;
        let cap = p.cap.map_or("\"unbounded\"".to_string(), |c| c.to_string());
        out.push_str(&format!(
            "    {{\"batch_cap\": {}, \"nodes\": {}, \"resident\": {}, \"evictions\": {}, \
             \"node_overhead_pct\": {:.2}}}{}\n",
            cap,
            p.nodes,
            p.resident,
            p.evictions,
            (p.nodes as f64 / membase as f64 - 1.0) * 100.0,
            if emitted == total { "" } else { "," }
        ));
    }
    for p in latency {
        emitted += 1;
        let cap = p.cap.map_or("\"unbounded\"".to_string(), |c| c.to_string());
        out.push_str(&format!(
            "    {{\"cap\": {}, \"events\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"p99_ns\": {}, \"resident\": {}, \"evictions\": {}, \"total_nodes\": {}, \
             \"hist_count\": {}, \"hist_p50_ns\": {}, \"hist_p95_ns\": {}, \
             \"hist_p99_ns\": {}}}{}\n",
            cap,
            p.events,
            p.p50_ns,
            p.p95_ns,
            p.p99_ns,
            p.resident,
            p.evictions,
            p.total_nodes,
            p.hist_count,
            p.hist_p50_ns,
            p.hist_p95_ns,
            p.hist_p99_ns,
            if emitted == total { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One row of the serve-daemon multiplexing study.
struct ServePoint {
    sessions: usize,
    events: usize,
    /// `None` = unbudgeted.
    budget: Option<u64>,
    /// Was a verdict-preserving chaos plan injected into the link?
    faults: bool,
    wall_ns: u128,
    verdicts: u64,
    turns: u64,
    /// The daemon's own `serve.verdict_ns` histogram, folded from the
    /// observability sink — the same artifact `tmcheck serve
    /// --metrics-out` writes.
    hist_p50_ns: u64,
    hist_p95_ns: u64,
    hist_p99_ns: u64,
}

/// Builds the interleaved `tm-serve/v1` frame stream for `sessions`
/// synthetic clients (round-robin, one event per session per round) and
/// returns it with the total event count.
fn serve_frame_stream(sessions: usize) -> (String, usize) {
    use tm_serve::{render_client_frame, ClientFrame};
    let histories: Vec<(String, tm_model::History)> = (0..sessions)
        .map(|i| {
            (
                format!("s{i:03}"),
                tm_harness::randhist::random_history(&GenConfig::default(), 9000 + i as u64),
            )
        })
        .collect();
    let mut events = 0usize;
    let mut lines = Vec::new();
    for (id, _) in &histories {
        lines.push(render_client_frame(&ClientFrame::Open {
            session: id.clone(),
        }));
    }
    let max_len = histories.iter().map(|(_, h)| h.len()).max().unwrap_or(0);
    for round in 0..max_len {
        for (id, h) in &histories {
            if let Some(e) = h.events().get(round) {
                events += 1;
                lines.push(render_client_frame(&ClientFrame::Feed {
                    session: id.clone(),
                    event: e.clone(),
                    seq: None,
                }));
            }
        }
    }
    for (id, _) in &histories {
        lines.push(render_client_frame(&ClientFrame::Close {
            session: id.clone(),
        }));
    }
    (lines.join("\n"), events)
}

/// Drives N concurrent synthetic sessions through the serve daemon's
/// deterministic replay engine, unbudgeted and under a starved global memo
/// budget, folding the daemon's `serve.verdict_ns` histogram into
/// verdict-latency percentiles (the ISSUE's p50/p95/p99 numbers).
fn serve_points(session_counts: &[usize]) -> Vec<ServePoint> {
    let mut out = Vec::new();
    for &sessions in session_counts {
        let (stream, events) = serve_frame_stream(sessions);
        // The starved budget apportions ~4 entries' worth of bytes per
        // session — far below the governor's floor, so every session runs
        // pinned at MIN_MEMO_CAP and the retune path stays hot.
        let starved = sessions as u64 * 4 * tm_serve::EST_ENTRY_BYTES;
        // Third point: the starved fleet again, but through a seeded
        // verdict-preserving chaos plan (torn/dropped/stalled frames plus
        // budget spikes) — the faults=on overhead `bench_trend` watches.
        for (budget, faults) in [(None, false), (Some(starved), false), (Some(starved), true)] {
            let plan = if faults {
                tm_serve::FaultPlan::generate(
                    0xC0FFEE ^ sessions as u64,
                    stream.lines().count(),
                    24,
                    tm_serve::faults::VERDICT_PRESERVING_KINDS,
                )
            } else {
                tm_serve::FaultPlan::new()
            };
            let obs = tm_obs::ObsHandle::install();
            let config = tm_serve::ServeConfig {
                memo_budget_bytes: budget,
                obs,
                fault_plan: plan,
                ..tm_serve::ServeConfig::default()
            };
            let t0 = Instant::now();
            let code = tm_serve::replay(config, &stream, &mut std::io::sink());
            let wall_ns = t0.elapsed().as_nanos();
            assert!(
                code <= 1,
                "the synthetic fleet must drain without crashing (exit {code})"
            );
            let snap = obs.snapshot().expect("installed sink");
            let (hist_p50_ns, hist_p95_ns, hist_p99_ns) = snap
                .histogram("serve.verdict_ns")
                .map(|h| (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99)))
                .unwrap_or_default();
            out.push(ServePoint {
                sessions,
                events,
                budget,
                faults,
                wall_ns,
                verdicts: snap.counter("serve.verdicts").unwrap_or(0),
                turns: snap.counter("serve.turns").unwrap_or(0),
                hist_p50_ns,
                hist_p95_ns,
                hist_p99_ns,
            });
        }
    }
    out
}

/// Renders `BENCH_serve.json` by hand (no serde in the tree).
fn serve_json(points: &[ServePoint]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str(
        "  \"workload\": \"interleaved random-history fleets through \
         tm_serve::replay (round-robin, one event per session per round)\",\n",
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let budget = p
            .budget
            .map_or("\"unbounded\"".to_string(), |b| b.to_string());
        let per_sec = p.verdicts as f64 / (p.wall_ns.max(1) as f64 / 1e9);
        out.push_str(&format!(
            "    {{\"sessions\": {}, \"events\": {}, \"budget\": {}, \"faults\": \"{}\", \
             \"wall_ns\": {}, \
             \"verdicts\": {}, \"turns\": {}, \"verdicts_per_sec\": {:.0}, \
             \"hist_p50_ns\": {}, \"hist_p95_ns\": {}, \"hist_p99_ns\": {}}}{}\n",
            p.sessions,
            p.events,
            budget,
            if p.faults { "on" } else { "off" },
            p.wall_ns,
            p.verdicts,
            p.turns,
            per_sec,
            p.hist_p50_ns,
            p.hist_p95_ns,
            p.hist_p99_ns,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders `BENCH_monitor.json` by hand (no serde in the tree).
fn monitor_json(points: &[MonitorPoint], jobs: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"monitor\",\n");
    out.push_str("  \"workload\": \"contention-knots (tm_bench::monitor_workload)\",\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let speedup = p.batch_ns as f64 / p.incremental_ns.max(1) as f64;
        let node_ratio = p.batch_nodes as f64 / p.incremental_nodes.max(1) as f64;
        out.push_str(&format!(
            "    {{\"events\": {}, \"incremental_ns\": {}, \"batch_ns\": {}, \
             \"incremental_nodes\": {}, \"batch_nodes\": {}, \
             \"speedup\": {:.2}, \"node_ratio\": {:.2}}}{}\n",
            p.events,
            p.incremental_ns,
            p.batch_ns,
            p.incremental_nodes,
            p.batch_nodes,
            speedup,
            node_ratio,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The warn-only CI probe: RT-chain at 1 and 4 workers, wall-clock ratio
/// and split counters to stdout, no artifacts.
fn rt_smoke() {
    let points = rt_chain_scaling_points(&[1, 4], 3, 3);
    let (one, four) = (&points[0], &points[1]);
    let ratio = one.wall_ns.max(1) as f64 / four.wall_ns.max(1) as f64;
    println!("rt-chain split-scaling smoke (3 knots × 3 writers)");
    println!(
        "  1 worker : {} nodes in {:.2} ms",
        one.nodes,
        one.wall_ns as f64 / 1e6
    );
    println!(
        "  4 workers: {} nodes in {:.2} ms ({} splits, {} donated tasks)",
        four.nodes,
        four.wall_ns as f64 / 1e6,
        four.splits,
        four.donated
    );
    println!("  scaling ratio (t1/t4): {ratio:.2}x");
    if four.donated == 0 {
        println!("  WARN: no donations happened — the splitter never engaged");
    } else if ratio < 1.1 {
        println!("  WARN: ratio below 1.1x — expected on few-core hosts, investigate otherwise");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--rt-smoke") {
        rt_smoke();
        return;
    }
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(default_jobs)
        .max(1);

    let specs = SpecRegistry::registers();
    println!("# opacity-tm experiment report\n");

    // ---- E1/E2: criteria table ------------------------------------------
    println!("## Criteria on the paper's histories (E1/E2)\n");
    println!("| history | serializable | strict-ser | recoverable | ACA | strict | rigorous | SI | opaque |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for (name, h) in [
        ("H1 (Fig. 1)", paper::h1()),
        ("H2", paper::h2()),
        ("H3", paper::h3()),
        ("H4", paper::h4()),
        ("H5 (Fig. 2)", paper::h5()),
    ] {
        let p = classify(&h, &specs).expect("paper histories are checkable");
        let si = tm_opacity::criteria::snapshot_isolated(&h, &specs).expect("registers");
        println!(
            "| {name} | {} | {} | {} | {} | {} | {} | {} | **{}** |",
            yesno(p.serializable),
            yesno(p.strictly_serializable),
            yesno(p.recoverable),
            yesno(p.avoids_cascading_aborts),
            yesno(p.strict),
            yesno(p.rigorous),
            yesno(si),
            yesno(p.opaque),
        );
    }

    // ---- E7: Theorem-2 cross-validation summary (sharded) ----------------
    println!("\n## Theorem 2 cross-validation (E7)\n");
    let config = GenConfig::default();
    let n = if quick { 100 } else { 400 };
    let cv = cross_validate(&config, 0, n, jobs);
    assert!(
        cv.disagreeing_seeds.is_empty(),
        "Theorem-2 disagreement on seeds {:?}",
        cv.disagreeing_seeds
    );
    // (The markdown stays machine-independent: worker count only goes to
    // the JSON artifact.)
    println!(
        "- definitional vs graph decider: **{}/{} agree** \
         ({} opaque, {} non-opaque)\n",
        cv.agree,
        cv.total,
        cv.opaque,
        cv.total - cv.opaque
    );

    // ---- E8: paper scenario ----------------------------------------------
    println!("## Theorem 3 — paper scenario, steps of T1's final read (E8)\n");
    let ks = [8usize, 32, 128, 512];
    let rows = sweep(&ks, true, paper_scenario);
    print!("| stm |");
    for k in ks {
        print!(" k={k} |");
    }
    println!(" T1 outcome |");
    print!("|---|");
    for _ in ks {
        print!("---|");
    }
    println!("---|");
    for name in [
        "dstm",
        "astm",
        "tl2",
        "visible",
        "tpl",
        "mvstm",
        "sistm",
        "nonopaque",
    ] {
        print!("| {name} |");
        let mut outcome = "";
        for k in ks {
            let r = rows.iter().find(|r| r.stm == name && r.k == k).unwrap();
            print!(" {} |", r.last_read_steps);
            outcome = if r.t1_committed { "commit" } else { "abort" };
        }
        println!(" {outcome} |");
    }

    // ---- E9: solo scan ----------------------------------------------------
    println!("\n## Theorem 3 — solo scan, total read steps per transaction (E9)\n");
    let rows = sweep(&ks, false, solo_scan);
    print!("| stm |");
    for k in ks {
        print!(" k={k} |");
    }
    println!();
    print!("|---|");
    for _ in ks {
        print!("---|");
    }
    println!();
    for name in [
        "glock",
        "dstm",
        "astm",
        "tl2",
        "visible",
        "tpl",
        "mvstm",
        "sistm",
        "nonopaque",
    ] {
        print!("| {name} |");
        for k in ks {
            let r = rows.iter().find(|r| r.stm == name && r.k == k).unwrap();
            print!(" {} |", r.total_read_steps);
        }
        println!();
    }

    // ---- monitor scaling study (resumable core vs batch re-checks) --------
    println!("\n## Online monitor: incremental vs re-check-from-scratch\n");
    let lens: &[usize] = if quick {
        &[32, 64]
    } else {
        &[16, 32, 64, 96, 128, 192]
    };
    let points = monitor_points(lens);
    println!("| events | incremental nodes | batch nodes | node ratio |");
    println!("|---|---|---|---|");
    for p in &points {
        println!(
            "| {} | {} | {} | {:.1}x |",
            p.events,
            p.incremental_nodes,
            p.batch_nodes,
            p.batch_nodes as f64 / p.incremental_nodes.max(1) as f64
        );
    }
    let json = monitor_json(&points, jobs);
    let path = "BENCH_monitor.json";
    std::fs::write(path, &json).expect("write BENCH_monitor.json");
    println!("\n_Wall-clock companion written to `{path}`._");

    // ---- per-object-type throughput (the typed-object layer) --------------
    println!("\n## Typed objects: committed storms per TM × object kind\n");
    let (threads, ops) = if quick { (2, 40) } else { (2, 150) };
    let tm_names: Vec<&'static str> = tm_stm::all_stms(1).iter().map(|s| s.name()).collect();
    let opoints = object_points(&tm_names, threads, ops);
    println!("| object | {} |", tm_names.join(" | "));
    print!("|---|");
    for _ in &tm_names {
        print!("---|");
    }
    println!();
    for kind in ObjectKind::ALL {
        print!("| {kind} |");
        for &name in &tm_names {
            let p = opoints
                .iter()
                .find(|p| p.object == kind.name() && p.tm == name)
                .expect("measured");
            // Commit counts are invariant-checked and machine-independent;
            // wall-clock goes to the JSON artifact only.
            print!(" {} |", p.commits);
        }
        println!();
    }
    let ojson = objects_json(&opoints);
    let opath = "BENCH_objects.json";
    std::fs::write(opath, &ojson).expect("write BENCH_objects.json");
    println!("\n_Wall-clock companion written to `{opath}`._");

    // ---- clock-scheme commit-throughput scaling ----------------------------
    println!("\n## Version clocks: commit-storm commits per tm × scheme × threads\n");
    let (thread_counts, storm_txs): (&[usize], usize) = if quick {
        (&[1, 2, 4], 60)
    } else {
        (&[1, 2, 4, 8, 16], 300)
    };
    let cpoints = clock_points(thread_counts, storm_txs);
    println!("| tm | clock | {} |", {
        let cols: Vec<String> = thread_counts.iter().map(|t| format!("t={t}")).collect();
        cols.join(" | ")
    });
    print!("|---|---|");
    for _ in thread_counts {
        print!("---|");
    }
    println!();
    for tm in ["tl2", "mvstm"] {
        for clock in ["single", "sharded:8", "deferred"] {
            print!("| {tm} | {clock} |");
            for &t in thread_counts {
                let p = cpoints
                    .iter()
                    .find(|p| p.tm == tm && p.clock == clock && p.threads == t)
                    .expect("measured");
                // Commit counts are invariant-checked (threads × txs, zero
                // aborts) and machine-independent; wall-clock commits/sec
                // goes to the JSON artifact only.
                print!(" {} |", p.commits);
            }
            println!();
        }
    }
    let cjson = clocks_json(&cpoints);
    let cpath = "BENCH_clocks.json";
    std::fs::write(cpath, &cjson).expect("write BENCH_clocks.json");
    println!("\n_Wall-clock companion written to `{cpath}`._");

    // ---- parallel search scaling + bounded-memo verdict latency -----------
    println!("\n## Serialization search: work-stealing scaling and bounded memo\n");
    let (worker_counts, knot_shape): (&[usize], (u32, u32)) = if quick {
        (&[1, 2, 4, 8], (3, 3))
    } else {
        (&[1, 2, 4, 8, 16], (3, 4))
    };
    let spoints = search_scaling_points(worker_counts, knot_shape.0, knot_shape.1);
    // Wall-clock scaling is machine-dependent and lives in the JSON; the
    // markdown records only the deterministic exploration size.
    println!(
        "- batch workload: {} concurrent knots × {} writers, {} DFS nodes \
         sequentially; per-worker node throughput and speedups in \
         `BENCH_search.json`",
        knot_shape.0, knot_shape.1, spoints[0].nodes
    );
    // The RT-chain study: root fan-out 1, so these points isolate the
    // depth-adaptive splitter (root-only splitting is provably flat here).
    let rt_workers: &[usize] = if quick {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let rt_shape = (3u32, 3u32);
    let rpoints = rt_chain_scaling_points(rt_workers, rt_shape.0, rt_shape.1);
    println!(
        "- RT-chain workload: {} chained knots × {} writers (root fan-out 1), \
         {} DFS nodes sequentially; split/donation counters and speedups in \
         `BENCH_search.json`",
        rt_shape.0, rt_shape.1, rpoints[0].nodes
    );
    // Batch bounded-memo study: deterministic node counts on the phased
    // knot workload (the cost-segmented-LRU acceptance numbers). Cheap
    // enough to run at full size even in quick mode — and the small shapes
    // sit too close to the expensive-spine cliff to be representative.
    let (mknots, mwriters) = (15u32, 3u32);
    let mpoints = search_memory_points(mknots, mwriters);
    println!("\n### Bounded memo, batch check ({mknots} phased knots × {mwriters} writers)\n");
    println!("| memo cap | resident | evictions | DFS nodes | node overhead |");
    println!("|---|---|---|---|---|");
    let membase = mpoints[0].nodes.max(1);
    for p in &mpoints {
        let cap = p.cap.map_or("unbounded".to_string(), |c| c.to_string());
        println!(
            "| {} | {} | {} | {} | {:+.1}% |",
            cap,
            p.resident,
            p.evictions,
            p.nodes,
            (p.nodes as f64 / membase as f64 - 1.0) * 100.0
        );
    }
    let monitor_events = if quick { 96 } else { 192 };
    let lpoints = search_latency_points(monitor_events, &[2, 4, 8]);
    println!(
        "\n### Verdict latency under the streaming monitor ({monitor_events} events; \
         wall-clock percentiles in the JSON)\n"
    );
    println!("| memo cap | peak resident | evictions | total nodes |");
    println!("|---|---|---|---|");
    for p in &lpoints {
        let cap = p.cap.map_or("unbounded".to_string(), |c| c.to_string());
        println!(
            "| {} | {} | {} | {} |",
            cap, p.resident, p.evictions, p.total_nodes
        );
    }
    let sjson = search_json(&spoints, &rpoints, &mpoints, &lpoints);
    let spath = "BENCH_search.json";
    std::fs::write(spath, &sjson).expect("write BENCH_search.json");
    println!("\n_Scaling + latency-percentile companion written to `{spath}`._");

    // ---- serve daemon: multiplexed verdict throughput and latency ----------
    println!("\n## Serve daemon: interleaved session fleets through replay\n");
    let serve_counts: &[usize] = if quick { &[16, 64] } else { &[16, 64, 256] };
    let vpoints = serve_points(serve_counts);
    // Verdict and turn counts are deterministic (replay is a pure function
    // of the frame stream); wall-clock and the serve.verdict_ns
    // percentiles go to the JSON artifact only.
    println!("| sessions | events | memo budget | faults | verdicts | scheduler turns |");
    println!("|---|---|---|---|---|---|");
    for p in &vpoints {
        let budget = p.budget.map_or("unbounded".to_string(), |b| b.to_string());
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            p.sessions,
            p.events,
            budget,
            if p.faults { "on" } else { "off" },
            p.verdicts,
            p.turns
        );
    }
    let vjson = serve_json(&vpoints);
    let vpath = "BENCH_serve.json";
    std::fs::write(vpath, &vjson).expect("write BENCH_serve.json");
    println!("\n_Verdict-latency percentile companion written to `{vpath}`._");

    println!(
        "\n_Exact deterministic base-object step counts; see EXPERIMENTS.md for interpretation._"
    );
}
