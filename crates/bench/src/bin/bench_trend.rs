//! `bench_trend` — diffs two `BENCH_monitor.json` artifacts and flags
//! regressions of the resumable-core advantage.
//!
//! ```sh
//! cargo run --release -p tm-bench --bin bench_trend -- \
//!     baseline/BENCH_monitor.json BENCH_monitor.json [--max-regression-pct 20]
//! ```
//!
//! The tracked quantity is each point's **node ratio** (batch search nodes /
//! incremental search nodes — deterministic, machine-independent, higher is
//! better). A point regresses when the current ratio drops more than the
//! threshold below the baseline ratio at the same history length. Exit
//! codes: `0` — no regression, `1` — regression detected, `2` — usage or
//! parse error. CI runs this as a warn-only step against the previous run's
//! cached artifact.

/// Extracts the leading JSON number after `"key":` in `line`.
fn field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let pos = line.find(&pat)?;
    let rest = line[pos + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses `(events, node_ratio)` pairs from a `BENCH_monitor.json` body
/// (one point object per line, as the `report` bin writes it).
fn extract_points(json: &str) -> Vec<(u64, f64)> {
    json.lines()
        .filter_map(|line| {
            let events = field(line, "events")? as u64;
            let ratio = field(line, "node_ratio")?;
            Some((events, ratio))
        })
        .collect()
}

/// One comparison row.
#[derive(Debug, PartialEq)]
struct Delta {
    events: u64,
    baseline: f64,
    current: f64,
}

impl Delta {
    /// Relative change of the node ratio (negative = worse).
    fn change_pct(&self) -> f64 {
        if self.baseline <= 0.0 {
            return 0.0;
        }
        (self.current - self.baseline) / self.baseline * 100.0
    }
}

/// Pairs up baseline and current points by history length.
fn compare(baseline: &[(u64, f64)], current: &[(u64, f64)]) -> Vec<Delta> {
    current
        .iter()
        .filter_map(|&(events, cur)| {
            let base = baseline.iter().find(|&&(e, _)| e == events)?.1;
            Some(Delta {
                events,
                baseline: base,
                current: cur,
            })
        })
        .collect()
}

fn main() {
    let mut max_regression_pct = 20.0f64;
    let mut files: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--max-regression-pct" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => max_regression_pct = v,
                None => {
                    eprintln!("bench_trend: --max-regression-pct needs a number");
                    std::process::exit(2);
                }
            }
        } else if arg.starts_with("--") {
            eprintln!("bench_trend: unknown flag '{arg}'");
            std::process::exit(2);
        } else {
            files.push(arg);
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        eprintln!("usage: bench_trend <baseline.json> <current.json> [--max-regression-pct N]");
        std::process::exit(2);
    };
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_trend: {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = extract_points(&read(baseline_path));
    let current = extract_points(&read(current_path));
    if baseline.is_empty() || current.is_empty() {
        eprintln!(
            "bench_trend: no (events, node_ratio) points found \
             (baseline: {}, current: {})",
            baseline.len(),
            current.len()
        );
        std::process::exit(2);
    }
    let deltas = compare(&baseline, &current);
    if deltas.is_empty() {
        eprintln!("bench_trend: no common history lengths between the two artifacts");
        std::process::exit(2);
    }
    println!("| events | baseline ratio | current ratio | change |");
    println!("|---|---|---|---|");
    let mut regressed = false;
    for d in &deltas {
        let change = d.change_pct();
        let flag = if change < -max_regression_pct {
            regressed = true;
            "  <-- REGRESSION"
        } else {
            ""
        };
        println!(
            "| {} | {:.2} | {:.2} | {:+.1}% |{flag}",
            d.events, d.baseline, d.current, change
        );
    }
    if regressed {
        eprintln!(
            "bench_trend: node-ratio regression beyond {max_regression_pct}% \
             — the incremental monitor lost ground against batch re-checking"
        );
        std::process::exit(1);
    }
    println!("bench_trend: within {max_regression_pct}% of baseline on all common points");
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "monitor",
  "jobs": 4,
  "points": [
    {"events": 32, "incremental_ns": 10, "batch_ns": 80, "incremental_nodes": 100, "batch_nodes": 800, "speedup": 8.00, "node_ratio": 8.00},
    {"events": 64, "incremental_ns": 10, "batch_ns": 120, "incremental_nodes": 100, "batch_nodes": 1200, "speedup": 12.00, "node_ratio": 12.00}
  ]
}"#;

    #[test]
    fn extracts_every_point() {
        assert_eq!(extract_points(SAMPLE), vec![(32, 8.0), (64, 12.0)]);
    }

    #[test]
    fn field_parses_ints_floats_and_negatives() {
        assert_eq!(field(r#"{"x": 42,"#, "x"), Some(42.0));
        assert_eq!(field(r#"{"x": -1.5}"#, "x"), Some(-1.5));
        assert_eq!(field(r#"{"y": 1}"#, "x"), None);
    }

    #[test]
    fn compare_pairs_by_history_length() {
        let base = vec![(32, 8.0), (64, 12.0), (96, 20.0)];
        let cur = vec![(32, 9.0), (64, 9.0), (128, 30.0)];
        let deltas = compare(&base, &cur);
        assert_eq!(deltas.len(), 2, "96 and 128 have no partner");
        assert!(deltas[0].change_pct() > 0.0, "32 improved");
        let drop = deltas[1].change_pct();
        assert!((-25.01..=-24.99).contains(&drop), "12 -> 9 is -25%: {drop}");
    }

    #[test]
    fn zero_baseline_does_not_divide() {
        let d = Delta {
            events: 1,
            baseline: 0.0,
            current: 5.0,
        };
        assert_eq!(d.change_pct(), 0.0);
    }
}
