//! `bench_trend` — diffs two `BENCH_*.json` artifacts of the same kind and
//! flags regressions of the tracked metric.
//!
//! ```sh
//! cargo run --release -p tm-bench --bin bench_trend -- \
//!     baseline/BENCH_monitor.json BENCH_monitor.json [--max-regression-pct 20]
//! ```
//!
//! Five artifact kinds are understood, keyed by their `"bench"` field:
//!
//! | kind | tracked metric (higher is better) | point key |
//! |------|-----------------------------------|-----------|
//! | `monitor` | `node_ratio` (batch / incremental search nodes — deterministic) | history length (`events`) |
//! | `typed-objects` | `commits_per_sec` of the typed storms | tm × object × threads |
//! | `clocks` | `commits_per_sec` of the commit storm | tm × clock × threads |
//! | `search` | `nodes_per_sec` of the parallel batch search | worker count, prefixed by the point's `workload` when present (e.g. `rt_chain/workers=8`) |
//! | `serve` | `verdicts_per_sec` of the multiplexed replay daemon | session count × memo budget |
//!
//! The `search` artifact's verdict-latency points additionally contribute
//! their folded `check.verdict_ns` histogram percentiles (`hist_p50_ns`,
//! `hist_p95_ns`) as **lower-is-better** trend points keyed
//! `latency/cap=…/…`; latency points without histogram fields (older
//! baselines) are skipped. The `serve` artifact's points do the same with
//! the daemon's `serve.verdict_ns` histogram, keyed
//! `latency/sessions=…/budget=…/…`. CI diffs these warn-only: timing
//! percentiles are noisier than the deterministic node counts.
//!
//! A point regresses when the current metric moves more than the threshold
//! in its bad direction (down for throughput-like metrics, up for
//! latency-like ones) against the baseline at the same key. Exit codes: `0` — no
//! regression, `1` — regression detected, `2` — usage or parse error
//! (including artifacts of different kinds). A **missing baseline file is
//! not an error**: a newly introduced artifact kind has no cached baseline
//! on its first CI run, so the tool prints an informational "no baseline"
//! line and exits `0`. CI runs this as a warn-only step against the
//! previous run's cached artifacts.

/// Extracts the leading JSON number after `"key":` in `line`.
fn field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let pos = line.find(&pat)?;
    let rest = line[pos + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the JSON string after `"key":` in `line`.
fn sfield(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let pos = line.find(&pat)?;
    let rest = line[pos + pat.len()..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// A keyed trend point with its improvement direction.
#[derive(Debug, PartialEq)]
struct Point {
    key: String,
    value: f64,
    /// `true` for latency-like metrics: a rise is the regression.
    lower_is_better: bool,
}

impl Point {
    fn higher(key: String, value: f64) -> Point {
        Point {
            key,
            value,
            lower_is_better: false,
        }
    }

    fn lower(key: String, value: f64) -> Point {
        Point {
            key,
            value,
            lower_is_better: true,
        }
    }
}

/// A parsed artifact: its kind plus keyed metric points.
#[derive(Debug, PartialEq)]
struct Artifact {
    kind: String,
    points: Vec<Point>,
}

/// Parses a `BENCH_*.json` body (one point object per line, as the
/// `report` bin writes them) into keyed metric points.
fn parse_artifact(json: &str) -> Option<Artifact> {
    let kind = json.lines().find_map(|l| sfield(l, "bench"))?;
    let mut points = Vec::new();
    for line in json.lines() {
        match kind.as_str() {
            "monitor" => {
                let Some(events) = field(line, "events") else {
                    continue;
                };
                if let Some(v) = field(line, "node_ratio") {
                    points.push(Point::higher(format!("events={}", events as u64), v));
                }
            }
            "typed-objects" => {
                let (Some(tm), Some(object), Some(threads)) = (
                    sfield(line, "tm"),
                    sfield(line, "object"),
                    field(line, "threads"),
                ) else {
                    continue;
                };
                if let Some(v) = field(line, "commits_per_sec") {
                    points.push(Point::higher(
                        format!("{tm}/{object}/t{}", threads as u64),
                        v,
                    ));
                }
            }
            "clocks" => {
                let (Some(tm), Some(clock), Some(threads)) = (
                    sfield(line, "tm"),
                    sfield(line, "clock"),
                    field(line, "threads"),
                ) else {
                    continue;
                };
                if let Some(v) = field(line, "commits_per_sec") {
                    points.push(Point::higher(
                        format!("{tm}+{clock}/t{}", threads as u64),
                        v,
                    ));
                }
            }
            "search" => {
                if let Some(workers) = field(line, "workers") {
                    // Scaling points. Points with a "workload" discriminator
                    // (e.g. rt_chain) are keyed per workload; legacy knot
                    // points keep the bare key.
                    let workers = workers as u64;
                    let key = match sfield(line, "workload") {
                        Some(w) => format!("{w}/workers={workers}"),
                        None => format!("workers={workers}"),
                    };
                    if let Some(v) = field(line, "nodes_per_sec") {
                        points.push(Point::higher(key, v));
                    }
                } else if field(line, "hist_count").is_some() {
                    // Verdict-latency points: the folded histogram
                    // percentiles trend lower-is-better, keyed per memo cap.
                    let cap = sfield(line, "cap")
                        .or_else(|| field(line, "cap").map(|c| (c as u64).to_string()))
                        .unwrap_or_else(|| "?".to_string());
                    for metric in ["hist_p50_ns", "hist_p95_ns"] {
                        if let Some(v) = field(line, metric) {
                            points.push(Point::lower(format!("latency/cap={cap}/{metric}"), v));
                        }
                    }
                }
            }
            "serve" => {
                let (Some(sessions), Some(budget)) = (
                    field(line, "sessions"),
                    sfield(line, "budget")
                        .or_else(|| field(line, "budget").map(|b| (b as u64).to_string())),
                ) else {
                    continue;
                };
                // faults=on points (chaos-plan overhead) trend separately;
                // faults=off (and legacy artifacts without the field) keep
                // the bare key so baselines stay comparable.
                let chaos = match sfield(line, "faults") {
                    Some(f) if f == "on" => "/faults=on",
                    _ => "",
                };
                let key = format!("sessions={}/budget={budget}{chaos}", sessions as u64);
                if let Some(v) = field(line, "verdicts_per_sec") {
                    points.push(Point::higher(key.clone(), v));
                }
                for metric in ["hist_p50_ns", "hist_p95_ns"] {
                    if let Some(v) = field(line, metric) {
                        points.push(Point::lower(format!("latency/{key}/{metric}"), v));
                    }
                }
            }
            _ => {}
        }
    }
    Some(Artifact { kind, points })
}

/// One comparison row.
#[derive(Debug, PartialEq)]
struct Delta {
    key: String,
    baseline: f64,
    current: f64,
    lower_is_better: bool,
}

impl Delta {
    /// Relative change of the metric (sign as measured; interpret via
    /// [`Delta::regressed`]).
    fn change_pct(&self) -> f64 {
        if self.baseline <= 0.0 {
            return 0.0;
        }
        (self.current - self.baseline) / self.baseline * 100.0
    }

    /// Did the metric move beyond `threshold_pct` in its bad direction?
    fn regressed(&self, threshold_pct: f64) -> bool {
        if self.lower_is_better {
            self.change_pct() > threshold_pct
        } else {
            self.change_pct() < -threshold_pct
        }
    }
}

/// Pairs up baseline and current points by key.
fn compare(baseline: &[Point], current: &[Point]) -> Vec<Delta> {
    current
        .iter()
        .filter_map(|cur| {
            let base = baseline.iter().find(|p| p.key == cur.key)?.value;
            Some(Delta {
                key: cur.key.clone(),
                baseline: base,
                current: cur.value,
                lower_is_better: cur.lower_is_better,
            })
        })
        .collect()
}

fn main() {
    let mut max_regression_pct = 20.0f64;
    let mut files: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--max-regression-pct" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => max_regression_pct = v,
                None => {
                    eprintln!("bench_trend: --max-regression-pct needs a number");
                    std::process::exit(2);
                }
            }
        } else if arg.starts_with("--") {
            eprintln!("bench_trend: unknown flag '{arg}'");
            std::process::exit(2);
        } else {
            files.push(arg);
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        eprintln!("usage: bench_trend <baseline.json> <current.json> [--max-regression-pct N]");
        std::process::exit(2);
    };
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_trend: {path}: {e}");
            std::process::exit(2);
        })
    };
    let parse = |path: &str| -> Artifact {
        parse_artifact(&read(path)).unwrap_or_else(|| {
            eprintln!("bench_trend: {path}: no \"bench\" kind found");
            std::process::exit(2);
        })
    };
    // A newly introduced artifact kind has no cached baseline on its first
    // run: that is information, not an error — report it (naming the kind,
    // read from the current artifact since the baseline is the missing
    // side) and succeed so CI seeds the cache without red noise.
    if !std::path::Path::new(baseline_path.as_str()).exists() {
        let current = parse(current_path);
        println!(
            "bench_trend: no baseline at {baseline_path} for the `{}` artifact — \
             first run for this kind; nothing to compare",
            current.kind
        );
        std::process::exit(0);
    }
    let baseline = parse(baseline_path);
    let current = parse(current_path);
    if baseline.kind != current.kind {
        eprintln!(
            "bench_trend: artifact kinds differ (baseline: {}, current: {})",
            baseline.kind, current.kind
        );
        std::process::exit(2);
    }
    if baseline.points.is_empty() || current.points.is_empty() {
        eprintln!(
            "bench_trend: no metric points found \
             (baseline: {}, current: {})",
            baseline.points.len(),
            current.points.len()
        );
        std::process::exit(2);
    }
    let metric = match current.kind.as_str() {
        "monitor" => "node ratio",
        "search" => "nodes/sec (or ns, lower-is-better on latency/ keys)",
        "serve" => "verdicts/sec (or ns, lower-is-better on latency/ keys)",
        _ => "commits/sec",
    };
    let deltas = compare(&baseline.points, &current.points);
    if deltas.is_empty() {
        eprintln!("bench_trend: no common point keys between the two artifacts");
        std::process::exit(2);
    }
    println!("| point | baseline {metric} | current {metric} | change |");
    println!("|---|---|---|---|");
    let mut regressed = false;
    for d in &deltas {
        let flag = if d.regressed(max_regression_pct) {
            regressed = true;
            "  <-- REGRESSION"
        } else {
            ""
        };
        println!(
            "| {} | {:.2} | {:.2} | {:+.1}% |{flag}",
            d.key,
            d.baseline,
            d.current,
            d.change_pct()
        );
    }
    if regressed {
        eprintln!(
            "bench_trend: {} {metric} regression beyond {max_regression_pct}%",
            current.kind
        );
        std::process::exit(1);
    }
    println!("bench_trend: within {max_regression_pct}% of baseline on all common points");
}

#[cfg(test)]
mod tests {
    use super::*;

    const MONITOR: &str = r#"{
  "bench": "monitor",
  "jobs": 4,
  "points": [
    {"events": 32, "incremental_ns": 10, "batch_ns": 80, "incremental_nodes": 100, "batch_nodes": 800, "speedup": 8.00, "node_ratio": 8.00},
    {"events": 64, "incremental_ns": 10, "batch_ns": 120, "incremental_nodes": 100, "batch_nodes": 1200, "speedup": 12.00, "node_ratio": 12.00}
  ]
}"#;

    const CLOCKS: &str = r#"{
  "bench": "clocks",
  "points": [
    {"tm": "tl2", "clock": "single", "threads": 8, "txs": 300, "commits": 2400, "aborts": 0, "wall_ns": 1000, "commits_per_sec": 2400000}
  ]
}"#;

    const OBJECTS: &str = r#"{
  "bench": "typed-objects",
  "points": [
    {"tm": "tl2", "object": "counter", "threads": 2, "ops": 150, "commits": 300, "aborts": 12, "wall_ns": 5, "commits_per_sec": 60000}
  ]
}"#;

    #[test]
    fn extracts_every_monitor_point() {
        let a = parse_artifact(MONITOR).unwrap();
        assert_eq!(a.kind, "monitor");
        assert_eq!(
            a.points,
            vec![
                Point::higher("events=32".to_string(), 8.0),
                Point::higher("events=64".to_string(), 12.0)
            ]
        );
    }

    const SEARCH: &str = r#"{
  "bench": "search",
  "points": [
    {"workers": 1, "wall_ns": 1000000, "nodes": 33076, "nodes_per_sec": 33076000, "speedup": 1.00},
    {"workers": 8, "wall_ns": 250000, "nodes": 33163, "nodes_per_sec": 132652000, "speedup": 4.00},
    {"workload": "rt_chain", "workers": 1, "wall_ns": 2000000, "nodes": 50000, "nodes_per_sec": 25000000, "speedup": 1.00, "splits": 0, "donated_tasks": 0},
    {"workload": "rt_chain", "workers": 8, "wall_ns": 400000, "nodes": 50100, "nodes_per_sec": 125250000, "speedup": 5.00, "splits": 40, "donated_tasks": 90},
    {"cap": "unbounded", "events": 192, "p50_ns": 900, "p95_ns": 4000, "p99_ns": 9000, "resident": 484, "evictions": 0, "total_nodes": 3567},
    {"cap": 121, "events": 192, "p50_ns": 950, "p95_ns": 4200, "p99_ns": 9400, "resident": 120, "evictions": 214, "total_nodes": 3789, "hist_count": 96, "hist_p50_ns": 1024, "hist_p95_ns": 4095, "hist_p99_ns": 8191}
  ]
}"#;

    #[test]
    fn extracts_search_scaling_points_and_latency_histograms() {
        let a = parse_artifact(SEARCH).unwrap();
        assert_eq!(a.kind, "search");
        assert_eq!(
            a.points,
            vec![
                Point::higher("workers=1".to_string(), 33_076_000.0),
                Point::higher("workers=8".to_string(), 132_652_000.0),
                Point::higher("rt_chain/workers=1".to_string(), 25_000_000.0),
                Point::higher("rt_chain/workers=8".to_string(), 125_250_000.0),
                Point::lower("latency/cap=121/hist_p50_ns".to_string(), 1024.0),
                Point::lower("latency/cap=121/hist_p95_ns".to_string(), 4095.0),
            ],
            "latency points trend only through their folded histogram \
             fields (lower-is-better); pre-histogram baselines are skipped; \
             rt_chain points get workload-prefixed keys"
        );
    }

    const SERVE: &str = r#"{
  "bench": "serve",
  "points": [
    {"sessions": 64, "events": 700, "budget": "unbounded", "wall_ns": 1000000, "verdicts": 700, "turns": 770, "verdicts_per_sec": 700000, "hist_p50_ns": 2047, "hist_p95_ns": 16383, "hist_p99_ns": 32767},
    {"sessions": 64, "events": 700, "budget": 65536, "wall_ns": 1250000, "verdicts": 700, "turns": 770, "verdicts_per_sec": 560000, "hist_p50_ns": 2047, "hist_p95_ns": 16383, "hist_p99_ns": 32767}
  ]
}"#;

    #[test]
    fn extracts_serve_throughput_and_latency_points() {
        let a = parse_artifact(SERVE).unwrap();
        assert_eq!(a.kind, "serve");
        assert_eq!(
            a.points,
            vec![
                Point::higher("sessions=64/budget=unbounded".to_string(), 700_000.0),
                Point::lower(
                    "latency/sessions=64/budget=unbounded/hist_p50_ns".to_string(),
                    2047.0
                ),
                Point::lower(
                    "latency/sessions=64/budget=unbounded/hist_p95_ns".to_string(),
                    16_383.0
                ),
                Point::higher("sessions=64/budget=65536".to_string(), 560_000.0),
                Point::lower(
                    "latency/sessions=64/budget=65536/hist_p50_ns".to_string(),
                    2047.0
                ),
                Point::lower(
                    "latency/sessions=64/budget=65536/hist_p95_ns".to_string(),
                    16_383.0
                ),
            ],
            "budgeted and unbudgeted rows key separately; the daemon's \
             serve.verdict_ns percentiles trend lower-is-better"
        );
    }

    #[test]
    fn extracts_clock_and_object_points() {
        let a = parse_artifact(CLOCKS).unwrap();
        assert_eq!(a.kind, "clocks");
        assert_eq!(
            a.points,
            vec![Point::higher("tl2+single/t8".to_string(), 2_400_000.0)]
        );
        let a = parse_artifact(OBJECTS).unwrap();
        assert_eq!(a.kind, "typed-objects");
        assert_eq!(
            a.points,
            vec![Point::higher("tl2/counter/t2".to_string(), 60_000.0)]
        );
        assert!(parse_artifact("{}").is_none());
    }

    #[test]
    fn field_parses_ints_floats_and_negatives() {
        assert_eq!(field(r#"{"x": 42,"#, "x"), Some(42.0));
        assert_eq!(field(r#"{"x": -1.5}"#, "x"), Some(-1.5));
        assert_eq!(field(r#"{"y": 1}"#, "x"), None);
        assert_eq!(sfield(r#"{"tm": "tl2","#, "tm"), Some("tl2".to_string()));
        assert_eq!(sfield(r#"{"tm": 3}"#, "tm"), None);
    }

    #[test]
    fn compare_pairs_by_key() {
        let keyed = |pairs: &[(&str, f64)]| -> Vec<Point> {
            pairs
                .iter()
                .map(|(k, v)| Point::higher(k.to_string(), *v))
                .collect()
        };
        let base = keyed(&[("a", 8.0), ("b", 12.0), ("c", 20.0)]);
        let cur = keyed(&[("a", 9.0), ("b", 9.0), ("d", 30.0)]);
        let deltas = compare(&base, &cur);
        assert_eq!(deltas.len(), 2, "c and d have no partner");
        assert!(deltas[0].change_pct() > 0.0, "a improved");
        let drop = deltas[1].change_pct();
        assert!((-25.01..=-24.99).contains(&drop), "12 -> 9 is -25%: {drop}");
    }

    #[test]
    fn regression_direction_follows_the_metric() {
        let throughput = Delta {
            key: "workers=8".to_string(),
            baseline: 100.0,
            current: 70.0,
            lower_is_better: false,
        };
        assert!(throughput.regressed(20.0), "-30% throughput regresses");
        let latency = Delta {
            key: "latency/cap=121/hist_p95_ns".to_string(),
            baseline: 100.0,
            current: 70.0,
            lower_is_better: true,
        };
        assert!(!latency.regressed(20.0), "-30% latency is an improvement");
        let latency_up = Delta {
            current: 130.0,
            ..latency
        };
        assert!(latency_up.regressed(20.0), "+30% latency regresses");
    }

    #[test]
    fn zero_baseline_does_not_divide() {
        let d = Delta {
            key: "x".to_string(),
            baseline: 0.0,
            current: 5.0,
            lower_is_better: false,
        };
        assert_eq!(d.change_pct(), 0.0);
    }
}
