//! The `monitor` bench: the resumable online monitor against batch
//! re-check-from-scratch on growing histories.
//!
//! `incremental/N` feeds the standard contention-knot workload
//! ([`tm_bench::monitor_workload`]) event by event through one
//! `OpacityMonitor`, whose `SearchCore` keeps its memo table and witness
//! across checks. `batch/N` re-runs the one-shot checker on every
//! response-event prefix — exactly what the monitor did before the
//! pipeline refactor. The machine-independent companion numbers (node
//! counts, ratio) are emitted by the `report` bin into
//! `BENCH_monitor.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tm_bench::monitor_workload;
use tm_model::SpecRegistry;
use tm_opacity::incremental::OpacityMonitor;
use tm_opacity::opacity::is_opaque;

fn bench_incremental_vs_batch(c: &mut Criterion) {
    let specs = SpecRegistry::registers();
    let mut group = c.benchmark_group("monitor");
    group.sample_size(20);
    for len in [32usize, 64, 128] {
        let h = monitor_workload(len);
        group.bench_with_input(BenchmarkId::new("incremental", len), &h, |b, h| {
            b.iter(|| {
                let mut m = OpacityMonitor::new(&specs);
                m.feed_all(h).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("batch", len), &h, |b, h| {
            b.iter(|| {
                let mut violations = 0;
                for i in 0..h.len() {
                    if h.events()[i].is_response()
                        && !is_opaque(&h.prefix(i + 1), &specs).unwrap().opaque
                    {
                        violations += 1;
                    }
                }
                violations
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_batch);
criterion_main!(benches);
