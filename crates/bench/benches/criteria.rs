//! Criteria-suite benchmark: the relative cost of deciding each criterion
//! of the Section-3 lattice (plus snapshot isolation and the Theorem-2
//! graph decider) on the same histories, and the online-monitor ablation.
//!
//! Two practical questions this answers:
//!
//! * **what does opacity cost over serializability?** — both are
//!   permutation searches; opacity additionally places aborted/live
//!   transactions, SI additionally chooses snapshot points;
//! * **is incremental monitoring cheaper than re-checking every prefix?**
//!   — the monitor skips invocation events and reuses nothing else; this
//!   quantifies how much the skip argument buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tm_bench::{chain_history, mixed_history};
use tm_harness::{random_history, GenConfig};
use tm_model::SpecRegistry;
use tm_opacity::criteria::{
    is_serializable, is_strictly_serializable, snapshot_isolated, ScheduleProperties,
};
use tm_opacity::graphcheck::decide_via_graph;
use tm_opacity::incremental::OpacityMonitor;
use tm_opacity::opacity::is_opaque;

fn bench_criteria_suite(c: &mut Criterion) {
    let specs = SpecRegistry::registers();
    let mut group = c.benchmark_group("criteria/suite");
    let h = random_history(
        &GenConfig {
            txs: 5,
            objs: 3,
            max_ops: 4,
            noise: 0.2,
            commit_pending: 0.1,
            abort: 0.2,
        },
        7,
    );
    group.bench_function("opacity", |b| {
        b.iter(|| is_opaque(&h, &specs).unwrap().opaque)
    });
    group.bench_function("serializability", |b| {
        b.iter(|| is_serializable(&h, &specs).unwrap())
    });
    group.bench_function("strict_serializability", |b| {
        b.iter(|| is_strictly_serializable(&h, &specs).unwrap())
    });
    group.bench_function("snapshot_isolation", |b| {
        b.iter(|| snapshot_isolated(&h, &specs).unwrap())
    });
    group.bench_function("recoverability_family", |b| {
        b.iter(|| ScheduleProperties::of(&h))
    });
    group.bench_function("graph_decider", |b| {
        b.iter(|| decide_via_graph(&h, &specs, 8).unwrap().opaque())
    });
    group.finish();
}

fn bench_monitor_vs_offline(c: &mut Criterion) {
    let specs = SpecRegistry::registers();
    let mut group = c.benchmark_group("criteria/monitor_ablation");
    group.sample_size(20);
    for n in [4u32, 8, 12] {
        for (name, h) in [("chain", chain_history(n)), ("mixed", mixed_history(n))] {
            group.bench_with_input(BenchmarkId::new(format!("online_{name}"), n), &h, |b, h| {
                b.iter(|| {
                    let mut monitor = OpacityMonitor::new(&specs);
                    monitor.feed_all(h).unwrap()
                })
            });
            group.bench_with_input(
                BenchmarkId::new(format!("offline_per_prefix_{name}"), n),
                &h,
                |b, h| {
                    b.iter(|| {
                        // The naive alternative: a fresh full check after
                        // every event.
                        let mut bad = None;
                        for i in 1..=h.len() {
                            if !is_opaque(&h.prefix(i), &specs).unwrap().opaque {
                                bad = Some(i);
                                break;
                            }
                        }
                        bad
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_si_scaling(c: &mut Criterion) {
    let specs = SpecRegistry::registers();
    let mut group = c.benchmark_group("criteria/si_scaling");
    group.sample_size(20);
    for txs in [3usize, 4, 5, 6] {
        let h = random_history(
            &GenConfig {
                txs,
                objs: 3,
                max_ops: 3,
                noise: 0.2,
                commit_pending: 0.1,
                abort: 0.2,
            },
            11,
        );
        group.bench_with_input(BenchmarkId::from_parameter(txs), &h, |b, h| {
            b.iter(|| snapshot_isolated(h, &specs).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_criteria_suite,
    bench_monitor_vs_offline,
    bench_si_scaling
);
criterion_main!(benches);
