//! `clocks/*` — commit-throughput scaling of the pluggable version-clock
//! schemes (the ROADMAP's "sharded version clocks" item, measured).
//!
//! The workload is `tm_harness::workload::commit_storm`: every thread
//! commits tiny update transactions on its own register, so data conflicts
//! are impossible and the only shared hot spot is the commit path — for
//! the timestamp-based TMs, the global version clock. `single` (GV1)
//! serializes every commit on one cache line; `sharded:N` (GV5-style)
//! spreads ticks across per-thread home shards; `deferred` (GV4) never
//! re-contends after a lost CAS. The machine-readable companion
//! (`BENCH_clocks.json`, commits/sec per tm × clock × threads) is written
//! by the `report` bin and diffed across runs by `bench_trend`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use tm_harness::workload::commit_storm;
use tm_stm::{ClockScheme, StmConfig, TmRegistry};

fn bench_clock_commit_scaling(c: &mut Criterion) {
    let txs = 200usize;
    let reg = TmRegistry::suite();
    for tm in ["tl2", "mvstm"] {
        let mut group = c.benchmark_group(format!("clocks/{tm}"));
        group.sample_size(10);
        for scheme in [
            ClockScheme::Single,
            ClockScheme::Sharded(8),
            ClockScheme::Deferred,
        ] {
            for threads in [1usize, 2, 4, 8, 16] {
                group.throughput(Throughput::Elements((threads * txs) as u64));
                let spec = format!("{tm}+{scheme}");
                let reg = &reg;
                group.bench_function(BenchmarkId::new(scheme.to_string(), threads), |b| {
                    b.iter(|| {
                        // Registry-built with recording off from
                        // construction: the hot path must pay zero
                        // recording overhead (asserted below).
                        let cfg = StmConfig::new(threads).recording(false);
                        let stm = reg.build_with(&spec, &cfg).expect("clocked TM spec");
                        let stats = commit_storm(stm.as_ref(), threads, txs);
                        assert_eq!(stats.aborts, 0, "{spec}: disjoint writes conflicted");
                        assert!(
                            stm.recorder().is_empty(),
                            "{spec}: recording-off run allocated events"
                        );
                        stats
                    })
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_clock_commit_scaling);
criterion_main!(benches);
