//! The `search` bench: the parallel, memory-bounded serialization search.
//!
//! `search/workers/N` runs the batch opacity check of the concurrent
//! contention-knot workload ([`tm_bench::search_knot_history`]) with `N`
//! work-stealing workers (`SearchConfig::search_jobs`). The workload is
//! non-opaque by construction, so every run exhausts the same
//! serialization space — wall-clock differences are pure parallel-search
//! scaling, with no early-exit variance. `search/rt-chain/N` does the same
//! on the realtime-chained knot ([`tm_bench::rt_chain_knot_history`]),
//! whose root fan-out is exactly 1: it scales only through depth-adaptive
//! subtree donation, never through the root split.
//! `search/obs/{disabled,enabled}` reprices the sequential check with the
//! observability handle off (the default no-op path, which must stay at
//! noise level) and with a live metrics sink attached.
//! `search/memo-cap/C` runs the same
//! check under a bounded dead-end table, measuring what eviction-induced
//! re-exploration costs at each capacity. The machine-readable companion
//! numbers (node throughput per worker count, verdict-latency percentiles
//! under a streaming monitor at several caps) are emitted by the `report`
//! bin into `BENCH_search.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tm_bench::{rt_chain_knot_history, search_knot_history, sequential_knot_search};
use tm_model::SpecRegistry;
use tm_opacity::search::Search;
use tm_opacity::{SearchConfig, SearchMode};

fn bench_worker_scaling(c: &mut Criterion) {
    let specs = SpecRegistry::registers();
    let h = search_knot_history(3, 3);
    let mut group = c.benchmark_group("search");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8, 16] {
        let config = SearchConfig {
            search_jobs: workers,
            ..SearchConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("workers", workers), &h, |b, h| {
            b.iter(|| {
                let out = Search::new(h, &specs, SearchMode::OPACITY, config)
                    .expect("workload is well-formed")
                    .run()
                    .expect("workload is checkable");
                assert!(!out.holds(), "the knot workload must stay non-opaque");
                out.stats.nodes
            })
        });
    }
    // The observability axis: the identical sequential check with the
    // handle disabled (the default — no sink, every call a no-op on a
    // Copy handle) and with a live sink installed. CI tracks the pair
    // warn-only; the disabled point must price at noise level (<2% of
    // the uninstrumented baseline), the enabled point prices the
    // per-check fold plus the per-kilonode liveness tick.
    for (label, config) in [
        ("disabled", SearchConfig::default()),
        (
            "enabled",
            SearchConfig {
                obs: tm_obs::ObsHandle::install(),
                ..SearchConfig::default()
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("obs", label), &h, |b, h| {
            b.iter(|| {
                let out = Search::new(h, &specs, SearchMode::OPACITY, config)
                    .expect("workload is well-formed")
                    .run()
                    .expect("workload is checkable");
                assert!(!out.holds(), "the knot workload must stay non-opaque");
                out.stats.nodes
            })
        });
    }
    // The RT-chained knot has root fan-out exactly 1, so any scaling here
    // comes purely from depth-adaptive subtree donation — the root-only
    // split is provably flat on this shape. Splitting stays at its default
    // window; only the worker count varies.
    let hrt = rt_chain_knot_history(3, 3);
    for workers in [1usize, 2, 4, 8] {
        let config = SearchConfig {
            search_jobs: workers,
            ..SearchConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("rt-chain", workers), &hrt, |b, h| {
            b.iter(|| {
                let out = Search::new(h, &specs, SearchMode::OPACITY, config)
                    .expect("workload is well-formed")
                    .run()
                    .expect("workload is checkable");
                assert!(!out.holds(), "the RT-chain workload must stay non-opaque");
                out.stats.nodes
            })
        });
    }
    // The bounded-memo axis rides the phased workload, whose peak table
    // dwarfs its live working set — the shape a capacity bound is for.
    // The peak is MEASURED from an unbounded run (a batch check never
    // invalidates mid-check, so the final resident count is the peak);
    // caps are the full peak, a half, and a quarter (the <20%-overhead
    // acceptance point), labeled by fraction so bench IDs stay stable if
    // the workload or engine shifts the absolute size.
    let hp = sequential_knot_search(15, 3);
    let peak = {
        let mut s =
            tm_opacity::CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
        for e in hp.events() {
            s.extend(e).expect("workload is well-formed");
        }
        assert!(!s.check().expect("workload is checkable").holds());
        s.memo_resident().max(4)
    };
    for (label, cap) in [("full", peak), ("half", peak / 2), ("quarter", peak / 4)] {
        let config = SearchConfig {
            memo_capacity: Some(cap),
            ..SearchConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("memo-cap", label), &hp, |b, h| {
            b.iter(|| {
                let out = Search::new(h, &specs, SearchMode::OPACITY, config)
                    .expect("workload is well-formed")
                    .run()
                    .expect("workload is checkable");
                assert!(!out.holds());
                out.stats.nodes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_worker_scaling);
criterion_main!(benches);
