//! E8/E9 — the Theorem-3 lower-bound scenarios as wall-clock benchmarks.
//!
//! The *step counts* (the quantity the theorem bounds) are exact and printed
//! by `cargo run --release --example lower_bound`; this bench confirms the
//! same separation shows up in wall-clock time: DSTM's per-operation cost
//! grows with k, everyone else's stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tm_harness::complexity::{paper_scenario, solo_scan};
use tm_stm::{AstmStm, DstmStm, MvStm, NonOpaqueStm, SiStm, Stm, Tl2Stm, TplStm, VisibleStm};

type StmFactory = fn(usize) -> Box<dyn Stm>;

fn stm_factories() -> Vec<(&'static str, StmFactory)> {
    vec![
        ("dstm", |k| Box::new(DstmStm::new(k)) as Box<dyn Stm>),
        ("astm", |k| Box::new(AstmStm::new(k)) as Box<dyn Stm>),
        ("tl2", |k| Box::new(Tl2Stm::new(k)) as Box<dyn Stm>),
        ("visible", |k| Box::new(VisibleStm::new(k)) as Box<dyn Stm>),
        ("mvstm", |k| Box::new(MvStm::new(k)) as Box<dyn Stm>),
        ("nonopaque", |k| {
            Box::new(NonOpaqueStm::new(k)) as Box<dyn Stm>
        }),
        ("sistm", |k| Box::new(SiStm::new(k)) as Box<dyn Stm>),
        ("tpl", |k| Box::new(TplStm::new(k)) as Box<dyn Stm>),
    ]
}

fn bench_paper_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_scenario");
    group.sample_size(20);
    for k in [16usize, 64, 256] {
        for (name, make) in stm_factories() {
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, &k| {
                b.iter(|| {
                    let stm = make(k);
                    stm.recorder().set_enabled(false);
                    paper_scenario(stm.as_ref(), k)
                });
            });
        }
    }
    group.finish();
}

fn bench_solo_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("solo_scan");
    group.sample_size(20);
    for k in [16usize, 64, 256] {
        for (name, make) in stm_factories() {
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, &k| {
                b.iter(|| {
                    let stm = make(k);
                    stm.recorder().set_enabled(false);
                    solo_scan(stm.as_ref(), k)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_paper_scenario, bench_solo_scan);
criterion_main!(benches);
