//! Model-layer micro-benchmarks: the primitives every checker invocation is
//! built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tm_bench::{chain_history, mixed_history};
use tm_model::builder::paper;
use tm_model::{
    all_txs_legal, check_well_formed, complete_histories, RealTimeOrder, SpecRegistry, TxId,
};

fn bench_well_formedness(c: &mut Criterion) {
    let mut group = c.benchmark_group("model/well_formed");
    for n in [8u32, 32, 128] {
        let h = chain_history(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| check_well_formed(h).is_ok())
        });
    }
    group.finish();
}

fn bench_projection(c: &mut Criterion) {
    let h = chain_history(64);
    c.bench_function("model/per_tx_projection", |b| {
        b.iter(|| h.per_tx(TxId(32)).len())
    });
    c.bench_function("model/tx_view", |b| {
        b.iter(|| h.tx_view(TxId(32)).ops.len())
    });
}

fn bench_real_time_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("model/real_time");
    for n in [8u32, 32, 128] {
        let h = chain_history(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| RealTimeOrder::of(h).pairs().len())
        });
    }
    group.finish();
}

fn bench_legality(c: &mut Criterion) {
    let specs = SpecRegistry::registers();
    let mut group = c.benchmark_group("model/legality");
    for n in [8u32, 32, 128] {
        let h = chain_history(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| all_txs_legal(h, &specs).is_ok())
        });
    }
    group.finish();
}

fn bench_completions(c: &mut Criterion) {
    let h4 = paper::h4();
    c.bench_function("model/completions_h4", |b| {
        b.iter(|| complete_histories(&h4).len())
    });
}

fn bench_equivalence(c: &mut Criterion) {
    let a = mixed_history(16);
    let b2 = mixed_history(16);
    c.bench_function("model/equivalence_16", |b| b.iter(|| a.equivalent(&b2)));
}

criterion_group!(
    benches,
    bench_well_formedness,
    bench_projection,
    bench_real_time_order,
    bench_legality,
    bench_completions,
    bench_equivalence
);
criterion_main!(benches);
