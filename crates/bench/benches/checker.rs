//! E13 — checker scalability and the memoization ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashSet;

use tm_bench::{blind_writers_history, chain_history, mixed_history};
use tm_harness::randhist::{random_history, GenConfig};
use tm_model::builder::paper;
use tm_model::SpecRegistry;
use tm_opacity::graph::{build_opg, with_initial_tx, INIT_TX};
use tm_opacity::incremental::OpacityMonitor;
use tm_opacity::opacity::{is_opaque, is_opaque_with};
use tm_opacity::SearchConfig;

fn bench_paper_histories(c: &mut Criterion) {
    let specs = SpecRegistry::registers();
    let mut group = c.benchmark_group("checker/paper");
    for (name, h) in [
        ("h1_not_opaque", paper::h1()),
        ("h4_commit_pending", paper::h4()),
        ("h5_opaque", paper::h5()),
    ] {
        group.bench_function(name, |b| b.iter(|| is_opaque(&h, &specs).unwrap().opaque));
    }
    group.finish();
}

fn bench_history_size_scaling(c: &mut Criterion) {
    let specs = SpecRegistry::registers();
    let mut group = c.benchmark_group("checker/size");
    for n in [4u32, 8, 12, 16] {
        let chain = chain_history(n);
        group.bench_with_input(BenchmarkId::new("chain", n), &chain, |b, h| {
            b.iter(|| is_opaque(h, &specs).unwrap().opaque)
        });
        let mixed = mixed_history(n);
        group.bench_with_input(BenchmarkId::new("mixed", n), &mixed, |b, h| {
            b.iter(|| is_opaque(h, &specs).unwrap().opaque)
        });
    }
    group.finish();
}

fn bench_memoization_ablation(c: &mut Criterion) {
    let specs = SpecRegistry::registers();
    let mut group = c.benchmark_group("checker/memo_ablation");
    group.sample_size(10);
    // Blind writers: factorial orders, tiny state space — memo's best case.
    for n in [6u32, 8] {
        let h = blind_writers_history(n);
        group.bench_with_input(BenchmarkId::new("memo_on", n), &h, |b, h| {
            b.iter(|| {
                is_opaque_with(
                    h,
                    &specs,
                    SearchConfig {
                        memoize: true,
                        node_limit: None,
                        ..SearchConfig::default()
                    },
                )
                .unwrap()
                .opaque
            })
        });
        group.bench_with_input(BenchmarkId::new("memo_off", n), &h, |b, h| {
            b.iter(|| {
                is_opaque_with(
                    h,
                    &specs,
                    SearchConfig {
                        memoize: false,
                        node_limit: Some(10_000_000),
                        ..SearchConfig::default()
                    },
                )
                .unwrap()
                .opaque
            })
        });
    }
    group.finish();
}

fn bench_random_histories(c: &mut Criterion) {
    let specs = SpecRegistry::registers();
    let config = GenConfig::default();
    let histories: Vec<_> = (0..32).map(|s| random_history(&config, s)).collect();
    c.bench_function("checker/random_batch_32", |b| {
        b.iter(|| {
            histories
                .iter()
                .filter(|h| is_opaque(h, &specs).unwrap().opaque)
                .count()
        })
    });
}

fn bench_opg_construction(c: &mut Criterion) {
    let specs = SpecRegistry::registers();
    let h5 = with_initial_tx(&paper::h5(), &specs);
    let order = vec![
        INIT_TX,
        tm_model::TxId(2),
        tm_model::TxId(1),
        tm_model::TxId(3),
    ];
    let v = HashSet::new();
    c.bench_function("checker/opg_build_h5", |b| {
        b.iter(|| {
            let g = build_opg(&h5, &order, &v);
            g.is_well_formed() && g.is_acyclic()
        })
    });
}

fn bench_online_monitor(c: &mut Criterion) {
    let specs = SpecRegistry::registers();
    let h = chain_history(8);
    c.bench_function("checker/monitor_chain8", |b| {
        b.iter(|| {
            let mut m = OpacityMonitor::new(&specs);
            m.feed_all(&h).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_paper_histories,
    bench_history_size_scaling,
    bench_memoization_ablation,
    bench_random_histories,
    bench_opg_construction,
    bench_online_monitor
);
criterion_main!(benches);
