//! E14 — throughput and abort behaviour across the TM design space.
//!
//! Supports the paper's framing of the safety/performance trade-off
//! (Section 1): the non-opaque TM and TL2 buy cheap operations, DSTM pays
//! validation, visible reads pay on writes, the global lock serializes
//! everything.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use tm_harness::workload::{bank, counter, read_mostly, typed_storm};
use tm_harness::ObjectKind;
use tm_stm::objects::TypedStm;
use tm_stm::{
    AstmStm, ContentionManager, DstmStm, GlockStm, MvStm, NonOpaqueStm, SiStm, Stm, Tl2Stm, TplStm,
    VisibleStm,
};

type StmFactory = fn(usize) -> Box<dyn Stm>;

fn stm_factories() -> Vec<(&'static str, StmFactory)> {
    vec![
        ("glock", |k| Box::new(GlockStm::new(k)) as Box<dyn Stm>),
        ("tl2", |k| Box::new(Tl2Stm::new(k)) as Box<dyn Stm>),
        ("dstm", |k| Box::new(DstmStm::new(k)) as Box<dyn Stm>),
        ("astm", |k| Box::new(AstmStm::new(k)) as Box<dyn Stm>),
        ("visible", |k| Box::new(VisibleStm::new(k)) as Box<dyn Stm>),
        ("mvstm", |k| Box::new(MvStm::new(k)) as Box<dyn Stm>),
        ("nonopaque", |k| {
            Box::new(NonOpaqueStm::new(k)) as Box<dyn Stm>
        }),
        ("sistm", |k| Box::new(SiStm::new(k)) as Box<dyn Stm>),
        ("tpl", |k| Box::new(TplStm::new(k)) as Box<dyn Stm>),
    ]
}

fn bench_bank(c: &mut Criterion) {
    let transfers = 200usize;
    let threads = 2usize;
    let mut group = c.benchmark_group("throughput/bank");
    group.sample_size(10);
    group.throughput(Throughput::Elements((threads * transfers) as u64));
    for (name, make) in stm_factories() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let stm = make(16);
                stm.recorder().set_enabled(false);
                bank(stm.as_ref(), threads, 16, transfers, 42)
            })
        });
    }
    group.finish();
}

fn bench_counter(c: &mut Criterion) {
    let increments = 200usize;
    let threads = 2usize;
    let mut group = c.benchmark_group("throughput/counter");
    group.sample_size(10);
    group.throughput(Throughput::Elements((threads * increments) as u64));
    for (name, make) in stm_factories() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let stm = make(1);
                stm.recorder().set_enabled(false);
                counter(stm.as_ref(), threads, increments)
            })
        });
    }
    group.finish();
}

fn bench_read_mostly(c: &mut Criterion) {
    let txs = 200usize;
    let threads = 2usize;
    let mut group = c.benchmark_group("throughput/read_mostly");
    group.sample_size(10);
    group.throughput(Throughput::Elements((threads * txs) as u64));
    for (name, make) in stm_factories() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let stm = make(64);
                stm.recorder().set_enabled(false);
                read_mostly(stm.as_ref(), threads, txs, 8, 10, 7)
            })
        });
    }
    group.finish();
}

/// The per-object-type throughput suite: every TM serving every typed
/// object family through the `tm_stm::objects` encoding layer — the cost
/// of rich semantics per TM, measured as committed object transactions.
fn bench_typed_objects(c: &mut Criterion) {
    let ops = 100usize;
    let threads = 2usize;
    for kind in ObjectKind::ALL {
        let mut group = c.benchmark_group(format!("throughput/objects/{kind}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements((threads * ops) as u64));
        for (name, make) in stm_factories() {
            group.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter(|| {
                    let typed = TypedStm::new(kind.standard_space(threads * ops), make);
                    typed.stm().recorder().set_enabled(false);
                    typed_storm(&typed, kind, threads, ops)
                })
            });
        }
        group.finish();
    }
}

fn bench_contention_manager_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput/cm_ablation");
    group.sample_size(10);
    for (name, cm) in [
        ("aggressive", ContentionManager::Aggressive),
        ("timid", ContentionManager::Timid),
        ("karma", ContentionManager::Karma),
        ("greedy", ContentionManager::Greedy),
    ] {
        group.bench_function(BenchmarkId::new("dstm_bank", name), |b| {
            b.iter(|| {
                let stm = DstmStm::with_cm(16, cm);
                stm.recorder().set_enabled(false);
                bank(&stm, 2, 16, 100, 42)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bank,
    bench_counter,
    bench_read_mostly,
    bench_typed_objects,
    bench_contention_manager_ablation
);
criterion_main!(benches);
