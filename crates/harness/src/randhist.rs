//! Random well-formed history generation.
//!
//! Fuel for the Theorem-2 cross-validation (experiment E7): generate many
//! small register histories — some opaque, some subtly broken — and check
//! that the definitional checker (Definition 1) and the graph checker
//! (Theorem 2) always agree.
//!
//! The generator maintains the per-transaction well-formedness automaton and
//! emits events at op granularity, with knobs for:
//!
//! * how often reads return *plausible* values (initial value or some value
//!   written earlier to the object — near-miss histories that stress the
//!   checkers) versus the *currently expected* committed value;
//! * how many transactions are left live / commit-pending at the end;
//! * unique writes (every write value is globally fresh), so the graph
//!   characterization's precondition holds by construction.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use tm_model::{History, HistoryBuilder};

/// Configuration of the random-history generator.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of transactions.
    pub txs: usize,
    /// Number of registers (named `x0..`).
    pub objs: usize,
    /// Operations attempted per transaction (uniform 1..=max).
    pub max_ops: usize,
    /// Probability that a read returns a random previously-written value (or
    /// the initial 0) instead of the best-guess current value.
    pub noise: f64,
    /// Probability that a transaction is left commit-pending (tryC with no
    /// response) instead of completed.
    pub commit_pending: f64,
    /// Probability that a completed transaction aborts instead of commits.
    pub abort: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            txs: 4,
            objs: 3,
            max_ops: 4,
            noise: 0.25,
            commit_pending: 0.15,
            abort: 0.2,
        }
    }
}

/// Generates one random well-formed register history from `seed`.
///
/// Writes are globally unique (value = `100·tx + seq`), so the history
/// satisfies the unique-writes precondition of the graph characterization.
pub fn random_history(config: &GenConfig, seed: u64) -> History {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = HistoryBuilder::new();

    // Per-transaction state.
    #[derive(Clone)]
    struct TxState {
        id: u32,
        ops_left: usize,
        done: bool,
        write_seq: i64,
    }
    let mut txs: Vec<TxState> = (1..=config.txs as u32)
        .map(|id| TxState {
            id,
            ops_left: rng.gen_range(1..=config.max_ops),
            done: false,
            write_seq: 0,
        })
        .collect();

    // Values written to each object so far (any tx), for plausible reads.
    let mut written: Vec<Vec<i64>> = vec![vec![]; config.objs];
    // A naive guess of each object's "current" value: last written by a
    // committed-or-any transaction (the generator does not simulate a real
    // TM — noise is the point).
    let mut current: Vec<i64> = vec![0; config.objs];
    let obj_name = |o: usize| format!("x{o}");

    while txs.iter().any(|t| !t.done) {
        let alive: Vec<usize> = txs
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.done)
            .map(|(i, _)| i)
            .collect();
        let &ti = alive.choose(&mut rng).expect("some tx alive");
        let (id, finish) = {
            let t = &mut txs[ti];
            if t.ops_left == 0 {
                (t.id, true)
            } else {
                t.ops_left -= 1;
                (t.id, false)
            }
        };
        if finish {
            txs[ti].done = true;
            if rng.gen_bool(config.commit_pending) {
                b = b.try_commit(id);
            } else if rng.gen_bool(config.abort) {
                b = b.try_commit(id).abort(id);
            } else {
                b = b.try_commit(id).commit(id);
            }
            continue;
        }
        let o = rng.gen_range(0..config.objs);
        let name = obj_name(o);
        if rng.gen_bool(0.5) {
            // Read: plausible-noisy or best-guess.
            let v = if rng.gen_bool(config.noise) {
                let mut candidates = written[o].clone();
                candidates.push(0);
                *candidates.choose(&mut rng).expect("nonempty")
            } else {
                current[o]
            };
            b = b.read(id, &name, v);
        } else {
            let t = &mut txs[ti];
            t.write_seq += 1;
            let v = 100 * id as i64 + t.write_seq;
            written[o].push(v);
            current[o] = v;
            b = b.write(id, &name, v);
        }
    }
    b.build()
}

/// Generates `n` histories with consecutive seeds.
pub fn batch(config: &GenConfig, base_seed: u64, n: usize) -> Vec<History> {
    (0..n)
        .map(|i| random_history(config, base_seed + i as u64))
        .collect()
}

/// The merged result of a [`cross_validate`] sweep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrossValReport {
    /// Histories checked.
    pub total: usize,
    /// Histories on which the definitional checker (Definition 1) and the
    /// graph decider (Theorem 2) returned the same verdict.
    pub agree: usize,
    /// Histories the definitional checker judged opaque.
    pub opaque: usize,
    /// Seeds on which the two deciders disagreed (must stay empty; kept in
    /// the report so a regression is immediately reproducible).
    pub disagreeing_seeds: Vec<u64>,
}

/// The Theorem-2 cross-validation (experiment E7), sharded across `jobs`
/// scoped worker threads.
///
/// For each of `n` consecutive seeds starting at `base_seed`, generates a
/// random history, decides opacity both definitionally and via the graph
/// characterization, and tallies agreement. Each seed's verdict is a pure
/// function of the seed, and the merge walks seeds in order, so the report
/// is identical for every `jobs` value.
pub fn cross_validate(config: &GenConfig, base_seed: u64, n: usize, jobs: usize) -> CrossValReport {
    use tm_model::SpecRegistry;
    use tm_opacity::graphcheck::decide_via_graph;
    use tm_opacity::opacity::is_opaque;

    let per_seed = crate::parallel::parallel_map(n, jobs, |i| {
        let seed = base_seed + i as u64;
        let specs = SpecRegistry::registers();
        let h = random_history(config, seed);
        let definitional = is_opaque(&h, &specs).expect("generated histories are checkable");
        let graph = decide_via_graph(&h, &specs, config.txs.max(6))
            .expect("generated histories are checkable")
            .opaque();
        (definitional.opaque, graph)
    });
    let mut report = CrossValReport {
        total: n,
        ..CrossValReport::default()
    };
    for (i, (definitional, graph)) in per_seed.into_iter().enumerate() {
        if definitional == graph {
            report.agree += 1;
        } else {
            report.disagreeing_seeds.push(base_seed + i as u64);
        }
        if definitional {
            report.opaque += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::is_well_formed;

    #[test]
    fn generated_histories_are_well_formed() {
        let config = GenConfig::default();
        for seed in 0..200 {
            let h = random_history(&config, seed);
            assert!(is_well_formed(&h), "seed {seed}: {h}");
            assert!(!h.txs().is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = GenConfig::default();
        assert_eq!(random_history(&config, 7), random_history(&config, 7));
    }

    #[test]
    fn writes_are_globally_unique() {
        use std::collections::HashSet;
        use tm_model::{Event, OpName};
        let config = GenConfig {
            txs: 6,
            max_ops: 6,
            ..GenConfig::default()
        };
        for seed in 0..50 {
            let h = random_history(&config, seed);
            let mut seen = HashSet::new();
            for e in h.events() {
                if let Event::Inv {
                    obj,
                    op: OpName::Write,
                    args,
                    ..
                } = e
                {
                    assert!(
                        seen.insert((obj.clone(), args[0].clone())),
                        "duplicate write in seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn noise_produces_both_verdicts() {
        // Sanity: among a few hundred histories, some are opaque and some
        // are not (otherwise the cross-validation would be vacuous).
        use tm_model::SpecRegistry;
        use tm_opacity::opacity::is_opaque;
        let specs = SpecRegistry::registers();
        let config = GenConfig::default();
        let mut yes = 0;
        let mut no = 0;
        for seed in 0..300 {
            let h = random_history(&config, seed);
            if is_opaque(&h, &specs).unwrap().opaque {
                yes += 1;
            } else {
                no += 1;
            }
        }
        assert!(yes > 10, "too few opaque histories: {yes}");
        assert!(no > 10, "too few non-opaque histories: {no}");
    }

    #[test]
    fn cross_validation_agrees_and_is_job_count_invariant() {
        let config = GenConfig::default();
        let sequential = cross_validate(&config, 0, 60, 1);
        assert_eq!(sequential.total, 60);
        assert_eq!(
            sequential.agree, 60,
            "Theorem 2 disagreement on seeds {:?}",
            sequential.disagreeing_seeds
        );
        assert!(sequential.opaque > 0 && sequential.opaque < 60);
        for jobs in [2, 4] {
            assert_eq!(cross_validate(&config, 0, 60, jobs), sequential);
        }
    }

    #[test]
    fn commit_pending_fraction_appears() {
        let config = GenConfig {
            commit_pending: 0.9,
            ..GenConfig::default()
        };
        let mut pending = 0;
        for seed in 0..50 {
            pending += random_history(&config, seed).commit_pending_txs().len();
        }
        assert!(
            pending > 50,
            "expected many commit-pending txs, got {pending}"
        );
    }
}
