//! The Theorem-3 experiment driver (experiments E8/E9).
//!
//! Theorem 3: every progressive, single-version TM with invisible reads that
//! ensures opacity needs Ω(k) steps per operation in the worst case, where
//! `k = |Obj|`. The bound is tight (DSTM is Θ(k)) and evaporates if any
//! hypothesis is dropped (TL2, visible reads, multi-version) or if opacity
//! is weakened (the non-opaque TM).
//!
//! Two deterministic scenarios, both driven by the interleaving explorer so
//! the numbers are exact step counts:
//!
//! * **solo scan** — one transaction reads all `k` registers with no
//!   interference. DSTM's i-th read validates i previous reads: max-per-read
//!   grows linearly in `k` while every other TM stays flat. This isolates
//!   the *validation burden* opacity imposes.
//! * **paper scenario** — the proof sketch of Section 6.2: `T1` reads the
//!   first half of the registers; `T2` writes Θ(k) registers (including one
//!   `T1` read) and commits; `T1` then reads one more register. The final
//!   read must detect the conflict (or return consistent data), and with
//!   invisible reads + single version + progressiveness that detection
//!   costs Ω(k) — measured here as the step count of `T1`'s last read.

use crate::sched::{execute, ExecOutcome};
use crate::script::{Program, TxScript};
use tm_stm::{OpKind, Stm};

/// Measurements for one TM at one value of `k`.
#[derive(Clone, Debug)]
pub struct ComplexityRow {
    /// TM name.
    pub stm: &'static str,
    /// Number of shared objects.
    pub k: usize,
    /// Maximum steps across `T1`'s read operations.
    pub max_read_steps: u64,
    /// Mean steps across `T1`'s read operations.
    pub mean_read_steps: f64,
    /// Total steps `T1` spent in read operations.
    pub total_read_steps: u64,
    /// Steps of `T1`'s final read (the conflict-detecting one in the paper
    /// scenario).
    pub last_read_steps: u64,
    /// Whether `T1` committed.
    pub t1_committed: bool,
}

fn summarize(stm_name: &'static str, k: usize, out: &ExecOutcome) -> ComplexityRow {
    let t1 = &out.txs[0];
    let reads: Vec<u64> = t1
        .steps
        .per_op
        .iter()
        .filter(|(kind, _)| *kind == OpKind::Read)
        .map(|(_, s)| *s)
        .collect();
    let total: u64 = reads.iter().sum();
    ComplexityRow {
        stm: stm_name,
        k,
        max_read_steps: reads.iter().copied().max().unwrap_or(0),
        mean_read_steps: if reads.is_empty() {
            0.0
        } else {
            total as f64 / reads.len() as f64
        },
        total_read_steps: total,
        last_read_steps: reads.last().copied().unwrap_or(0),
        t1_committed: t1.committed,
    }
}

/// Scenario 1 (solo scan): a single transaction reads all `k` registers and
/// commits, alone.
pub fn solo_scan(stm: &dyn Stm, k: usize) -> ComplexityRow {
    let program = Program::new(vec![TxScript::reader(0..k)]);
    let schedule: Vec<usize> = vec![0; k + 1];
    let name = stm.name();
    let out = execute(stm, &program, &schedule);
    summarize(name, k, &out)
}

/// Scenario 2 (paper scenario, Section 6.2's proof sketch): `T1` reads
/// registers `0..k/2`; `T2` writes registers `k/2..k` — *disjoint* from
/// `T1`'s read set — and commits; `T1` then invokes one more read, of
/// register `k-1` (modified by `T2`, not yet read by `T1`).
///
/// Being single-version, the TM can only return `T2`'s value for that read,
/// so `T1`'s process must determine whether *any* object it read earlier
/// was updated by `T2`: if none was (the case here), progressiveness forces
/// the TM to let `T1` proceed and eventually commit. With invisible reads
/// `T2` could not have told `T1` anything, so `T1` scans its whole read set
/// — the step count of the final read is the paper's Ω(k) quantity, paid
/// even though the execution is conflict-free on the read set.
pub fn paper_scenario(stm: &dyn Stm, k: usize) -> ComplexityRow {
    assert!(k >= 4, "scenario needs at least four registers");
    let half = k / 2;
    let program = Program::new(vec![
        TxScript::reader((0..half).chain([k - 1])),
        TxScript::writer(half..k, 7),
    ]);
    // T1 performs its first `half` reads; T2 runs fully (k/2 writes +
    // commit); T1 performs its final read, then tries to commit.
    let mut schedule: Vec<usize> = vec![0; half];
    schedule.extend(std::iter::repeat(1).take(k - half + 1)); // writes + commit
    schedule.push(0); // the Ω(k)-validation read
    schedule.push(0); // T1 commit attempt
    let name = stm.name();
    let out = execute(stm, &program, &schedule);
    summarize(name, k, &out)
}

/// Scenario 3 (read-set fraction ablation): like [`paper_scenario`] but
/// `T1`'s read set before the final read has size `m` (not `k/2`): `T1`
/// reads registers `0..m`; `T2` writes `m..k` and commits; `T1` reads
/// register `k-1`.
///
/// Theorem 3 is stated in `k = |Obj|` because an adversary can always force
/// read sets of size Θ(k); mechanistically the cost of the final read is
/// one validation step per read-set *entry*. Sweeping `m` at fixed `k`
/// shows the DSTM/ASTM cost tracking `m` exactly, with `k` otherwise
/// irrelevant — the ablation behind the bound.
pub fn fraction_scenario(stm: &dyn Stm, k: usize, m: usize) -> ComplexityRow {
    assert!(m >= 1 && m < k, "need 1 <= m < k");
    let program = Program::new(vec![
        TxScript::reader((0..m).chain([k - 1])),
        TxScript::writer(m..k, 7),
    ]);
    let mut schedule: Vec<usize> = vec![0; m];
    schedule.extend(std::iter::repeat(1).take(k - m + 1));
    schedule.push(0); // the validating read
    schedule.push(0); // T1 commit
    let name = stm.name();
    let out = execute(stm, &program, &schedule);
    summarize(name, k, &out)
}

/// Runs a scenario over every TM in the suite for each `k` in `ks`.
///
/// `multi_threaded` scenarios skip blocking TMs (the global lock), which
/// cannot be interleaved on one OS thread.
pub fn sweep(
    ks: &[usize],
    multi_threaded: bool,
    scenario: impl Fn(&dyn Stm, usize) -> ComplexityRow,
) -> Vec<ComplexityRow> {
    let mut rows = Vec::new();
    for &k in ks {
        for stm in tm_stm::all_stms(k) {
            if multi_threaded && stm.blocking() {
                continue;
            }
            // Recording off: the experiment measures steps, not histories.
            stm.recorder().set_enabled(false);
            rows.push(scenario(stm.as_ref(), k));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_stm::{AstmStm, DstmStm, MvStm, NonOpaqueStm, Tl2Stm, VisibleStm};

    #[test]
    fn solo_scan_separates_dstm_from_tl2() {
        let k = 64;
        let dstm = DstmStm::new(k);
        let tl2 = Tl2Stm::new(k);
        let d = solo_scan(&dstm, k);
        let t = solo_scan(&tl2, k);
        assert!(
            d.max_read_steps >= k as u64,
            "DSTM max read must be Ω(k): {d:?}"
        );
        assert_eq!(t.max_read_steps, 3, "TL2 reads are O(1): {t:?}");
        // Per-transaction totals: Θ(k²) vs Θ(k).
        assert!(d.total_read_steps as usize >= k * k / 2, "{d:?}");
        assert!(t.total_read_steps as usize <= 3 * k, "{t:?}");
    }

    #[test]
    fn paper_scenario_shows_the_lower_bound() {
        let k = 64;
        // DSTM: the final read scans the whole (clean) read set => Ω(k) —
        // and, being progressive, T1 then commits.
        let dstm = DstmStm::new(k);
        let d = paper_scenario(&dstm, k);
        assert!(
            d.last_read_steps >= (k / 2) as u64,
            "DSTM validation must cost Ω(k): {d:?}"
        );
        assert!(
            d.t1_committed,
            "no read-set conflict: progressive TM commits T1"
        );

        // ASTM (lazy acquire) sits at the same design point: same Ω(k).
        let astm = AstmStm::new(k);
        let a = paper_scenario(&astm, k);
        assert!(
            a.last_read_steps >= (k / 2) as u64,
            "ASTM validation must cost Ω(k): {a:?}"
        );
        assert!(a.t1_committed, "astm: {a:?}");

        // TL2 pays O(1) — but forcefully aborts T1 although the conflicting
        // writer already committed (it is not progressive, Section 6.2).
        let tl2 = Tl2Stm::new(k);
        let t = paper_scenario(&tl2, k);
        assert!(t.last_read_steps <= 3, "TL2: {t:?}");
        assert!(
            !t.t1_committed,
            "TL2's rv check aborts T1 without a live conflict"
        );

        // Visible reads: O(1), commits.
        let vis = VisibleStm::new(k);
        let v = paper_scenario(&vis, k);
        assert!(v.last_read_steps <= 6, "visible: {v:?}");
        assert!(v.t1_committed, "visible: {v:?}");

        // Multi-version: O(log versions), reads the old snapshot, commits.
        let mv = MvStm::new(k);
        let m = paper_scenario(&mv, k);
        assert!(m.last_read_steps <= 6, "mvstm: {m:?}");
        assert!(
            m.t1_committed,
            "read-only snapshot transactions never abort"
        );

        // Non-opaque: O(1) with all three Theorem-3 hypotheses — possible
        // only because it gave up opacity.
        let non = NonOpaqueStm::new(k);
        let n = paper_scenario(&non, k);
        assert!(n.last_read_steps <= 3, "nonopaque: {n:?}");
        assert!(n.t1_committed, "nonopaque: {n:?}");
    }

    #[test]
    fn dstm_scaling_is_linear_in_k() {
        // The final read's cost is affine in k: steps ≈ c + k/2 (one
        // validation step per read-set entry, read set = k/2). Check the
        // slope over a 4x range of k.
        let m16 = paper_scenario(&DstmStm::new(16), 16).last_read_steps as f64;
        let m64 = paper_scenario(&DstmStm::new(64), 64).last_read_steps as f64;
        let slope = (m64 - m16) / (64.0 - 16.0);
        assert!(
            (0.4..0.7).contains(&slope),
            "expected slope ~0.5 steps per object, got {slope} ({m16} -> {m64})"
        );
        // And TL2's cost does not grow at all.
        let t16 = paper_scenario(&Tl2Stm::new(16), 16).last_read_steps;
        let t64 = paper_scenario(&Tl2Stm::new(64), 64).last_read_steps;
        assert_eq!(t16, t64);
    }

    #[test]
    fn validation_cost_tracks_read_set_size_not_k() {
        // Fixed k = 256; sweep the read-set size m. DSTM's final read must
        // grow linearly in m while TL2 stays flat — and DSTM at (k=256,
        // m=16) must cost the same as at (k=64, m=16): k itself is inert.
        let k = 256;
        let d16 = fraction_scenario(&DstmStm::new(k), k, 16).last_read_steps;
        let d64 = fraction_scenario(&DstmStm::new(k), k, 64).last_read_steps;
        let d128 = fraction_scenario(&DstmStm::new(k), k, 128).last_read_steps;
        assert!(d16 < d64 && d64 < d128, "{d16} {d64} {d128}");
        let slope = (d128 - d16) as f64 / (128.0 - 16.0);
        assert!(
            (0.8..1.2).contains(&slope),
            "one step per read-set entry: {slope}"
        );
        let d16_smallk = fraction_scenario(&DstmStm::new(64), 64, 16).last_read_steps;
        assert_eq!(d16, d16_smallk, "k itself must be inert");
        let t16 = fraction_scenario(&Tl2Stm::new(k), k, 16).last_read_steps;
        let t128 = fraction_scenario(&Tl2Stm::new(k), k, 128).last_read_steps;
        assert_eq!(t16, t128, "TL2 stays flat in m");
    }

    #[test]
    fn sweep_covers_all_stms() {
        let rows = sweep(&[4, 8], false, solo_scan);
        assert_eq!(rows.len(), 18);
        assert!(rows.iter().any(|r| r.stm == "dstm" && r.k == 8));
        assert!(rows.iter().any(|r| r.stm == "sistm" && r.k == 8));
        assert!(rows.iter().any(|r| r.stm == "tpl" && r.k == 8));
        // Multi-threaded sweeps skip the blocking global-lock TM.
        let rows = sweep(&[4], true, paper_scenario);
        assert_eq!(rows.len(), 8);
        assert!(!rows.iter().any(|r| r.stm == "glock"));
    }
}
