//! The object-level conformance battery: rich-semantics probes for every TM.
//!
//! The register battery in [`crate::conformance`] exercises the weakest
//! slice of the theory — the paper's model is parameterized by *arbitrary*
//! sequential specifications, and some anomalies are simply invisible to
//! register probes. This module sweeps **typed transactional objects**
//! (`tm_stm::objects`) through every deterministic interleaving of a probe
//! battery and judges the recorded *object-level* histories against the
//! objects' own specifications:
//!
//! * the **set write-skew probe** (two transactions each read both
//!   membership flags and insert one element) convicts snapshot isolation:
//!   both commit under SI-STM, an outcome no serial execution of the set
//!   allows — the committed history is not even serializable;
//! * the **counter torn-get probe** (`get`/`get` against `inc`/`inc`)
//!   convicts commit-time-only validation: the live reader observes a
//!   mid-flight counter state;
//! * producer/consumer **queue, stack, and priority-queue probes** detect
//!   reordering and double/lost dequeues;
//! * commutative **counter storms** document the cost of read/write
//!   encodings (aborts without semantic conflicts — Section 3.4).
//!
//! Every `(probe, schedule)` pair drives a fresh TM instance, so the sweep
//! shards across the [`crate::parallel`] worker pool with deterministic
//! index-order merging: [`object_conformance`] output is identical for
//! every job count.

use tm_model::{OpName, Value};
use tm_opacity::criteria::is_serializable_with;
use tm_opacity::opacity::is_opaque_with;
use tm_opacity::SearchConfig;
use tm_stm::objects::encodings::{
    CasEnc, CounterEnc, LogEnc, MapEnc, PQueueEnc, QueueEnc, RegisterEnc, SetEnc, StackEnc,
};
use tm_stm::objects::{TypedSpace, TypedStm, TypedTx};
use tm_stm::Stm;

use crate::parallel::parallel_map;
use crate::sched::{all_schedules, Schedule};

/// The rich object families the battery can probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObjectKind {
    /// The commutative counter of Section 3.4.
    Counter,
    /// FIFO queue.
    Queue,
    /// LIFO stack.
    Stack,
    /// Integer set (the write-skew carrier).
    Set,
    /// Compare-and-swap register.
    Cas,
    /// Integer key-value map.
    Map,
    /// Min-priority queue (user-defined operation names).
    PQueue,
    /// Append-only log.
    Log,
    /// Plain register, lifted through the typed layer (baseline).
    Register,
}

impl ObjectKind {
    /// Every probe-able object kind, in battery order.
    pub const ALL: [ObjectKind; 9] = [
        ObjectKind::Counter,
        ObjectKind::Queue,
        ObjectKind::Stack,
        ObjectKind::Set,
        ObjectKind::Cas,
        ObjectKind::Map,
        ObjectKind::PQueue,
        ObjectKind::Log,
        ObjectKind::Register,
    ];

    /// The kind's canonical name (also its CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            ObjectKind::Counter => "counter",
            ObjectKind::Queue => "queue",
            ObjectKind::Stack => "stack",
            ObjectKind::Set => "set",
            ObjectKind::Cas => "cas",
            ObjectKind::Map => "map",
            ObjectKind::PQueue => "pqueue",
            ObjectKind::Log => "log",
            ObjectKind::Register => "register",
        }
    }

    /// Parses one kind name.
    pub fn parse(s: &str) -> Option<ObjectKind> {
        ObjectKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Parses a CLI object-set spec: `all` or a comma-separated list of
    /// kind names (duplicates collapse, order follows [`ObjectKind::ALL`]).
    pub fn parse_set(spec: &str) -> Result<Vec<ObjectKind>, String> {
        if spec == "all" {
            return Ok(ObjectKind::ALL.to_vec());
        }
        let mut wanted = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            let kind = ObjectKind::parse(part).ok_or_else(|| {
                format!(
                    "unknown object kind '{part}' (available: all, {})",
                    ObjectKind::ALL.map(|k| k.name()).join(", ")
                )
            })?;
            if !wanted.contains(&kind) {
                wanted.push(kind);
            }
        }
        if wanted.is_empty() {
            return Err("empty object set".to_string());
        }
        wanted.sort();
        Ok(wanted)
    }

    /// A standard single-object space for this kind, sized so that
    /// `total_ops` mutating operations never exhaust an encoding bound.
    /// The object is always named `"o"`.
    pub fn standard_space(self, total_ops: usize) -> TypedSpace {
        let cap = total_ops.max(1);
        let b = TypedSpace::builder();
        match self {
            ObjectKind::Counter => b.with("o", CounterEnc),
            ObjectKind::Queue => b.with("o", QueueEnc { cap }),
            ObjectKind::Stack => b.with("o", StackEnc { cap }),
            ObjectKind::Set => b.with("o", SetEnc { domain: 8 }),
            ObjectKind::Cas => b.with("o", CasEnc),
            ObjectKind::Map => b.with("o", MapEnc { keys: 8 }),
            ObjectKind::PQueue => b.with("o", PQueueEnc { domain: 8 }),
            ObjectKind::Log => b.with("o", LogEnc { cap }),
            ObjectKind::Register => b.with("o", RegisterEnc),
        }
        .build()
    }
}

impl std::fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One scripted object-level operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjOp {
    /// The typed object's name in the probe's space.
    pub obj: &'static str,
    /// The operation.
    pub op: OpName,
    /// Its arguments.
    pub args: Vec<Value>,
}

impl ObjOp {
    fn new(obj: &'static str, op: OpName, args: Vec<Value>) -> Self {
        ObjOp { obj, op, args }
    }
}

/// One transaction script of object-level operations (ending in a commit).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObjScript {
    /// The operations, executed in order.
    pub ops: Vec<ObjOp>,
}

/// A typed program: one transaction script per logical thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObjProgram {
    /// Per-thread scripts.
    pub threads: Vec<ObjScript>,
}

impl ObjProgram {
    /// Per-thread scheduler action counts (operations + the final commit).
    pub fn action_counts(&self) -> Vec<usize> {
        self.threads.iter().map(|t| t.ops.len() + 1).collect()
    }
}

/// The fate and observations of one typed scripted transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjTxOutcome {
    /// Did the transaction commit?
    pub committed: bool,
    /// Return values of its completed operations, in script order.
    pub returns: Vec<Value>,
}

/// The result of executing a typed program under a schedule.
#[derive(Clone, Debug)]
pub struct ObjExecOutcome {
    /// Per-thread outcomes.
    pub txs: Vec<ObjTxOutcome>,
}

/// Executes `program` on `tm` under `schedule` — the typed twin of
/// [`crate::sched::execute`]. Schedule entries pointing at finished threads
/// are skipped.
///
/// # Panics
/// Panics if `tm` is a blocking TM and the program has more than one
/// thread; use [`execute_objects_serially`] for those.
pub fn execute_objects(tm: &TypedStm, program: &ObjProgram, schedule: &[usize]) -> ObjExecOutcome {
    assert!(
        program.threads.len() <= 1 || !tm.blocking(),
        "blocking TM '{}' cannot be interleaved on one OS thread",
        tm.name()
    );
    struct Thread<'a> {
        tx: Option<TypedTx<'a>>,
        pc: usize,
        committed: bool,
        aborted: bool,
        returns: Vec<Value>,
    }
    let mut threads: Vec<Thread<'_>> = (0..program.threads.len())
        .map(|_| Thread {
            tx: None,
            pc: 0,
            committed: false,
            aborted: false,
            returns: Vec::new(),
        })
        .collect();

    for &ti in schedule {
        let script = &program.threads[ti];
        let t = &mut threads[ti];
        if t.committed || t.aborted {
            continue;
        }
        if t.tx.is_none() {
            t.tx = Some(tm.begin(ti));
        }
        if t.pc < script.ops.len() {
            let tx = t.tx.as_mut().expect("live thread has a tx");
            let ObjOp { obj, op, args } = &script.ops[t.pc];
            let handle = tm.handle(obj);
            t.pc += 1;
            match tx.invoke(handle, op, args) {
                Ok(ret) => t.returns.push(ret),
                Err(_) => {
                    t.aborted = true;
                    t.tx = None;
                }
            }
        } else {
            let tx = t.tx.take().expect("live thread has a tx");
            match tx.commit() {
                Ok(()) => t.committed = true,
                Err(_) => t.aborted = true,
            }
        }
    }

    ObjExecOutcome {
        txs: threads
            .into_iter()
            .map(|t| ObjTxOutcome {
                committed: t.committed,
                returns: t.returns,
            })
            .collect(),
    }
}

/// Runs a typed program one whole transaction at a time, following the
/// thread order in which `schedule` first mentions each thread — the only
/// way to drive a blocking TM through a multi-thread probe on one OS
/// thread.
pub fn execute_objects_serially(
    tm: &TypedStm,
    program: &ObjProgram,
    schedule: &[usize],
) -> ObjExecOutcome {
    let mut order: Vec<usize> = Vec::new();
    for &t in schedule {
        if !order.contains(&t) {
            order.push(t);
        }
    }
    let mut outcomes: Vec<ObjTxOutcome> = program
        .threads
        .iter()
        .map(|_| ObjTxOutcome {
            committed: false,
            returns: Vec::new(),
        })
        .collect();
    for ti in order {
        let mut tx = tm.begin(ti);
        let mut dead = false;
        for ObjOp { obj, op, args } in &program.threads[ti].ops {
            match tx.invoke(tm.handle(obj), op, args) {
                Ok(ret) => outcomes[ti].returns.push(ret),
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if !dead {
            outcomes[ti].committed = tx.commit().is_ok();
        }
    }
    ObjExecOutcome { txs: outcomes }
}

/// One probe: a typed space factory plus a program over its objects.
struct ObjProbe {
    name: &'static str,
    kind: ObjectKind,
    space: fn() -> TypedSpace,
    program: ObjProgram,
}

fn op(obj: &'static str, op_name: OpName, args: Vec<Value>) -> ObjOp {
    ObjOp::new(obj, op_name, args)
}

fn script(ops: Vec<ObjOp>) -> ObjScript {
    ObjScript { ops }
}

/// The probe battery, in deterministic order.
fn probes() -> Vec<ObjProbe> {
    let i = Value::int;
    vec![
        ObjProbe {
            name: "counter-commutative-storm",
            kind: ObjectKind::Counter,
            space: || TypedSpace::builder().with("c", CounterEnc).build(),
            program: ObjProgram {
                threads: vec![
                    script(vec![
                        op("c", OpName::Inc, vec![]),
                        op("c", OpName::Inc, vec![]),
                    ]),
                    script(vec![
                        op("c", OpName::Inc, vec![]),
                        op("c", OpName::Get, vec![]),
                    ]),
                ],
            },
        },
        ObjProbe {
            name: "counter-torn-get",
            kind: ObjectKind::Counter,
            space: || TypedSpace::builder().with("c", CounterEnc).build(),
            program: ObjProgram {
                threads: vec![
                    script(vec![
                        op("c", OpName::Inc, vec![]),
                        op("c", OpName::Inc, vec![]),
                    ]),
                    script(vec![
                        op("c", OpName::Get, vec![]),
                        op("c", OpName::Get, vec![]),
                    ]),
                ],
            },
        },
        ObjProbe {
            name: "queue-producer-consumer",
            kind: ObjectKind::Queue,
            space: || TypedSpace::builder().with("q", QueueEnc { cap: 8 }).build(),
            program: ObjProgram {
                threads: vec![
                    script(vec![
                        op("q", OpName::Enq, vec![i(1)]),
                        op("q", OpName::Enq, vec![i(2)]),
                    ]),
                    script(vec![
                        op("q", OpName::Deq, vec![]),
                        op("q", OpName::Deq, vec![]),
                    ]),
                ],
            },
        },
        ObjProbe {
            name: "stack-push-pop",
            kind: ObjectKind::Stack,
            space: || TypedSpace::builder().with("s", StackEnc { cap: 8 }).build(),
            program: ObjProgram {
                threads: vec![
                    script(vec![
                        op("s", OpName::Push, vec![i(1)]),
                        op("s", OpName::Push, vec![i(2)]),
                    ]),
                    script(vec![
                        op("s", OpName::Pop, vec![]),
                        op("s", OpName::Pop, vec![]),
                    ]),
                ],
            },
        },
        ObjProbe {
            name: "set-write-skew",
            kind: ObjectKind::Set,
            space: || {
                TypedSpace::builder()
                    .with("s", SetEnc { domain: 4 })
                    .build()
            },
            program: ObjProgram {
                threads: vec![
                    script(vec![
                        op("s", OpName::Contains, vec![i(1)]),
                        op("s", OpName::Contains, vec![i(2)]),
                        op("s", OpName::Insert, vec![i(1)]),
                    ]),
                    script(vec![
                        op("s", OpName::Contains, vec![i(1)]),
                        op("s", OpName::Contains, vec![i(2)]),
                        op("s", OpName::Insert, vec![i(2)]),
                    ]),
                ],
            },
        },
        ObjProbe {
            name: "set-torn-read",
            kind: ObjectKind::Set,
            space: || {
                TypedSpace::builder()
                    .with("s", SetEnc { domain: 4 })
                    .build()
            },
            program: ObjProgram {
                threads: vec![
                    script(vec![
                        op("s", OpName::Insert, vec![i(1)]),
                        op("s", OpName::Insert, vec![i(2)]),
                    ]),
                    script(vec![
                        op("s", OpName::Contains, vec![i(1)]),
                        op("s", OpName::Contains, vec![i(2)]),
                    ]),
                ],
            },
        },
        ObjProbe {
            name: "cas-race",
            kind: ObjectKind::Cas,
            space: || TypedSpace::builder().with("x", CasEnc).build(),
            program: ObjProgram {
                threads: vec![
                    script(vec![
                        op("x", OpName::Cas, vec![i(0), i(1)]),
                        op("x", OpName::Read, vec![]),
                    ]),
                    script(vec![
                        op("x", OpName::Cas, vec![i(0), i(2)]),
                        op("x", OpName::Read, vec![]),
                    ]),
                ],
            },
        },
        ObjProbe {
            name: "map-put-get-skew",
            kind: ObjectKind::Map,
            space: || TypedSpace::builder().with("m", MapEnc { keys: 2 }).build(),
            program: ObjProgram {
                threads: vec![
                    script(vec![
                        op("m", OpName::Get, vec![i(1)]),
                        op("m", OpName::Insert, vec![i(0), i(5)]),
                    ]),
                    script(vec![
                        op("m", OpName::Get, vec![i(0)]),
                        op("m", OpName::Insert, vec![i(1), i(7)]),
                    ]),
                ],
            },
        },
        ObjProbe {
            name: "pqueue-min-race",
            kind: ObjectKind::PQueue,
            space: || {
                TypedSpace::builder()
                    .with("p", PQueueEnc { domain: 5 })
                    .build()
            },
            program: ObjProgram {
                threads: vec![
                    script(vec![
                        op("p", OpName::Insert, vec![i(1)]),
                        op("p", OpName::Insert, vec![i(3)]),
                    ]),
                    script(vec![
                        op("p", tm_model::objects::pqueue::extract_min(), vec![]),
                        op("p", tm_model::objects::pqueue::extract_min(), vec![]),
                    ]),
                ],
            },
        },
        ObjProbe {
            name: "log-append-read",
            kind: ObjectKind::Log,
            space: || TypedSpace::builder().with("l", LogEnc { cap: 4 }).build(),
            program: ObjProgram {
                threads: vec![
                    script(vec![
                        op("l", OpName::Append, vec![i(1)]),
                        op("l", OpName::Append, vec![i(2)]),
                    ]),
                    script(vec![op("l", OpName::Read, vec![])]),
                ],
            },
        },
        ObjProbe {
            name: "register-inconsistent-view",
            kind: ObjectKind::Register,
            space: || {
                TypedSpace::builder()
                    .with("x", RegisterEnc)
                    .with("y", RegisterEnc)
                    .build()
            },
            program: ObjProgram {
                threads: vec![
                    script(vec![
                        op("x", OpName::Read, vec![]),
                        op("y", OpName::Read, vec![]),
                    ]),
                    script(vec![
                        op("x", OpName::Write, vec![i(7)]),
                        op("y", OpName::Write, vec![i(7)]),
                    ]),
                ],
            },
        },
    ]
}

/// The verdicts for one typed probe, aggregated over its schedule sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectProbeReport {
    /// The probe's name (e.g. `set-write-skew`).
    pub probe: &'static str,
    /// The object family it exercises.
    pub kind: ObjectKind,
    /// Every recorded history was well-formed.
    pub well_formed: bool,
    /// Every recorded object-level history was opaque w.r.t. the objects'
    /// sequential specifications.
    pub opaque: bool,
    /// Every recorded history had serializable committed transactions at
    /// the object level.
    pub serializable: bool,
    /// Histories checked across the sweep.
    pub histories_checked: usize,
    /// Human-readable descriptions of the first few violations.
    pub violations: Vec<String>,
}

impl ObjectProbeReport {
    /// One fixed-width table row (pair with [`object_header`]).
    pub fn row(&self, tm: &str) -> String {
        let yn = |b: bool| if b { "yes" } else { "NO " };
        format!(
            "{:<12} {:<28} {:<10} {:>4} {:>6} {:>6} {:>6}",
            tm,
            self.probe,
            self.kind.name(),
            yn(self.well_formed),
            yn(self.opaque),
            yn(self.serializable),
            self.histories_checked,
        )
    }
}

/// The header matching [`ObjectProbeReport::row`].
pub fn object_header() -> String {
    format!(
        "{:<12} {:<28} {:<10} {:>4} {:>6} {:>6} {:>6}",
        "tm", "probe", "object", "wf", "opaque", "ser", "hist"
    )
}

/// The outcome of the object battery for one TM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectConformanceReport {
    /// The TM's self-reported name.
    pub name: String,
    /// One report per selected probe, in battery order.
    pub probes: Vec<ObjectProbeReport>,
}

impl ObjectConformanceReport {
    /// The probe report with the given name, if selected.
    pub fn probe(&self, name: &str) -> Option<&ObjectProbeReport> {
        self.probes.iter().find(|p| p.probe == name)
    }

    /// True iff every probe held every contract (the bar for
    /// opaque-by-design TMs).
    pub fn all_clean(&self) -> bool {
        self.probes
            .iter()
            .all(|p| p.well_formed && p.opaque && p.serializable)
    }
}

/// The verdicts for one recorded history.
struct SweepVerdict {
    wf: bool,
    opaque: bool,
    serializable: bool,
}

/// One `(probe index, schedule)` unit of sweep work.
struct SweepItem {
    probe: usize,
    sched: Schedule,
}

/// Runs the object battery for the TM built by `make` over the probes of
/// the selected `kinds`, sharding the schedule sweep across `jobs` worker
/// threads with deterministic index-order merging (output is identical for
/// every `jobs` value). Single-threaded callers pass `jobs = 1`.
pub fn object_conformance(
    make: &(dyn Fn(usize) -> Box<dyn Stm> + Sync),
    kinds: &[ObjectKind],
    jobs: usize,
) -> ObjectConformanceReport {
    object_conformance_with(make, kinds, jobs, SearchConfig::default())
}

/// [`object_conformance`] with an explicit serialization-search
/// configuration for the per-history checks: `search.search_jobs`
/// parallelizes the root placements of each individual opacity /
/// serializability decision and `search.memo_capacity` bounds its dead-end
/// table. Verdicts — and therefore the rendered battery — are invariant
/// under both knobs.
pub fn object_conformance_with(
    make: &(dyn Fn(usize) -> Box<dyn Stm> + Sync),
    kinds: &[ObjectKind],
    jobs: usize,
    search: SearchConfig,
) -> ObjectConformanceReport {
    let name = make(1).name().to_string();
    let blocking = make(1).blocking();
    let selected: Vec<ObjProbe> = probes()
        .into_iter()
        .filter(|p| kinds.contains(&p.kind))
        .collect();

    // Build the deterministic work list: every (probe, schedule) pair.
    let mut items = Vec::new();
    for (pi, probe) in selected.iter().enumerate() {
        let schedules = if blocking {
            let counts = probe.program.action_counts();
            let serial_01: Vec<usize> = std::iter::repeat(0)
                .take(counts[0])
                .chain(std::iter::repeat(1).take(counts[1]))
                .collect();
            let serial_10: Vec<usize> = std::iter::repeat(1)
                .take(counts[1])
                .chain(std::iter::repeat(0).take(counts[0]))
                .collect();
            vec![serial_01, serial_10]
        } else {
            all_schedules(&probe.program.action_counts(), 200)
        };
        for sched in schedules {
            items.push(SweepItem { probe: pi, sched });
        }
    }

    let verdicts = parallel_map(items.len(), jobs, |idx| {
        let item = &items[idx];
        let probe = &selected[item.probe];
        let tm = TypedStm::new((probe.space)(), |k| make(k));
        if blocking {
            execute_objects_serially(&tm, &probe.program, &item.sched);
        } else {
            execute_objects(&tm, &probe.program, &item.sched);
        }
        let h = tm.history();
        let specs = tm.registry();
        let wf = tm_model::is_well_formed(&h);
        if !wf {
            return SweepVerdict {
                wf,
                opaque: true,
                serializable: true,
            };
        }
        SweepVerdict {
            wf,
            opaque: is_opaque_with(&h, &specs, search)
                .map(|r| r.opaque)
                .unwrap_or(false),
            serializable: is_serializable_with(&h, &specs, search).unwrap_or(false),
        }
    });

    let mut reports: Vec<ObjectProbeReport> = selected
        .iter()
        .map(|p| ObjectProbeReport {
            probe: p.name,
            kind: p.kind,
            well_formed: true,
            opaque: true,
            serializable: true,
            histories_checked: 0,
            violations: Vec::new(),
        })
        .collect();
    for (item, v) in items.iter().zip(&verdicts) {
        let report = &mut reports[item.probe];
        report.histories_checked += 1;
        let flag = |field_ok: bool, what: &str, violations: &mut Vec<String>| {
            if !field_ok && violations.len() < 8 {
                violations.push(format!(
                    "{} {:?}: {what}",
                    selected[item.probe].name, item.sched
                ));
            }
            field_ok
        };
        report.well_formed &= flag(v.wf, "ill-formed history", &mut report.violations);
        if v.wf {
            report.opaque &= flag(v.opaque, "opacity violated", &mut report.violations);
            report.serializable &= flag(
                v.serializable,
                "committed txs not serializable",
                &mut report.violations,
            );
        }
    }

    ObjectConformanceReport {
        name,
        probes: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factory_for(name: &'static str) -> impl Fn(usize) -> Box<dyn Stm> + Sync {
        tm_stm::TmRegistry::suite()
            .factory(name)
            .expect("suite TM name")
    }

    #[test]
    fn kind_parsing() {
        assert_eq!(ObjectKind::parse("set"), Some(ObjectKind::Set));
        assert_eq!(ObjectKind::parse("nope"), None);
        assert_eq!(
            ObjectKind::parse_set("all").unwrap(),
            ObjectKind::ALL.to_vec()
        );
        assert_eq!(
            ObjectKind::parse_set("queue, set,queue").unwrap(),
            vec![ObjectKind::Queue, ObjectKind::Set]
        );
        assert!(ObjectKind::parse_set("set,bogus")
            .unwrap_err()
            .contains("bogus"));
        assert!(ObjectKind::parse_set("").is_err());
        assert_eq!(ObjectKind::Set.to_string(), "set");
    }

    #[test]
    fn standard_spaces_cover_every_kind() {
        for kind in ObjectKind::ALL {
            let space = kind.standard_space(16);
            assert!(space.k() >= 1, "{kind}");
            let _ = space.handle("o");
        }
    }

    /// The acceptance bar of the typed-object subsystem: the write-skew set
    /// probe convicts SI-STM at the object level while every
    /// opaque-by-design TM is acquitted on the full battery.
    #[test]
    fn write_skew_convicts_si_and_acquits_the_opaque_tms() {
        for stm in tm_stm::all_stms(2) {
            let name = stm.name();
            let props = stm.properties();
            drop(stm);
            let report = object_conformance(&factory_for(name), &ObjectKind::ALL, 1);
            assert_eq!(report.name, name);
            assert_eq!(report.probes.len(), 11, "{name}");
            for probe in &report.probes {
                assert!(
                    probe.well_formed,
                    "{name}/{}: {:?}",
                    probe.probe, probe.violations
                );
                assert!(probe.histories_checked >= 2, "{name}/{}", probe.probe);
            }
            if props.opaque_by_design {
                assert!(
                    report.all_clean(),
                    "{name} must pass the whole battery: {:?}",
                    report
                        .probes
                        .iter()
                        .flat_map(|p| p.violations.iter())
                        .collect::<Vec<_>>()
                );
            }
            if props.serializable_by_design {
                assert!(
                    report.probes.iter().all(|p| p.serializable),
                    "{name} commits must stay serializable at the object level"
                );
            }
            match name {
                "sistm" => {
                    let skew = report.probe("set-write-skew").unwrap();
                    assert!(
                        !skew.serializable,
                        "SI-STM must be convicted of write skew at the object level"
                    );
                    assert!(
                        !skew.opaque,
                        "write skew is an opacity violation a fortiori"
                    );
                    // The same anomaly shape reappears on the kv-map probe…
                    let map_skew = report.probe("map-put-get-skew").unwrap();
                    assert!(!map_skew.serializable && !map_skew.opaque);
                    // …while snapshot reads keep every torn-read probe clean.
                    let torn = report.probe("set-torn-read").unwrap();
                    assert!(torn.opaque && torn.serializable);
                }
                "nonopaque" => {
                    assert!(
                        report.probes.iter().any(|p| !p.opaque),
                        "commit-time-only validation must fail opacity on some probe"
                    );
                }
                _ => {}
            }
        }
    }

    /// Satellite of the configurable-TM redesign: the *typed-object*
    /// battery's verdicts are invariant under the clock scheme — the
    /// opaque clocked TMs pass the full 11-probe battery on sharded and
    /// deferred clocks, and SI-STM's object-level write-skew conviction is
    /// unchanged.
    #[test]
    fn full_object_battery_verdicts_survive_every_clock_scheme() {
        use tm_stm::{ClockScheme, TmRegistry};
        let reg = TmRegistry::suite();
        for base in ["tl2", "mvstm", "sistm"] {
            for scheme in ClockScheme::SWEEP {
                if scheme.is_single() {
                    continue; // the default scheme is pinned above
                }
                let spec = format!("{base}+{scheme}");
                let factory = reg.factory(&spec).expect("clocked TMs accept every scheme");
                let report = object_conformance(&factory, &ObjectKind::ALL, 2);
                assert_eq!(report.probes.len(), 11, "{spec}");
                for probe in &report.probes {
                    assert!(
                        probe.well_formed,
                        "{spec}/{}: {:?}",
                        probe.probe, probe.violations
                    );
                }
                if base == "sistm" {
                    let skew = report.probe("set-write-skew").unwrap();
                    assert!(
                        !skew.serializable && !skew.opaque,
                        "{spec}: the write-skew conviction must survive the scheme"
                    );
                    let torn = report.probe("set-torn-read").unwrap();
                    assert!(torn.opaque && torn.serializable, "{spec}");
                } else {
                    assert!(
                        report.all_clean(),
                        "{spec} must pass the whole battery: {:?}",
                        report
                            .probes
                            .iter()
                            .flat_map(|p| p.violations.iter())
                            .collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    #[test]
    fn object_battery_is_deterministic_across_job_counts() {
        for name in ["sistm", "tl2"] {
            let sequential = object_conformance(
                &factory_for(name),
                &[ObjectKind::Set, ObjectKind::Counter],
                1,
            );
            for jobs in [2, 5] {
                let parallel = object_conformance(
                    &factory_for(name),
                    &[ObjectKind::Set, ObjectKind::Counter],
                    jobs,
                );
                assert_eq!(sequential, parallel, "{name} jobs={jobs}");
            }
        }
    }

    #[test]
    fn report_rendering() {
        let report = object_conformance(&factory_for("tl2"), &[ObjectKind::Set], 1);
        assert!(object_header().contains("opaque"));
        for probe in &report.probes {
            let row = probe.row(&report.name);
            assert!(row.contains("tl2"));
            assert!(row.contains(probe.probe));
        }
    }

    #[test]
    fn typed_executor_skips_finished_threads_and_reports_returns() {
        let probe_space = TypedSpace::builder().with("c", CounterEnc).build();
        let tm = TypedStm::new(probe_space, |k| Box::new(tm_stm::Tl2Stm::new(k)));
        let program = ObjProgram {
            threads: vec![ObjScript {
                ops: vec![
                    ObjOp::new("c", OpName::Inc, vec![]),
                    ObjOp::new("c", OpName::Get, vec![]),
                ],
            }],
        };
        let out = execute_objects(&tm, &program, &[0; 10]);
        assert!(out.txs[0].committed);
        assert_eq!(out.txs[0].returns, vec![Value::Ok, Value::int(1)]);
    }

    #[test]
    fn serial_executor_drives_the_blocking_tm() {
        let report = object_conformance(&factory_for("glock"), &[ObjectKind::Queue], 1);
        let probe = report.probe("queue-producer-consumer").unwrap();
        assert!(probe.well_formed && probe.opaque && probe.serializable);
        assert_eq!(probe.histories_checked, 2, "two serial orders");
    }
}
