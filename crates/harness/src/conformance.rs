//! The TM conformance kit — the paper's programme ("without such
//! formalization, it is impossible to check the correctness of these
//! implementations") packaged as a reusable battery.
//!
//! [`check_conformance`] takes any [`Stm`] factory, drives it through
//! every interleaving of a set of adversarial probe programs plus a
//! threaded invariant workload, judges every recorded history with the
//! `tm-opacity` checkers, and reports which contracts held:
//!
//! * **opacity** (Definition 1) on every recorded history;
//! * **serializability** of committed transactions on every history;
//! * **snapshot isolation** on every history;
//! * **progressiveness** on the Section 6.2 discriminating probe (a
//!   conflicting operation invoked *after* the conflicting peer committed
//!   must not abort);
//! * **no lost updates** under a genuinely concurrent counter.
//!
//! The expected matrix for this repository's own nine TMs and three
//! mutants is pinned in the tests below — a downstream implementor runs
//! the same battery on their TM and compares rows. Violations carry the
//! offending schedule so failures are reproducible.
//!
//! The interleaving sweep is embarrassingly parallel — every `(probe,
//! schedule)` pair drives a *fresh* TM instance — so
//! [`conformance_parallel`] shards it across a scoped-thread worker pool
//! ([`crate::parallel`]) and merges the per-schedule verdicts back **in
//! schedule order**: the report (flags, violation list, counts) is
//! byte-identical for any worker count. [`check_conformance`] is the
//! single-threaded wrapper.

use tm_model::SpecRegistry;
use tm_opacity::criteria::{is_serializable_with, snapshot_isolated};
use tm_opacity::opacity::is_opaque_with;
use tm_opacity::SearchConfig;
use tm_stm::{run_tx, Stm};

use crate::parallel::parallel_map;
use crate::sched::{all_schedules_reduced, execute, Schedule};
use crate::script::{Program, TxScript};

/// The outcome of one conformance run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConformanceReport {
    /// The TM's self-reported name.
    pub name: String,
    /// Every recorded history was well-formed (a hard requirement — the
    /// other verdicts are meaningless without it).
    pub well_formed: bool,
    /// Every recorded history was opaque.
    pub opaque: bool,
    /// Every recorded history had serializable committed transactions.
    pub serializable: bool,
    /// Every recorded history was snapshot-isolated.
    pub snapshot_isolated: bool,
    /// The Section 6.2 probe: the reader committed although the
    /// conflicting writer finished before the reader's conflicting read.
    pub progressive_probe: bool,
    /// The threaded counter conserved every increment.
    pub no_lost_updates: bool,
    /// Human-readable descriptions of the first few violations.
    pub violations: Vec<String>,
    /// Histories checked across all sweeps.
    pub histories_checked: usize,
}

impl ConformanceReport {
    /// One fixed-width table row (pair with [`header`]).
    pub fn row(&self) -> String {
        let yn = |b: bool| if b { "yes" } else { "NO " };
        format!(
            "{:<30} {:>6} {:>6} {:>6} {:>6} {:>12} {:>10}",
            self.name,
            yn(self.well_formed),
            yn(self.opaque),
            yn(self.serializable),
            yn(self.snapshot_isolated),
            yn(self.progressive_probe),
            yn(self.no_lost_updates),
        )
    }
}

/// The header matching [`ConformanceReport::row`].
pub fn header() -> String {
    format!(
        "{:<30} {:>6} {:>6} {:>6} {:>6} {:>12} {:>10}",
        "tm", "wf", "opaque", "ser", "si", "progressive", "no-lost-up"
    )
}

/// The probe programs swept through every interleaving.
fn probes() -> Vec<(&'static str, Program)> {
    vec![
        (
            "reader-vs-writer",
            Program::new(vec![
                TxScript::new().read(0).read(1),
                TxScript::new().write(0, 7).write(1, 7),
            ]),
        ),
        (
            "rmw-vs-rmw",
            Program::new(vec![
                TxScript::new().read(0).write(0, 100),
                TxScript::new().read(0).write(0, 200),
            ]),
        ),
        (
            "write-skew",
            Program::new(vec![
                TxScript::new().read(0).read(1).write(0, -1),
                TxScript::new().read(0).read(1).write(1, -1),
            ]),
        ),
    ]
}

/// Runs a program one whole transaction at a time (for blocking TMs),
/// following the thread order in which `schedule` first mentions each
/// thread.
fn run_serially(stm: &dyn Stm, program: &Program, schedule: &[usize]) {
    let mut order: Vec<usize> = Vec::new();
    for &t in schedule {
        if !order.contains(&t) {
            order.push(t);
        }
    }
    for ti in order {
        let mut tx = stm.begin(ti);
        let mut dead = false;
        for op in &program.threads[ti].ops {
            let r = match *op {
                crate::script::ScriptOp::Read(obj) => tx.read(obj).map(|_| ()),
                crate::script::ScriptOp::Write(obj, v) => tx.write(obj, v),
            };
            if r.is_err() {
                dead = true;
                break;
            }
        }
        if !dead {
            let _ = tx.commit();
        }
    }
}

/// One `(probe, schedule)` unit of sweep work.
struct SweepItem {
    pname: &'static str,
    program: Program,
    sched: Schedule,
}

/// The verdicts for one recorded history, computed on any worker thread.
struct SweepVerdict {
    wf: bool,
    opaque: bool,
    serializable: bool,
    snapshot_isolated: bool,
}

/// Builds the full deterministic work list for the sweep phase.
fn sweep_items(blocking: bool) -> Vec<SweepItem> {
    let mut items = Vec::new();
    for (pname, program) in probes() {
        // Blocking TMs (the global lock) cannot be interleaved on one OS
        // thread: run the two serial orders through the raw Tx API instead.
        let schedules = if blocking {
            let counts = program.action_counts();
            let serial_01: Vec<usize> = std::iter::repeat(0)
                .take(counts[0])
                .chain(std::iter::repeat(1).take(counts[1]))
                .collect();
            let serial_10: Vec<usize> = std::iter::repeat(1)
                .take(counts[1])
                .chain(std::iter::repeat(0).take(counts[0]))
                .collect();
            vec![serial_01, serial_10]
        } else {
            // One representative per commutation class; `visible_reads =
            // true` because the battery hosts visible-reader TMs, for which
            // even read/read overlap is observable. (On these probes every
            // footprint overlaps from the first action, so the conservative
            // relation merges nothing and coverage is exactly the full
            // sweep — the reduction pays off on disjoint-footprint
            // programs, see the pinned counts in `sched`.)
            all_schedules_reduced(&program, true, 200)
        };
        for sched in schedules {
            items.push(SweepItem {
                pname,
                program: program.clone(),
                sched,
            });
        }
    }
    items
}

/// Executes one sweep item against a fresh TM and judges the recorded
/// history. Pure in the item index: safe to run on any worker.
fn run_sweep_item(
    make: &(dyn Fn(usize) -> Box<dyn Stm> + Sync),
    blocking: bool,
    item: &SweepItem,
    search: SearchConfig,
) -> SweepVerdict {
    let specs = SpecRegistry::registers();
    let stm = make(2);
    run_tx(stm.as_ref(), 0, |tx| {
        tx.write(0, 1)?;
        tx.write(1, 1)
    });
    if blocking {
        run_serially(stm.as_ref(), &item.program, &item.sched);
    } else {
        execute(stm.as_ref(), &item.program, &item.sched);
    }
    let h = stm.recorder().history();
    let wf = tm_model::is_well_formed(&h);
    if !wf {
        return SweepVerdict {
            wf,
            opaque: true,
            serializable: true,
            snapshot_isolated: true,
        };
    }
    SweepVerdict {
        wf,
        opaque: is_opaque_with(&h, &specs, search)
            .map(|r| r.opaque)
            .unwrap_or(false),
        serializable: is_serializable_with(&h, &specs, search).unwrap_or(false),
        snapshot_isolated: snapshot_isolated(&h, &specs).unwrap_or(false),
    }
}

/// Runs the full battery against TMs built by `make` (called with the
/// number of registers each sub-experiment needs; every history is taken
/// from a fresh instance). Single-threaded; equivalent to
/// [`conformance_parallel`] with `jobs = 1`.
pub fn check_conformance(make: &(dyn Fn(usize) -> Box<dyn Stm> + Sync)) -> ConformanceReport {
    conformance_parallel(make, 1)
}

/// [`check_conformance`] with the interleaving sweep sharded across `jobs`
/// scoped worker threads.
///
/// Every `(probe, schedule)` pair runs against a fresh TM instance, so the
/// items are independent; the per-item verdicts are merged back in schedule
/// order, making the report **identical for every `jobs` value** (the
/// property is pinned by a test below and by the harness property suite).
pub fn conformance_parallel(
    make: &(dyn Fn(usize) -> Box<dyn Stm> + Sync),
    jobs: usize,
) -> ConformanceReport {
    conformance_parallel_with(make, jobs, SearchConfig::default())
}

/// [`conformance_parallel`] with an explicit serialization-search
/// configuration for the per-history opacity/serializability checks.
///
/// This is how the *intra-history* parallel search composes with the
/// *inter-history* sweep sharding: `jobs` spreads independent `(probe,
/// schedule)` pairs across workers, while `search.search_jobs` parallelizes
/// the root placements of each individual check and `search.memo_capacity`
/// bounds its dead-end table. Verdicts are independent of both knobs (the
/// parallel search is verdict-identical and eviction only costs
/// recomputation), so the report stays byte-identical — pinned by the
/// property tests.
pub fn conformance_parallel_with(
    make: &(dyn Fn(usize) -> Box<dyn Stm> + Sync),
    jobs: usize,
    search: SearchConfig,
) -> ConformanceReport {
    let name = make(1).name().to_string();
    let blocking = make(1).blocking();
    let mut report = ConformanceReport {
        name,
        well_formed: true,
        opaque: true,
        serializable: true,
        snapshot_isolated: true,
        progressive_probe: false,
        no_lost_updates: true,
        violations: Vec::new(),
        histories_checked: 0,
    };
    let flag = |field: &mut bool, ok: bool, what: &str, violations: &mut Vec<String>| {
        if !ok {
            *field = false;
            if violations.len() < 8 {
                violations.push(what.to_string());
            }
        }
    };

    // ---- interleaving sweeps (sharded) ------------------------------------
    let items = sweep_items(blocking);
    let verdicts = parallel_map(items.len(), jobs, |i| {
        run_sweep_item(make, blocking, &items[i], search)
    });
    for (item, v) in items.iter().zip(&verdicts) {
        let SweepItem { pname, sched, .. } = item;
        report.histories_checked += 1;
        flag(
            &mut report.well_formed,
            v.wf,
            &format!("{pname} {sched:?}: ill-formed history"),
            &mut report.violations,
        );
        if !v.wf {
            continue;
        }
        flag(
            &mut report.opaque,
            v.opaque,
            &format!("{pname} {sched:?}: opacity violated"),
            &mut report.violations,
        );
        flag(
            &mut report.serializable,
            v.serializable,
            &format!("{pname} {sched:?}: committed txs not serializable"),
            &mut report.violations,
        );
        flag(
            &mut report.snapshot_isolated,
            v.snapshot_isolated,
            &format!("{pname} {sched:?}: snapshot isolation violated"),
            &mut report.violations,
        );
    }

    // ---- progressiveness probe (Section 6.2's discriminating schedule) ----
    if !blocking {
        let stm = make(2);
        let program = Program::new(vec![
            TxScript::new().read(0).read(1),
            TxScript::new().write(1, 9),
        ]);
        // T1 reads r0; T2 writes r1 and commits; T1 reads r1 (a conflicting
        // operation invoked after the conflicting peer completed).
        let out = execute(stm.as_ref(), &program, &[0, 1, 1, 0, 0]);
        report.progressive_probe = out.txs[0].committed;
    } else {
        report.progressive_probe = true; // serial execution never conflicts
    }

    // ---- threaded lost-update probe ----------------------------------------
    let stm = make(1);
    stm.recorder().set_enabled(false);
    let per_thread = 150;
    std::thread::scope(|scope| {
        for t in 0..2 {
            let stm = stm.as_ref();
            scope.spawn(move || {
                for _ in 0..per_thread {
                    run_tx(stm, t, |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    });
                }
            });
        }
    });
    let (v, _) = run_tx(stm.as_ref(), 0, |tx| tx.read(0));
    if v != 2 * per_thread {
        report.no_lost_updates = false;
        report.violations.push(format!(
            "counter: {} of {} increments survived",
            v,
            2 * per_thread
        ));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_stm::{MutantStm, Mutation};

    /// The pinned conformance matrix of the in-tree TMs (the reference a
    /// downstream implementor compares against).
    #[test]
    fn matrix_for_the_in_tree_suite() {
        // (name, opaque, serializable, si, progressive-probe)
        let expected: &[(&str, bool, bool, bool, bool)] = &[
            ("glock", true, true, true, true),
            ("tl2", true, true, true, false),
            ("dstm", true, true, true, true),
            ("astm", true, true, true, true),
            ("visible", true, true, true, true),
            ("tpl", true, true, true, true),
            ("mvstm", true, true, true, true),
            ("sistm", false, false, true, true),
            ("nonopaque", false, true, false, true),
        ];
        for stm in tm_stm::all_stms(2) {
            let name = stm.name();
            drop(stm);
            let factory = move |k: usize| -> Box<dyn tm_stm::Stm> {
                tm_stm::all_stms(k)
                    .into_iter()
                    .find(|s| s.name() == name)
                    .expect("name stable")
            };
            let r = check_conformance(&factory);
            let row = expected
                .iter()
                .find(|(n, ..)| *n == name)
                .unwrap_or_else(|| panic!("no expectation for {name}"));
            assert!(r.well_formed, "{name}: {:?}", r.violations);
            assert!(r.no_lost_updates, "{name}: {:?}", r.violations);
            assert_eq!(r.opaque, row.1, "{name} opacity: {:?}", r.violations);
            assert_eq!(r.serializable, row.2, "{name} ser: {:?}", r.violations);
            assert_eq!(r.snapshot_isolated, row.3, "{name} si: {:?}", r.violations);
            assert_eq!(
                r.progressive_probe, row.4,
                "{name} progressive: {:?}",
                r.violations
            );
            let floor = if name == "glock" { 6 } else { 60 };
            assert!(
                r.histories_checked >= floor,
                "{name}: swept {}",
                r.histories_checked
            );
        }
    }

    /// Satellite of the configurable-TM redesign: the register battery's
    /// verdicts are invariant under the clock scheme — the opaque clocked
    /// TMs stay opaque on sharded and deferred clocks, and SI-STM's
    /// anomaly profile is unchanged (the scheme moves contention around,
    /// never correctness).
    #[test]
    fn clocked_tms_keep_their_verdicts_under_every_clock_scheme() {
        use tm_stm::{ClockScheme, TmRegistry};
        let reg = TmRegistry::suite();
        for base in ["tl2", "mvstm", "sistm"] {
            for scheme in ClockScheme::SWEEP {
                if scheme.is_single() {
                    continue; // the default scheme is pinned by the matrix test
                }
                let spec = format!("{base}+{scheme}");
                let factory = reg.factory(&spec).expect("clocked TMs accept every scheme");
                let r = conformance_parallel(&factory, 2);
                assert!(r.well_formed, "{spec}: {:?}", r.violations);
                assert!(r.no_lost_updates, "{spec}: {:?}", r.violations);
                let opaque_expected = base != "sistm";
                assert_eq!(r.opaque, opaque_expected, "{spec}: {:?}", r.violations);
                assert_eq!(
                    r.serializable, opaque_expected,
                    "{spec}: {:?}",
                    r.violations
                );
                assert!(r.snapshot_isolated, "{spec}: {:?}", r.violations);
                // TL2 stays non-progressive (the rv check is scheme-independent);
                // the multi-version TMs keep passing the probe.
                assert_eq!(r.progressive_probe, base != "tl2", "{spec}");
            }
        }
    }

    #[test]
    fn mutants_fail_their_advertised_contracts() {
        let skip_read =
            check_conformance(&|k| Box::new(MutantStm::new(k, Mutation::SkipReadValidation)));
        assert!(!skip_read.opaque);
        assert!(skip_read.serializable, "{:?}", skip_read.violations);
        let skip_commit =
            check_conformance(&|k| Box::new(MutantStm::new(k, Mutation::SkipCommitValidation)));
        assert!(!skip_commit.serializable);
        // Lost updates under real threads are probabilistic at this scale;
        // the deterministic interleaving sweep above already convicts the
        // mutant, so the threaded probe is informative, not asserted.
        let baseline = check_conformance(&|k| Box::new(MutantStm::new(k, Mutation::None)));
        assert!(baseline.opaque && baseline.serializable && baseline.no_lost_updates);
    }

    #[test]
    fn report_rendering() {
        let r = check_conformance(&|k| Box::new(tm_stm::Tl2Stm::new(k)));
        assert!(header().contains("opaque"));
        assert!(r.row().contains("tl2"));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn parallel_sweep_is_deterministic_across_job_counts() {
        // The progressive/lost-update probes are inherently sequential and
        // shared; the sweep — the bulk of the work — must merge identically
        // for any worker count, including on a TM with real violations so
        // the violation lists (content AND order) are exercised.
        // The threaded lost-update probe is the one probabilistic component
        // (real threads); mask it out so the comparison pins exactly the
        // deterministic sweep + progressive probe.
        let normalize = |mut r: ConformanceReport| {
            r.no_lost_updates = true;
            r.violations.retain(|v| !v.starts_with("counter:"));
            r
        };
        for factory in [
            (|k| Box::new(MutantStm::new(k, Mutation::SkipReadValidation)) as Box<dyn tm_stm::Stm>)
                as fn(usize) -> Box<dyn tm_stm::Stm>,
            |k| Box::new(tm_stm::Tl2Stm::new(k)) as Box<dyn tm_stm::Stm>,
        ] {
            let sequential = normalize(conformance_parallel(&factory, 1));
            for jobs in [2, 4, 7] {
                let parallel = normalize(conformance_parallel(&factory, jobs));
                assert_eq!(sequential, parallel, "jobs={jobs}");
            }
        }
    }
}
