//! Tables and ASCII plots for experiment output.
//!
//! The paper has no numeric tables (it is a theory paper), so the
//! "regenerate every table and figure" duty falls on the experiment drivers
//! — these helpers render their results the way EXPERIMENTS.md records them.

use std::fmt::Write as _;

/// A simple left-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                let _ = write!(line, "{:<width$}", cells[i], width = widths[i] + 2);
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders one or more named series as an ASCII line chart (log-ish feel via
/// plain scaling), used for the "figure" outputs of the experiments.
///
/// `xs` are shared x-values; each series is `(name, ys)`.
pub fn ascii_chart(
    title: &str,
    xs: &[usize],
    series: &[(&str, Vec<f64>)],
    height: usize,
) -> String {
    let mut out = format!("{title}\n");
    let max_y = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .fold(1.0f64, f64::max);
    let width = xs.len();
    let symbols = ['*', 'o', '+', 'x', '#', '@'];
    let mut grid = vec![vec![' '; width * 3]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let sym = symbols[si % symbols.len()];
        for (xi, &y) in ys.iter().enumerate() {
            let row = if max_y <= 0.0 {
                height - 1
            } else {
                let frac = (y / max_y).clamp(0.0, 1.0);
                let r = ((1.0 - frac) * (height - 1) as f64).round() as usize;
                r.min(height - 1)
            };
            grid[row][xi * 3 + 1] = sym;
        }
    }
    for (r, line) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{max_y:>8.0} |")
        } else if r == height - 1 {
            format!("{:>8.0} |", 0.0)
        } else {
            format!("{:>8} |", "")
        };
        let body: String = line.iter().collect();
        let _ = writeln!(out, "{label}{}", body.trim_end());
    }
    let _ = writeln!(out, "{:>8} +{}", "", "-".repeat(width * 3));
    let xlabels: Vec<String> = xs.iter().map(|x| format!("{x}")).collect();
    let _ = writeln!(out, "{:>9} {}", "k =", xlabels.join("  "));
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "{:>10} {} = {}", "", symbols[si % symbols.len()], name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["stm", "k", "steps"]);
        t.row(&["dstm".into(), "64".into(), "130".into()]);
        t.row(&["tl2".into(), "64".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("stm"));
        assert!(s.contains("dstm"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn chart_contains_series_symbols_and_labels() {
        let xs = vec![2, 4, 8, 16];
        let s = ascii_chart(
            "max steps per read vs k",
            &xs,
            &[
                ("dstm", vec![4.0, 8.0, 16.0, 32.0]),
                ("tl2", vec![3.0, 3.0, 3.0, 3.0]),
            ],
            8,
        );
        assert!(s.contains("max steps per read"));
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("dstm"));
        assert!(s.contains("k ="));
    }

    #[test]
    fn chart_handles_flat_zero_series() {
        let s = ascii_chart("zeros", &[1, 2], &[("z", vec![0.0, 0.0])], 4);
        assert!(s.contains('z'));
    }
}
