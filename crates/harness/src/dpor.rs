//! Step-granular deterministic exploration of real TM executions.
//!
//! The op-level explorer in [`crate::sched`] interleaves whole transactional
//! operations, which is exactly the granularity at which the seeded
//! *concurrency* mutants of `tm_stm::mutants` are invisible: an op-granular
//! schedule can never split a clock tick between its load and its CAS. This
//! module closes that blind spot. The paper's own step model (Section 6.1)
//! defines a step as a single access on a single base shared object; the
//! instrumented [`tm_stm::base::Meter`] announces every such access through a
//! [`StepProbe`], and the cooperative stepper here turns each announcement
//! into a yield-point.
//!
//! # How a run works
//!
//! Every logical thread of a [`Program`] becomes one OS thread. Before each
//! *blocking* base-object access (one performed while holding no
//! record-section mutex) the probe parks the worker; a driver grants exactly
//! one parked step at a time, so the whole execution is serialized at step
//! granularity and is deterministic in the granted schedule. Two extra rules
//! make this sound for the real protocols:
//!
//! * every worker parks once at [`Step::Start`] *before* `stm.begin`, so
//!   transaction-id assignment and the begin-time clock sample are themselves
//!   scheduled steps;
//! * a pending [`AccessKind::Acquire`] on a cell some other thread holds is
//!   *disabled* — the driver never grants it, so the underlying mutex
//!   acquisition can never block for real. Releases are free (non-parking)
//!   and re-enable the waiters within the holder's own granted step.
//!
//! Accesses inside record sections (`Meter::begin_atomic`) are logged but
//! never park: a worker must not sleep while holding an unmodeled mutex.
//! They execute within the granted step that opened the section, which is
//! why the dependence relation below treats record-section steps
//! conservatively.
//!
//! # Partial-order reduction
//!
//! The explorer runs a sleep-set DFS over granted schedules: after a branch
//! `t` is fully explored at a node, `t` goes to sleep for the remaining
//! branches and wakes only when a step *dependent* on `t`'s pending step is
//! executed. Two steps are dependent when they may not commute:
//!
//! * two accesses conflict iff they may touch the same base object and at
//!   least one writes (`Write`, `Rmw`, `Acquire`, `Release`);
//! * a record-section step may also read and write transaction *status*
//!   words (settle / wound-or-die / clean run inside the section), so
//!   `Record(_)` and `Status(_)` cells are conservatively aliased;
//! * `Start` carries the transaction-id draw and the begin-time clock
//!   sample, so two `Start`s conflict (id order decides wound-or-die
//!   seniority) and `Start` conflicts with any clock write.
//!
//! Sleep sets never lose a Mazurkiewicz trace, so with an unlimited budget
//! the explored outcome set equals the naive enumeration's — a property the
//! test suite checks for every non-blocking TM. A bounded-preemption mode
//! (`preemption_bound`) additionally prunes schedules with more than K
//! context switches away from an enabled thread; that mode is an explicit
//! under-approximation, in the spirit of bounded model checking.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::race::{self, RaceViolation};
use crate::script::{Program, ScriptOp};
use tm_stm::trace_cells::{AccessKind, CellId, StepProbe, TraceEvent};
use tm_stm::{Stm, StmConfig};

/// A shared, probe-wired TM instance for the stepper to drive.
pub type SharedStm = Arc<dyn Stm>;

/// Builds a fresh TM. The explorer passes its own gate as the probe for
/// stepped runs and `None` for the serial reference runs.
pub type StmFactory<'a> = &'a (dyn Fn(Option<Arc<dyn StepProbe>>) -> SharedStm + Sync);

/// Wires `probe` into a fresh [`StmConfig`] for `k` registers — the shape
/// every factory closure wants.
pub fn probed_config(k: usize, probe: Option<Arc<dyn StepProbe>>) -> StmConfig {
    let cfg = StmConfig::new(k);
    match probe {
        Some(p) => cfg.probe(p),
        None => cfg,
    }
}

// ---------------------------------------------------------------------------
// Steps and dependence
// ---------------------------------------------------------------------------

/// One schedulable yield-point of a worker thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// The pre-`begin` park: covers the transaction-id draw and the
    /// begin-time clock sample (`GlobalClock::peek`), neither of which is a
    /// metered access of its own.
    Start,
    /// A blocking base-object access announced by the meter.
    Access(CellId, AccessKind),
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Step::Start => write!(f, "start"),
            Step::Access(c, k) => write!(f, "{k:?}({c})"),
        }
    }
}

/// May these two cells name overlapping storage, as far as one granted step
/// is concerned? Record-section steps execute settle / clean / wound-or-die
/// logic that reads and writes transaction status words without parking, so
/// a `Record` step's true footprint includes `Status` cells.
fn cells_may_alias(a: CellId, b: CellId) -> bool {
    a == b
        || matches!(
            (a, b),
            (CellId::Record(_), CellId::Status(_)) | (CellId::Status(_), CellId::Record(_))
        )
}

/// The dependence relation of the partial-order reduction: `true` when the
/// two steps may not commute and both orders must be explored.
pub fn dependent(a: Step, b: Step) -> bool {
    match (a, b) {
        // Starts draw transaction ids from a shared counter; id order is
        // observable through seniority-based contention management.
        (Step::Start, Step::Start) => true,
        // Start samples the global clock (peek), so it conflicts with any
        // clock mutation.
        (Step::Start, Step::Access(c, k)) | (Step::Access(c, k), Step::Start) => {
            matches!(c, CellId::Clock(_)) && k.writes()
        }
        (Step::Access(c1, k1), Step::Access(c2, k2)) => {
            cells_may_alias(c1, c2) && (k1.writes() || k2.writes())
        }
    }
}

// ---------------------------------------------------------------------------
// The step gate: probe-side parking, driver-side granting
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum SlotState {
    /// The worker is executing (or starting up) and will park or finish.
    Running,
    /// The worker is parked at this step, waiting for a grant.
    Parked(Step),
    /// The driver granted the step; the worker has not resumed yet.
    Granted,
    /// The worker has finished and recorded its outcome.
    Finished,
}

#[derive(Debug)]
struct GateInner {
    slots: Vec<SlotState>,
    outcomes: Vec<Option<StepTxOutcome>>,
    trace: Vec<TraceEvent>,
    /// Lock-shaped cells currently held (commit locks). `Acquire` steps on
    /// these are disabled.
    held: BTreeSet<CellId>,
    /// Once set, parks return immediately: the run is being torn down (or
    /// has completed and is being inspected) and must free-run to the end.
    poisoned: bool,
}

/// The rendezvous between worker probes and the scheduling driver.
#[derive(Debug)]
pub struct StepGate {
    inner: Mutex<GateInner>,
    cv: Condvar,
}

impl StepGate {
    fn new(n: usize) -> Self {
        StepGate {
            inner: Mutex::new(GateInner {
                slots: vec![SlotState::Running; n],
                outcomes: vec![None; n],
                trace: Vec::new(),
                held: BTreeSet::new(),
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Locks the gate, shrugging off poisoning: a panicking worker must not
    /// take the whole exploration down with it.
    fn lock(&self) -> MutexGuard<'_, GateInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Parks `thread` at `step` until the driver grants it. Returns `false`
    /// when the gate is poisoned and the worker should free-run.
    fn park(&self, thread: usize, step: Step) -> bool {
        let mut g = self.lock();
        if g.poisoned {
            return false;
        }
        g.slots[thread] = SlotState::Parked(step);
        self.cv.notify_all();
        loop {
            if g.poisoned {
                g.slots[thread] = SlotState::Running;
                self.cv.notify_all();
                return false;
            }
            if g.slots[thread] == SlotState::Granted {
                g.slots[thread] = SlotState::Running;
                return true;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn finish(&self, thread: usize, outcome: StepTxOutcome) {
        let mut g = self.lock();
        g.outcomes[thread] = Some(outcome);
        g.slots[thread] = SlotState::Finished;
        self.cv.notify_all();
    }

    fn poison(&self) {
        let mut g = self.lock();
        g.poisoned = true;
        self.cv.notify_all();
    }
}

impl StepProbe for StepGate {
    fn on_access(&self, thread: usize, cell: CellId, kind: AccessKind, blocking: bool) {
        if !blocking {
            // Record-section accesses and releases execute inside the
            // current granted step; log them in true order, no park.
            let mut g = self.lock();
            if kind == AccessKind::Release {
                g.held.remove(&cell);
            }
            if !g.poisoned {
                g.trace
                    .push(TraceEvent::Access(tm_stm::trace_cells::AccessEvent {
                        thread,
                        cell,
                        kind,
                    }));
            }
            return;
        }
        let granted = self.park(thread, Step::Access(cell, kind));
        let mut g = self.lock();
        if kind == AccessKind::Acquire {
            g.held.insert(cell);
        }
        if granted {
            g.trace
                .push(TraceEvent::Access(tm_stm::trace_cells::AccessEvent {
                    thread,
                    cell,
                    kind,
                }));
        }
    }

    fn on_stamp(&self, thread: usize, ts: u64) {
        let mut g = self.lock();
        if !g.poisoned {
            g.trace.push(TraceEvent::Stamp { thread, ts });
        }
    }
}

// ---------------------------------------------------------------------------
// Outcomes
// ---------------------------------------------------------------------------

/// The externally observable result of one scripted transaction under the
/// stepper. `Ord` so outcome *vectors* can live in sets and serve as
/// equivalence-class keys.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct StepTxOutcome {
    /// Did the final commit succeed?
    pub committed: bool,
    /// Values returned by the script's reads, in order, up to the abort.
    pub reads: Vec<i64>,
}

// ---------------------------------------------------------------------------
// A live run: spawned workers plus the driver handle
// ---------------------------------------------------------------------------

/// One stepped execution in flight.
pub struct LiveRun {
    gate: Arc<StepGate>,
    stm: SharedStm,
    handles: Vec<JoinHandle<()>>,
    /// The schedule granted so far.
    pub schedule: Vec<usize>,
}

impl LiveRun {
    /// Spawns workers for every thread of `program` on a fresh TM from
    /// `factory`. All workers immediately park at [`Step::Start`].
    pub fn spawn(factory: StmFactory<'_>, program: &Program) -> LiveRun {
        let n = program.threads.len();
        let gate = Arc::new(StepGate::new(n));
        let stm = factory(Some(gate.clone() as Arc<dyn StepProbe>));
        let mut handles = Vec::with_capacity(n);
        for (t, script) in program.threads.iter().enumerate() {
            let gate = gate.clone();
            let stm = stm.clone();
            let ops = script.ops.clone();
            handles.push(std::thread::spawn(move || {
                let body = AssertUnwindSafe(|| {
                    gate.park(t, Step::Start);
                    let mut reads = Vec::new();
                    let mut tx = Some(stm.begin(t));
                    let mut aborted = false;
                    for op in &ops {
                        let tx_ref = tx.as_mut().expect("tx live while script runs");
                        let failed = match *op {
                            ScriptOp::Read(o) => match tx_ref.read(o) {
                                Ok(v) => {
                                    reads.push(v);
                                    false
                                }
                                Err(_) => true,
                            },
                            ScriptOp::Write(o, v) => tx_ref.write(o, v).is_err(),
                        };
                        if failed {
                            aborted = true;
                            break;
                        }
                    }
                    let committed = if aborted {
                        drop(tx.take());
                        false
                    } else {
                        tx.take().expect("tx live at commit").commit().is_ok()
                    };
                    StepTxOutcome { committed, reads }
                });
                match catch_unwind(body) {
                    Ok(out) => gate.finish(t, out),
                    Err(_) => gate.finish(
                        t,
                        StepTxOutcome {
                            committed: false,
                            reads: Vec::new(),
                        },
                    ),
                }
            }));
        }
        LiveRun {
            gate,
            stm,
            handles,
            schedule: Vec::new(),
        }
    }

    /// Blocks until every worker is parked or finished, then returns each
    /// live thread's pending step (`None` for finished threads).
    pub fn pending(&self) -> Vec<Option<Step>> {
        let mut g = self.gate.lock();
        loop {
            if g.slots
                .iter()
                .all(|s| matches!(s, SlotState::Parked(_) | SlotState::Finished))
            {
                return g
                    .slots
                    .iter()
                    .map(|s| match s {
                        SlotState::Parked(step) => Some(*step),
                        _ => None,
                    })
                    .collect();
            }
            g = self.gate.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The lock-shaped cells currently held.
    pub fn held(&self) -> BTreeSet<CellId> {
        self.gate.lock().held.clone()
    }

    /// Is `step` grantable right now? Only an `Acquire` on a held cell is
    /// ever disabled.
    pub fn enabled(&self, step: Step, held: &BTreeSet<CellId>) -> bool {
        match step {
            Step::Access(cell, AccessKind::Acquire) => !held.contains(&cell),
            _ => true,
        }
    }

    /// Grants one step to `thread` and blocks until it parks again or
    /// finishes. Waits for the worker to park first (right after `spawn`
    /// it may still be starting up). Returns the step that was executed.
    pub fn advance(&mut self, thread: usize) -> Step {
        let mut g = self.gate.lock();
        let step = loop {
            match g.slots[thread] {
                SlotState::Parked(step) => break step,
                SlotState::Finished => panic!("advance({thread}): already finished"),
                _ => g = self.gate.cv.wait(g).unwrap_or_else(|e| e.into_inner()),
            }
        };
        g.slots[thread] = SlotState::Granted;
        self.gate.cv.notify_all();
        loop {
            if matches!(g.slots[thread], SlotState::Parked(_) | SlotState::Finished) {
                break;
            }
            g = self.gate.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        drop(g);
        self.schedule.push(thread);
        step
    }

    /// True when every worker has finished.
    pub fn is_done(&self) -> bool {
        self.pending().iter().all(Option::is_none)
    }

    /// Tears the run down: poisons the gate so every parked worker
    /// free-runs to completion, joins them, and returns the per-thread
    /// outcomes, the step trace, and the final register state.
    pub fn finish(mut self, k: usize) -> RunResult {
        self.gate.poison();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        let (outcomes, trace) = {
            let mut g = self.gate.lock();
            let outcomes = g
                .outcomes
                .iter_mut()
                .map(|o| {
                    o.take().unwrap_or(StepTxOutcome {
                        committed: false,
                        reads: Vec::new(),
                    })
                })
                .collect();
            (outcomes, std::mem::take(&mut g.trace))
        };
        // Safe to run unmetered now: the gate is poisoned, so the read-back
        // transaction's accesses cannot park.
        let final_state = read_back(self.stm.as_ref(), k);
        RunResult {
            schedule: std::mem::take(&mut self.schedule),
            outcomes,
            trace,
            final_state,
        }
    }
}

impl Drop for LiveRun {
    fn drop(&mut self) {
        self.gate.poison();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Everything a completed stepped execution left behind.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The granted schedule (one thread index per step).
    pub schedule: Vec<usize>,
    /// Per-thread outcomes.
    pub outcomes: Vec<StepTxOutcome>,
    /// The base-object access trace, in execution order.
    pub trace: Vec<TraceEvent>,
    /// Register values after all transactions finished.
    pub final_state: Vec<i64>,
}

/// Reads registers `0..k` through a throwaway transaction.
fn read_back(stm: &dyn Stm, k: usize) -> Vec<i64> {
    let mut tx = stm.begin(0);
    let state = (0..k).map(|o| tx.read(o).unwrap_or(i64::MIN)).collect();
    drop(tx);
    state
}

// ---------------------------------------------------------------------------
// Exploration
// ---------------------------------------------------------------------------

/// Budget and mode knobs for [`explore`].
#[derive(Clone, Debug)]
pub struct DporConfig {
    /// Stop after this many complete interleavings (sets `truncated`).
    pub max_interleavings: usize,
    /// With `Some(k)`, prune schedules that switch away from an enabled
    /// thread more than `k` times. `None` explores everything.
    pub preemption_bound: Option<usize>,
    /// Sleep-set reduction on (the default) or off (naive enumeration, for
    /// the equivalence tests).
    pub sleep_sets: bool,
    /// Run the vector-clock race checker on every complete trace.
    pub check_races: bool,
    /// Check every distinct outcome for committed-transaction
    /// serializability against serial reference runs.
    pub check_serializability: bool,
    /// Stop the search as soon as the first violation is found — the
    /// conviction mode, where one replayable witness is the goal.
    pub stop_on_violation: bool,
}

impl Default for DporConfig {
    fn default() -> Self {
        DporConfig {
            max_interleavings: 20_000,
            preemption_bound: None,
            sleep_sets: true,
            check_races: true,
            check_serializability: true,
            stop_on_violation: false,
        }
    }
}

/// Why a schedule was convicted.
#[derive(Clone, Debug)]
pub enum ConvictionKind {
    /// The access trace violated a vector-clock invariant.
    Race(RaceViolation),
    /// All-committed reads (or the final state) match no serial order of
    /// the committed transactions.
    NonSerializableOutcome,
}

impl std::fmt::Display for ConvictionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvictionKind::Race(v) => write!(f, "{v}"),
            ConvictionKind::NonSerializableOutcome => {
                write!(f, "committed transactions are not serializable")
            }
        }
    }
}

/// A convicted schedule: replayable evidence of a violation.
#[derive(Clone, Debug)]
pub struct Conviction {
    /// The granted schedule that produced the violation.
    pub schedule: Vec<usize>,
    /// What went wrong.
    pub kind: ConvictionKind,
}

/// What [`explore`] found.
#[derive(Clone, Debug, Default)]
pub struct ExploreResult {
    /// Complete interleavings executed.
    pub interleavings: usize,
    /// True when `max_interleavings` cut the search short.
    pub truncated: bool,
    /// Every distinct per-thread outcome vector observed.
    pub outcomes: BTreeSet<Vec<StepTxOutcome>>,
    /// Convicted schedules, in discovery order.
    pub violations: Vec<Conviction>,
}

/// A deferred DFS branch.
struct Branch {
    prefix: Vec<usize>,
    sleep: Vec<(usize, Step)>,
    preemptions: usize,
}

/// Explores the step-level interleavings of `program` on TMs built by
/// `factory`, checking each complete trace as configured.
pub fn explore(factory: StmFactory<'_>, program: &Program, cfg: &DporConfig) -> ExploreResult {
    let k = program.required_k().max(1);
    let n = program.threads.len();
    let mut res = ExploreResult::default();
    // Memoized verdicts: (outcomes, final state) -> serializable?
    let mut serial_cache: BTreeMap<(Vec<StepTxOutcome>, Vec<i64>), bool> = BTreeMap::new();
    let mut stack = vec![Branch {
        prefix: Vec::new(),
        sleep: Vec::new(),
        preemptions: 0,
    }];

    while let Some(branch) = stack.pop() {
        if res.interleavings >= cfg.max_interleavings {
            res.truncated = true;
            break;
        }
        if cfg.stop_on_violation && !res.violations.is_empty() {
            break;
        }
        let mut run = LiveRun::spawn(factory, program);
        for &t in &branch.prefix {
            run.advance(t);
        }
        let mut sleep = branch.sleep;
        let mut preemptions = branch.preemptions;
        loop {
            let pending = run.pending();
            if pending.iter().all(Option::is_none) {
                // Terminal: a complete interleaving.
                res.interleavings += 1;
                let result = run.finish(k);
                judge(factory, program, cfg, &result, &mut serial_cache, &mut res);
                break;
            }
            let held = run.held();
            let last = run.schedule.last().copied();
            let last_runnable =
                last.is_some_and(|l| pending[l].is_some_and(|s| run.enabled(s, &held)));
            // Candidates in a fixed order: the last-granted thread first
            // (continuing it is free), then ascending thread index.
            let mut order: Vec<usize> = (0..n).collect();
            if let Some(l) = last {
                order.retain(|&t| t != l);
                order.insert(0, l);
            }
            let mut candidates: Vec<(usize, Step, usize)> = Vec::new();
            for t in order {
                let Some(step) = pending[t] else { continue };
                if !run.enabled(step, &held) {
                    continue;
                }
                let cost = preemptions + usize::from(last.is_some_and(|l| l != t) && last_runnable);
                if cfg.preemption_bound.is_some_and(|bound| cost > bound) {
                    continue;
                }
                if cfg.sleep_sets && sleep.iter().any(|&(s, _)| s == t) {
                    continue;
                }
                candidates.push((t, step, cost));
            }
            let Some(&(t, step, cost)) = candidates.first() else {
                // Sleep-blocked (a redundant interleaving) or pruned by the
                // preemption bound: abandon this branch.
                break;
            };
            // Defer the siblings. Sibling i sleeps on everything currently
            // asleep plus every earlier candidate, filtered down to the
            // steps independent of its own.
            let mut sibling_sleep = sleep.clone();
            sibling_sleep.push((t, step));
            for w in candidates.windows(2) {
                let (s, s_step, s_cost) = w[1];
                let mut prefix = run.schedule.clone();
                prefix.push(s);
                stack.push(Branch {
                    prefix,
                    sleep: sibling_sleep
                        .iter()
                        .copied()
                        .filter(|&(_, other)| !dependent(other, s_step))
                        .collect(),
                    preemptions: s_cost,
                });
                sibling_sleep.push((s, s_step));
            }
            // Continue inline with the first candidate.
            sleep.retain(|&(_, other)| !dependent(other, step));
            preemptions = cost;
            run.advance(t);
        }
    }
    res
}

/// Checks one completed run, appending convictions to `res`.
fn judge(
    factory: StmFactory<'_>,
    program: &Program,
    cfg: &DporConfig,
    result: &RunResult,
    serial_cache: &mut BTreeMap<(Vec<StepTxOutcome>, Vec<i64>), bool>,
    res: &mut ExploreResult,
) {
    res.outcomes.insert(result.outcomes.clone());
    if cfg.check_races {
        for v in race::check(&result.trace, program.threads.len()) {
            res.violations.push(Conviction {
                schedule: result.schedule.clone(),
                kind: ConvictionKind::Race(v),
            });
        }
    }
    if cfg.check_serializability {
        let key = (result.outcomes.clone(), result.final_state.clone());
        let ok = *serial_cache.entry(key).or_insert_with(|| {
            committed_serializable(factory, program, &result.outcomes, &result.final_state)
        });
        if !ok {
            res.violations.push(Conviction {
                schedule: result.schedule.clone(),
                kind: ConvictionKind::NonSerializableOutcome,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Serial reference
// ---------------------------------------------------------------------------

/// Does some serial order of the *committed* transactions reproduce their
/// read values and the observed final state? Aborted transactions are
/// excluded: outcome-level checking cannot judge their reads (that is the
/// opacity checker's job on recorded histories); what it can judge is that
/// committed transactions form a serializable whole — exactly the invariant
/// an unlicensed commit fast path breaks.
pub fn committed_serializable(
    factory: StmFactory<'_>,
    program: &Program,
    outcomes: &[StepTxOutcome],
    final_state: &[i64],
) -> bool {
    let committed: Vec<usize> = (0..outcomes.len())
        .filter(|&i| outcomes[i].committed)
        .collect();
    let mut orders = Vec::new();
    permutations(&committed, &mut Vec::new(), &mut orders);
    'order: for order in orders {
        let stm = factory(None);
        stm.recorder().set_enabled(false);
        let mut reads_by_thread: BTreeMap<usize, Vec<i64>> = BTreeMap::new();
        for &t in &order {
            let mut tx = stm.begin(t);
            let mut reads = Vec::new();
            for op in &program.threads[t].ops {
                let failed = match *op {
                    ScriptOp::Read(o) => match tx.read(o) {
                        Ok(v) => {
                            reads.push(v);
                            false
                        }
                        Err(_) => true,
                    },
                    ScriptOp::Write(o, v) => tx.write(o, v).is_err(),
                };
                if failed {
                    continue 'order; // serial aborts: not a witness order
                }
            }
            if tx.commit().is_err() {
                continue 'order;
            }
            reads_by_thread.insert(t, reads);
        }
        let serial_final = read_back(stm.as_ref(), final_state.len());
        let reads_match = committed
            .iter()
            .all(|&t| reads_by_thread.get(&t) == Some(&outcomes[t].reads));
        if reads_match && serial_final == final_state {
            return true;
        }
    }
    false
}

/// All permutations of `items`, appended to `out`.
fn permutations(items: &[usize], prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if prefix.len() == items.len() {
        out.push(prefix.clone());
        return;
    }
    for &x in items {
        if !prefix.contains(&x) {
            prefix.push(x);
            permutations(items, prefix, out);
            prefix.pop();
        }
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Replays `schedule` step for step on a fresh TM, completing round-robin
/// once the schedule is exhausted. Entries naming finished or disabled
/// threads are skipped, so minimized (shrunken) schedules stay replayable.
pub fn replay_schedule(
    factory: StmFactory<'_>,
    program: &Program,
    schedule: &[usize],
) -> RunResult {
    let k = program.required_k().max(1);
    let n = program.threads.len();
    let mut run = LiveRun::spawn(factory, program);
    for &t in schedule {
        if t >= n {
            continue;
        }
        let pending = run.pending();
        let held = run.held();
        match pending[t] {
            Some(step) if run.enabled(step, &held) => {
                run.advance(t);
            }
            _ => {}
        }
    }
    // Round-robin completion.
    loop {
        let pending = run.pending();
        if pending.iter().all(Option::is_none) {
            break;
        }
        let held = run.held();
        let next = (0..n).find(|&t| pending[t].is_some_and(|s| run.enabled(s, &held)));
        match next {
            Some(t) => {
                run.advance(t);
            }
            None => break, // all live threads disabled: cannot happen, but don't spin
        }
    }
    run.finish(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::TxScript;
    use tm_stm::Tl2Stm;

    fn tl2_factory() -> impl Fn(Option<Arc<dyn StepProbe>>) -> SharedStm + Sync {
        |probe| Arc::new(Tl2Stm::with_config(&probed_config(2, probe))) as SharedStm
    }

    fn writer_vs_writer() -> Program {
        Program::new(vec![
            TxScript::new().write(0, 1),
            TxScript::new().write(1, 2),
        ])
    }

    #[test]
    fn dependence_is_symmetric_and_start_conflicts_with_clock_writes() {
        let cases = [
            Step::Start,
            Step::Access(CellId::Lock(0), AccessKind::Read),
            Step::Access(CellId::Lock(0), AccessKind::Rmw),
            Step::Access(CellId::Clock(0), AccessKind::Rmw),
            Step::Access(CellId::Record(1), AccessKind::Rmw),
            Step::Access(CellId::Status(0), AccessKind::Read),
            Step::Access(CellId::CommitLock, AccessKind::Acquire),
        ];
        for &a in &cases {
            for &b in &cases {
                assert_eq!(dependent(a, b), dependent(b, a), "{a} vs {b}");
            }
        }
        assert!(dependent(Step::Start, Step::Start));
        assert!(dependent(
            Step::Start,
            Step::Access(CellId::Clock(0), AccessKind::Rmw)
        ));
        assert!(!dependent(
            Step::Start,
            Step::Access(CellId::Lock(0), AccessKind::Rmw)
        ));
        // Two reads of the same cell commute; read/write does not.
        assert!(!dependent(
            Step::Access(CellId::Lock(3), AccessKind::Read),
            Step::Access(CellId::Lock(3), AccessKind::Read)
        ));
        assert!(dependent(
            Step::Access(CellId::Lock(3), AccessKind::Read),
            Step::Access(CellId::Lock(3), AccessKind::Write)
        ));
        // A record section may wound: it aliases status words.
        assert!(dependent(
            Step::Access(CellId::Record(1), AccessKind::Rmw),
            Step::Access(CellId::Status(0), AccessKind::Read)
        ));
    }

    #[test]
    fn single_run_is_deterministic_and_serial_commits() {
        let factory = tl2_factory();
        let p = writer_vs_writer();
        let r1 = replay_schedule(&factory, &p, &[]);
        let r2 = replay_schedule(&factory, &p, &[]);
        assert_eq!(r1.outcomes, r2.outcomes);
        assert_eq!(r1.schedule, r2.schedule, "round-robin replay is stable");
        assert!(r1.outcomes.iter().all(|o| o.committed));
        assert_eq!(r1.final_state, vec![1, 2]);
        assert!(!r1.trace.is_empty(), "the probe must have seen steps");
    }

    #[test]
    fn explore_covers_disjoint_writers_cleanly() {
        let factory = tl2_factory();
        let cfg = DporConfig::default();
        let res = explore(&factory, &writer_vs_writer(), &cfg);
        assert!(!res.truncated);
        assert!(res.interleavings >= 1);
        assert!(
            res.violations.is_empty(),
            "TL2 on disjoint writers must be clean: {:?}",
            res.violations
        );
        // Both writers always commit, reads are empty.
        assert_eq!(res.outcomes.len(), 1);
    }

    #[test]
    fn sleep_sets_explore_fewer_interleavings_with_the_same_outcomes() {
        let factory = tl2_factory();
        let p = Program::new(vec![
            TxScript::new().read(0).write(1, 5),
            TxScript::new().write(0, 7),
        ]);
        let naive = explore(
            &factory,
            &p,
            &DporConfig {
                sleep_sets: false,
                check_races: false,
                check_serializability: false,
                ..DporConfig::default()
            },
        );
        let reduced = explore(
            &factory,
            &p,
            &DporConfig {
                check_races: false,
                check_serializability: false,
                ..DporConfig::default()
            },
        );
        assert!(!naive.truncated && !reduced.truncated);
        assert_eq!(naive.outcomes, reduced.outcomes);
        assert!(
            reduced.interleavings < naive.interleavings,
            "POR must prune: {} !< {}",
            reduced.interleavings,
            naive.interleavings
        );
    }

    #[test]
    fn preemption_bound_zero_still_completes() {
        let factory = tl2_factory();
        let p = Program::new(vec![
            TxScript::new().read(0).write(0, 1),
            TxScript::new().read(0).write(0, 2),
        ]);
        let res = explore(
            &factory,
            &p,
            &DporConfig {
                preemption_bound: Some(0),
                ..DporConfig::default()
            },
        );
        assert!(res.interleavings >= 1, "serial schedules fit any bound");
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn committed_serializable_accepts_serial_truth() {
        let factory = tl2_factory();
        let p = writer_vs_writer();
        let r = replay_schedule(&factory, &p, &[]);
        assert!(committed_serializable(
            &factory,
            &p,
            &r.outcomes,
            &r.final_state
        ));
        // A fabricated impossible outcome is rejected.
        let wrong = vec![
            StepTxOutcome {
                committed: true,
                reads: vec![],
            },
            StepTxOutcome {
                committed: true,
                reads: vec![],
            },
        ];
        assert!(!committed_serializable(&factory, &p, &wrong, &[9, 9]));
    }
}
