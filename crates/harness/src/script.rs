//! Transaction scripts: straight-line transactional programs.
//!
//! The lower-bound experiment and the opacity-validation experiments need
//! *reproducible* interleavings of transactions. A [`TxScript`] is a fixed
//! sequence of register operations executed as one transaction; a
//! [`Program`] is one script per logical thread; the scheduler in
//! [`crate::sched`] interleaves them deterministically.

use std::fmt;

/// One scripted transactional operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScriptOp {
    /// Read register `.0`.
    Read(usize),
    /// Write value `.1` to register `.0`.
    Write(usize, i64),
}

impl fmt::Display for ScriptOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptOp::Read(o) => write!(f, "r(r{o})"),
            ScriptOp::Write(o, v) => write!(f, "w(r{o},{v})"),
        }
    }
}

/// A transaction script: its operations, executed in order, then a commit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TxScript {
    /// The operations of the transaction.
    pub ops: Vec<ScriptOp>,
}

impl TxScript {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a read.
    pub fn read(mut self, obj: usize) -> Self {
        self.ops.push(ScriptOp::Read(obj));
        self
    }

    /// Appends a write.
    pub fn write(mut self, obj: usize, v: i64) -> Self {
        self.ops.push(ScriptOp::Write(obj, v));
        self
    }

    /// A script reading registers `objs` in order.
    pub fn reader(objs: impl IntoIterator<Item = usize>) -> Self {
        TxScript {
            ops: objs.into_iter().map(ScriptOp::Read).collect(),
        }
    }

    /// A script writing `v` to each register of `objs` in order.
    pub fn writer(objs: impl IntoIterator<Item = usize>, v: i64) -> Self {
        TxScript {
            ops: objs.into_iter().map(|o| ScriptOp::Write(o, v)).collect(),
        }
    }

    /// Number of scheduler actions this script contributes: its operations
    /// plus the final commit.
    pub fn actions(&self) -> usize {
        self.ops.len() + 1
    }
}

/// A program: one transaction script per logical thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Per-thread scripts.
    pub threads: Vec<TxScript>,
}

impl Program {
    /// A program over the given scripts.
    pub fn new(threads: Vec<TxScript>) -> Self {
        Program { threads }
    }

    /// Per-thread action counts (for schedule enumeration).
    pub fn action_counts(&self) -> Vec<usize> {
        self.threads.iter().map(|t| t.actions()).collect()
    }

    /// The highest register index touched, if any.
    pub fn max_register(&self) -> Option<usize> {
        self.threads
            .iter()
            .flat_map(|t| t.ops.iter())
            .map(|op| match op {
                ScriptOp::Read(o) | ScriptOp::Write(o, _) => *o,
            })
            .max()
    }

    /// The number of registers a TM needs to run this program.
    pub fn required_k(&self) -> usize {
        self.max_register().map_or(0, |m| m + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let s = TxScript::new().read(0).write(1, 5).read(1);
        assert_eq!(
            s.ops,
            vec![ScriptOp::Read(0), ScriptOp::Write(1, 5), ScriptOp::Read(1)]
        );
        assert_eq!(s.actions(), 4);
        assert_eq!(TxScript::reader(0..3).ops.len(), 3);
        assert_eq!(
            TxScript::writer(0..2, 9).ops,
            vec![ScriptOp::Write(0, 9), ScriptOp::Write(1, 9)]
        );
    }

    #[test]
    fn program_accounting() {
        let p = Program::new(vec![TxScript::reader(0..4), TxScript::writer(2..6, 1)]);
        assert_eq!(p.action_counts(), vec![5, 5]);
        assert_eq!(p.max_register(), Some(5));
        assert_eq!(p.required_k(), 6);
        assert_eq!(Program::default().required_k(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(ScriptOp::Read(3).to_string(), "r(r3)");
        assert_eq!(ScriptOp::Write(0, -2).to_string(), "w(r0,-2)");
    }
}
