//! The deterministic interleaving explorer.
//!
//! Executes a [`Program`] against any non-blocking TM under an explicit
//! [`Schedule`] — a sequence of thread indices, each meaning "that thread
//! performs its next action (operation or commit)". Because every TM in
//! `tm-stm` except the global-lock one is non-blocking at operation
//! granularity, a single OS thread can drive any interleaving, making
//! anomalies (and their absence) perfectly reproducible:
//!
//! * exhaustive enumeration of all interleavings of small programs
//!   ([`all_schedules`]) powers the opacity-validation experiment E11;
//! * seeded random schedules ([`random_schedule`]) scale to larger programs;
//! * hand-written schedules reproduce the paper's scenarios exactly (the
//!   proof sketch of Theorem 3, TL2's non-progressiveness, the Section 2
//!   inconsistent-view hazard).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::script::{Program, ScriptOp};
use tm_stm::{StepReport, Stm, Tx};

/// A schedule: thread indices in the order they take actions.
pub type Schedule = Vec<usize>;

/// The fate and observations of one scripted transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxOutcome {
    /// Did the transaction commit?
    pub committed: bool,
    /// Values returned by its reads, in script order (stops early if the
    /// transaction aborted mid-script).
    pub reads: Vec<i64>,
    /// Per-operation step report.
    pub steps: StepReport,
}

/// The result of executing a program under a schedule.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// Per-thread transaction outcomes.
    pub txs: Vec<TxOutcome>,
}

impl ExecOutcome {
    /// Number of committed transactions.
    pub fn commits(&self) -> usize {
        self.txs.iter().filter(|t| t.committed).count()
    }
}

/// Executes `program` on `stm` under `schedule`.
///
/// Schedule entries pointing at finished (committed/aborted) threads are
/// skipped, so any sequence long enough is valid; [`complete_schedule`]
/// appends a round-robin tail to guarantee completion.
pub fn execute(stm: &dyn Stm, program: &Program, schedule: &[usize]) -> ExecOutcome {
    assert!(
        stm.k() >= program.required_k(),
        "program touches register {} but TM has k={}",
        program.required_k().saturating_sub(1),
        stm.k()
    );
    assert!(
        program.threads.len() <= 1 || !stm.blocking(),
        "blocking TM '{}' cannot be interleaved on one OS thread",
        stm.name()
    );
    struct Thread<'a> {
        tx: Option<Box<dyn Tx + 'a>>,
        pc: usize,
        committed: bool,
        aborted: bool,
        reads: Vec<i64>,
        steps: StepReport,
    }
    let mut threads: Vec<Thread<'_>> = (0..program.threads.len())
        .map(|_| Thread {
            tx: None, // began lazily at the thread's first scheduled action
            pc: 0,
            committed: false,
            aborted: false,
            reads: Vec::new(),
            steps: StepReport::default(),
        })
        .collect();

    for &ti in schedule {
        let script = &program.threads[ti];
        let t = &mut threads[ti];
        if t.committed || t.aborted {
            continue;
        }
        if t.tx.is_none() {
            t.tx = Some(stm.begin(ti));
        }
        if t.pc < script.ops.len() {
            let tx = t.tx.as_mut().expect("live thread has a tx");
            let result = match script.ops[t.pc] {
                ScriptOp::Read(obj) => tx.read(obj).map(|v| t.reads.push(v)),
                ScriptOp::Write(obj, v) => tx.write(obj, v),
            };
            t.steps = tx.steps();
            t.pc += 1;
            if result.is_err() {
                t.aborted = true;
                t.tx = None;
            }
        } else {
            // Final action: commit.
            let tx = t.tx.take().expect("live thread has a tx");
            let steps_before = tx.steps();
            match tx.commit() {
                Ok(()) => t.committed = true,
                Err(_) => t.aborted = true,
            }
            t.steps = steps_before;
        }
    }

    ExecOutcome {
        txs: threads
            .into_iter()
            .map(|t| TxOutcome {
                committed: t.committed,
                reads: t.reads,
                steps: t.steps,
            })
            .collect(),
    }
}

/// Appends a round-robin tail so that every thread finishes even if
/// `schedule` is short.
pub fn complete_schedule(program: &Program, schedule: &[usize]) -> Schedule {
    let mut out = schedule.to_vec();
    let counts = program.action_counts();
    for (i, c) in counts.iter().enumerate() {
        for _ in 0..*c {
            out.push(i);
        }
    }
    out
}

/// Enumerates all interleavings of threads with the given action counts.
///
/// The number of interleavings is the multinomial coefficient; the function
/// panics if it would exceed `limit` (protecting tests from explosion).
pub fn all_schedules(action_counts: &[usize], limit: usize) -> Vec<Schedule> {
    let total: usize = action_counts.iter().sum();
    let mut out = Vec::new();
    let mut remaining = action_counts.to_vec();
    let mut prefix = Vec::with_capacity(total);
    fn rec(
        remaining: &mut [usize],
        prefix: &mut Vec<usize>,
        total: usize,
        out: &mut Vec<Schedule>,
        limit: usize,
    ) {
        if prefix.len() == total {
            assert!(
                out.len() < limit,
                "interleaving enumeration exceeds limit {limit}"
            );
            out.push(prefix.clone());
            return;
        }
        for i in 0..remaining.len() {
            if remaining[i] > 0 {
                remaining[i] -= 1;
                prefix.push(i);
                rec(remaining, prefix, total, out, limit);
                prefix.pop();
                remaining[i] += 1;
            }
        }
    }
    rec(&mut remaining, &mut prefix, total, &mut out, limit);
    out
}

/// A seeded random interleaving of the program's actions.
pub fn random_schedule(program: &Program, seed: u64) -> Schedule {
    let mut sched: Schedule = Vec::new();
    for (i, c) in program.action_counts().iter().enumerate() {
        for _ in 0..*c {
            sched.push(i);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    sched.shuffle(&mut rng);
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::TxScript;
    use tm_stm::{NonOpaqueStm, Tl2Stm};

    fn two_thread_program() -> Program {
        Program::new(vec![
            TxScript::new().read(0).read(1),
            TxScript::new().write(0, 4).write(1, 4),
        ])
    }

    #[test]
    fn serial_schedules_commit_everything() {
        let p = two_thread_program();
        let stm = Tl2Stm::new(2);
        // Thread 0 fully, then thread 1.
        let out = execute(&stm, &p, &[0, 0, 0, 1, 1, 1]);
        assert_eq!(out.commits(), 2);
        assert_eq!(out.txs[0].reads, vec![0, 0]);
    }

    #[test]
    fn schedule_count_is_multinomial() {
        // 3 + 3 actions: C(6,3) = 20 interleavings.
        let scheds = all_schedules(&[3, 3], 1000);
        assert_eq!(scheds.len(), 20);
        // 2+2+2: 6!/(2!2!2!) = 90.
        assert_eq!(all_schedules(&[2, 2, 2], 1000).len(), 90);
    }

    #[test]
    #[should_panic(expected = "exceeds limit")]
    fn enumeration_limit_guards() {
        all_schedules(&[8, 8], 100);
    }

    #[test]
    fn nonopaque_inconsistent_read_is_reproducible() {
        // The deterministic version of the Section 2 hazard: reader sees
        // r0 before the writer and r1 after it.
        let p = two_thread_program();
        let stm = NonOpaqueStm::new(2);
        // Reader reads r0; writer does everything and commits; reader
        // reads r1 (inconsistent!), then tries to commit (fails).
        let out = execute(&stm, &p, &[0, 1, 1, 1, 0, 0]);
        assert_eq!(out.txs[0].reads, vec![0, 4], "mixed snapshot expected");
        assert!(!out.txs[0].committed);
        assert!(out.txs[1].committed);
    }

    #[test]
    fn tl2_never_returns_inconsistent_reads_in_any_interleaving() {
        let p = two_thread_program();
        for sched in all_schedules(&p.action_counts(), 100) {
            let stm = Tl2Stm::new(2);
            let out = execute(&stm, &p, &sched);
            // Whatever happened, completed read pairs are consistent:
            // (0,0) or (4,4), never mixed.
            if out.txs[0].reads.len() == 2 {
                let r = &out.txs[0].reads;
                assert!(r == &vec![0, 0] || r == &vec![4, 4], "{sched:?}: {r:?}");
            }
        }
    }

    #[test]
    fn random_schedule_is_a_permutation_of_actions() {
        let p = two_thread_program();
        let s = random_schedule(&p, 42);
        assert_eq!(s.len(), 6);
        assert_eq!(s.iter().filter(|&&t| t == 0).count(), 3);
        // Seeded: reproducible.
        assert_eq!(s, random_schedule(&p, 42));
    }

    #[test]
    fn complete_schedule_finishes_everyone() {
        let p = two_thread_program();
        let stm = Tl2Stm::new(2);
        let sched = complete_schedule(&p, &[1, 0]);
        let out = execute(&stm, &p, &sched);
        assert_eq!(out.txs.len(), 2);
        assert!(out.txs.iter().all(|t| t.committed || !t.reads.is_empty()));
        assert_eq!(
            out.commits() + out.txs.iter().filter(|t| !t.committed).count(),
            2
        );
    }

    #[test]
    fn skipped_entries_for_finished_threads() {
        let p = Program::new(vec![TxScript::new().read(0)]);
        let stm = Tl2Stm::new(1);
        // Far more entries than actions: extras are ignored.
        let out = execute(&stm, &p, &[0; 10]);
        assert_eq!(out.commits(), 1);
    }
}

/// Counts inversions of `schedule` relative to the fully serial order
/// (all of thread 0's actions, then thread 1's, …): the number of action
/// pairs executed in the "wrong" (concurrent) order. A serial schedule has
/// 0 inversions; the count measures how much genuine interleaving remains.
pub fn inversions(schedule: &[usize]) -> usize {
    let mut count = 0;
    for i in 0..schedule.len() {
        for j in i + 1..schedule.len() {
            if schedule[i] > schedule[j] {
                count += 1;
            }
        }
    }
    count
}

/// Shrinks a failure-inducing schedule towards seriality while preserving
/// a property (greedy adjacent-swap hill climbing).
///
/// Given a schedule under which `violates` holds (e.g. "the recorded
/// history is not opaque"), repeatedly tries to swap adjacent actions of
/// different threads into serial order; a swap is kept iff the property
/// still holds. The fixpoint is locally minimal: undoing any single
/// remaining inversion destroys the violation, so the surviving
/// out-of-order pairs *are* the essential race — the first thing a TM
/// designer wants from a failing fuzz run.
///
/// `violates` must be deterministic (drive a fresh TM through the explorer
/// inside it). Cost: O(len²) in the worst case times the cost of one run.
pub fn shrink_schedule(schedule: &[usize], mut violates: impl FnMut(&[usize]) -> bool) -> Schedule {
    assert!(
        violates(schedule),
        "shrink_schedule needs a violating schedule"
    );
    let mut current = schedule.to_vec();
    loop {
        let mut improved = false;
        for i in 0..current.len().saturating_sub(1) {
            if current[i] > current[i + 1] {
                current.swap(i, i + 1);
                if violates(&current) {
                    improved = true;
                } else {
                    current.swap(i, i + 1); // revert
                }
            }
        }
        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod shrink_tests {
    use super::*;
    use crate::script::TxScript;
    use tm_stm::NonOpaqueStm;

    #[test]
    fn inversion_counting() {
        assert_eq!(inversions(&[0, 0, 1, 1]), 0);
        assert_eq!(inversions(&[1, 0]), 1);
        assert_eq!(inversions(&[1, 1, 0, 0]), 4);
    }

    #[test]
    fn shrinks_to_the_essential_race() {
        // Reader-vs-writer on the commit-time validator: find any violating
        // schedule, then shrink it. The §2 fracture needs the writer's
        // commit BETWEEN the two reads — at least one inversion must
        // survive, and the shrunk schedule must still violate.
        let p = Program::new(vec![
            TxScript::new().read(0).read(1),
            TxScript::new().write(0, 7).write(1, 7),
        ]);
        let violates = |sched: &[usize]| {
            let stm = NonOpaqueStm::new(2);
            tm_stm::run_tx(&stm, 0, |tx| {
                tx.write(0, 1)?;
                tx.write(1, 1)
            });
            execute(&stm, &p, sched);
            let h = stm.recorder().history();
            !tm_opacity::opacity::is_opaque(&h, &tm_model::SpecRegistry::registers())
                .unwrap()
                .opaque
        };
        let bad = all_schedules(&p.action_counts(), 100)
            .into_iter()
            .rev() // start from a maximally-interleaved one
            .find(|s| violates(s))
            .expect("some schedule violates");
        let shrunk = shrink_schedule(&bad, violates);
        assert!(violates(&shrunk), "shrinking must preserve the violation");
        assert!(
            inversions(&shrunk) <= inversions(&bad),
            "shrinking must not add interleaving"
        );
        // Local minimality: undoing any remaining inversion kills it.
        for i in 0..shrunk.len() - 1 {
            if shrunk[i] > shrunk[i + 1] {
                let mut undone = shrunk.clone();
                undone.swap(i, i + 1);
                assert!(
                    !violates(&undone),
                    "shrunk schedule is not locally minimal at {i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "needs a violating schedule")]
    fn rejects_non_violating_input() {
        shrink_schedule(&[0, 1], |_| false);
    }
}
