//! The deterministic interleaving explorer.
//!
//! Executes a [`Program`] against any non-blocking TM under an explicit
//! [`Schedule`] — a sequence of thread indices, each meaning "that thread
//! performs its next action (operation or commit)". Because every TM in
//! `tm-stm` except the global-lock one is non-blocking at operation
//! granularity, a single OS thread can drive any interleaving, making
//! anomalies (and their absence) perfectly reproducible:
//!
//! * exhaustive enumeration of all interleavings of small programs
//!   ([`all_schedules`]) powers the opacity-validation experiment E11;
//! * seeded random schedules ([`random_schedule`]) scale to larger programs;
//! * hand-written schedules reproduce the paper's scenarios exactly (the
//!   proof sketch of Theorem 3, TL2's non-progressiveness, the Section 2
//!   inconsistent-view hazard).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::script::{Program, ScriptOp};
use tm_stm::{StepReport, Stm, Tx};

/// A schedule: thread indices in the order they take actions.
pub type Schedule = Vec<usize>;

/// The fate and observations of one scripted transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxOutcome {
    /// Did the transaction commit?
    pub committed: bool,
    /// Values returned by its reads, in script order (stops early if the
    /// transaction aborted mid-script).
    pub reads: Vec<i64>,
    /// Per-operation step report.
    pub steps: StepReport,
}

/// The result of executing a program under a schedule.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// Per-thread transaction outcomes.
    pub txs: Vec<TxOutcome>,
}

impl ExecOutcome {
    /// Number of committed transactions.
    pub fn commits(&self) -> usize {
        self.txs.iter().filter(|t| t.committed).count()
    }
}

/// Executes `program` on `stm` under `schedule`.
///
/// Schedule entries pointing at finished (committed/aborted) threads are
/// skipped, so any sequence long enough is valid; [`complete_schedule`]
/// appends a round-robin tail to guarantee completion.
pub fn execute(stm: &dyn Stm, program: &Program, schedule: &[usize]) -> ExecOutcome {
    assert!(
        stm.k() >= program.required_k(),
        "program touches register {} but TM has k={}",
        program.required_k().saturating_sub(1),
        stm.k()
    );
    assert!(
        program.threads.len() <= 1 || !stm.blocking(),
        "blocking TM '{}' cannot be interleaved on one OS thread",
        stm.name()
    );
    struct Thread<'a> {
        tx: Option<Box<dyn Tx + 'a>>,
        pc: usize,
        committed: bool,
        aborted: bool,
        reads: Vec<i64>,
        steps: StepReport,
    }
    let mut threads: Vec<Thread<'_>> = (0..program.threads.len())
        .map(|_| Thread {
            tx: None, // began lazily at the thread's first scheduled action
            pc: 0,
            committed: false,
            aborted: false,
            reads: Vec::new(),
            steps: StepReport::default(),
        })
        .collect();

    for &ti in schedule {
        let script = &program.threads[ti];
        let t = &mut threads[ti];
        if t.committed || t.aborted {
            continue;
        }
        if t.tx.is_none() {
            t.tx = Some(stm.begin(ti));
        }
        if t.pc < script.ops.len() {
            let tx = t.tx.as_mut().expect("live thread has a tx");
            let result = match script.ops[t.pc] {
                ScriptOp::Read(obj) => tx.read(obj).map(|v| t.reads.push(v)),
                ScriptOp::Write(obj, v) => tx.write(obj, v),
            };
            t.steps = tx.steps();
            t.pc += 1;
            if result.is_err() {
                t.aborted = true;
                t.tx = None;
            }
        } else {
            // Final action: commit.
            let tx = t.tx.take().expect("live thread has a tx");
            let steps_before = tx.steps();
            match tx.commit() {
                Ok(()) => t.committed = true,
                Err(_) => t.aborted = true,
            }
            t.steps = steps_before;
        }
    }

    ExecOutcome {
        txs: threads
            .into_iter()
            .map(|t| TxOutcome {
                committed: t.committed,
                reads: t.reads,
                steps: t.steps,
            })
            .collect(),
    }
}

/// Appends a round-robin tail so that every thread finishes even if
/// `schedule` is short.
pub fn complete_schedule(program: &Program, schedule: &[usize]) -> Schedule {
    let mut out = schedule.to_vec();
    let counts = program.action_counts();
    for (i, c) in counts.iter().enumerate() {
        for _ in 0..*c {
            out.push(i);
        }
    }
    out
}

/// Enumerates all interleavings of threads with the given action counts.
///
/// The number of interleavings is the multinomial coefficient; the function
/// panics if it would exceed `limit` (protecting tests from explosion).
pub fn all_schedules(action_counts: &[usize], limit: usize) -> Vec<Schedule> {
    let total: usize = action_counts.iter().sum();
    let mut out = Vec::new();
    let mut remaining = action_counts.to_vec();
    let mut prefix = Vec::with_capacity(total);
    fn rec(
        remaining: &mut [usize],
        prefix: &mut Vec<usize>,
        total: usize,
        out: &mut Vec<Schedule>,
        limit: usize,
    ) {
        if prefix.len() == total {
            assert!(
                out.len() < limit,
                "interleaving enumeration exceeds limit {limit}"
            );
            out.push(prefix.clone());
            return;
        }
        for i in 0..remaining.len() {
            if remaining[i] > 0 {
                remaining[i] -= 1;
                prefix.push(i);
                rec(remaining, prefix, total, out, limit);
                prefix.pop();
                remaining[i] += 1;
            }
        }
    }
    rec(&mut remaining, &mut prefix, total, &mut out, limit);
    out
}

/// Cumulative summary of one thread's action for the commutation check of
/// [`all_schedules_reduced`].
///
/// Footprints are *cumulative* (everything the transaction touched up to
/// and including this action) because op-level execution is not memoryless:
/// a TM's response to an action may depend on the whole read/write set so
/// far (validation, bookkeeping), so the action's true footprint is its
/// prefix's. Cumulative sets also make the dependence relation
/// prefix-closed, which the canonical-form argument below needs.
#[derive(Clone, Copy, Debug)]
struct ActionInfo {
    /// Registers in the transaction's footprint after this action (bit `r`
    /// for register `r`; registers ≥ 63 share the top bit, which is merely
    /// conservative).
    foot: u64,
    /// Registers written so far.
    written: u64,
    /// Is this the final (commit) action?
    is_commit: bool,
    /// Is this the thread's first action (its transaction's begin)?
    is_first: bool,
}

fn register_bit(r: usize) -> u64 {
    1u64 << r.min(63)
}

fn action_table(program: &Program) -> Vec<Vec<ActionInfo>> {
    program
        .threads
        .iter()
        .map(|script| {
            let mut foot = 0u64;
            let mut written = 0u64;
            let mut infos = Vec::with_capacity(script.ops.len() + 1);
            for (i, op) in script.ops.iter().enumerate() {
                match *op {
                    ScriptOp::Read(r) => foot |= register_bit(r),
                    ScriptOp::Write(r, _) => {
                        foot |= register_bit(r);
                        written |= register_bit(r);
                    }
                }
                infos.push(ActionInfo {
                    foot,
                    written,
                    is_commit: false,
                    is_first: i == 0,
                });
            }
            infos.push(ActionInfo {
                foot,
                written,
                is_commit: true,
                is_first: script.ops.is_empty(),
            });
            infos
        })
        .collect()
}

/// May these two actions of *different* threads fail to commute?
fn op_dependent(a: ActionInfo, b: ActionInfo, visible_reads: bool) -> bool {
    // Real time: a commit ordered before another transaction's first
    // action creates a real-time edge that recorded histories (and the
    // opacity checker) observe; swapping the pair changes the history.
    if (a.is_commit && b.is_first) || (b.is_commit && a.is_first) {
        return true;
    }
    // Two writing commits serialize against the global version clock in
    // either order, and the order is observable through the versions
    // later readers see.
    if a.is_commit && b.is_commit && a.written != 0 && b.written != 0 {
        return true;
    }
    if visible_reads {
        // Visible-reader TMs publish metadata on every read, so even
        // read/read overlap is observable.
        a.foot & b.foot != 0
    } else {
        (a.written & b.foot) | (b.written & a.foot) != 0
    }
}

/// [`all_schedules`] with commutation-equivalent schedules deduplicated.
///
/// Two schedules that differ only in the order of *independent* adjacent
/// actions drive any TM through indistinguishable executions, so sweeping
/// both is wasted work. This enumerates exactly one representative per
/// equivalence class: the schedules in which every adjacent out-of-order
/// pair (a higher thread index immediately before a lower one) is a
/// *dependent* pair. If an adjacent inversion were independent, swapping
/// it would yield an equivalent, lexicographically smaller schedule — so
/// the surviving representative is the lex-least member of its class, and
/// every class has exactly one.
///
/// The dependence relation errs conservative: cumulative footprints with a
/// writer involved, commit-versus-begin real-time edges, clock
/// serialization between writing commits, and — with `visible_reads` —
/// any footprint overlap at all (correct for TMs whose reads write shared
/// metadata; pass `true` unless you know every read is invisible).
///
/// Panics if more than `limit` representatives survive.
pub fn all_schedules_reduced(
    program: &Program,
    visible_reads: bool,
    limit: usize,
) -> Vec<Schedule> {
    let table = action_table(program);
    let total: usize = table.iter().map(Vec::len).sum();
    let mut out = Vec::new();
    let mut progress = vec![0usize; table.len()];
    let mut prefix: Vec<usize> = Vec::with_capacity(total);
    #[allow(clippy::too_many_arguments)]
    fn rec(
        table: &[Vec<ActionInfo>],
        progress: &mut [usize],
        prefix: &mut Vec<usize>,
        total: usize,
        visible_reads: bool,
        out: &mut Vec<Schedule>,
        limit: usize,
    ) {
        if prefix.len() == total {
            assert!(
                out.len() < limit,
                "interleaving enumeration exceeds limit {limit}"
            );
            out.push(prefix.clone());
            return;
        }
        let last = prefix.last().map(|&t| (t, table[t][progress[t] - 1]));
        for t in 0..table.len() {
            if progress[t] >= table[t].len() {
                continue;
            }
            if let Some((pt, pa)) = last {
                // A smaller thread index right after a larger one is
                // canonical only if the two actions genuinely conflict.
                if pt > t && !op_dependent(pa, table[t][progress[t]], visible_reads) {
                    continue;
                }
            }
            progress[t] += 1;
            prefix.push(t);
            rec(table, progress, prefix, total, visible_reads, out, limit);
            prefix.pop();
            progress[t] -= 1;
        }
    }
    rec(
        &table,
        &mut progress,
        &mut prefix,
        total,
        visible_reads,
        &mut out,
        limit,
    );
    out
}

/// A seeded random interleaving of the program's actions.
pub fn random_schedule(program: &Program, seed: u64) -> Schedule {
    let mut sched: Schedule = Vec::new();
    for (i, c) in program.action_counts().iter().enumerate() {
        for _ in 0..*c {
            sched.push(i);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    sched.shuffle(&mut rng);
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::TxScript;
    use tm_stm::{NonOpaqueStm, Tl2Stm};

    fn two_thread_program() -> Program {
        Program::new(vec![
            TxScript::new().read(0).read(1),
            TxScript::new().write(0, 4).write(1, 4),
        ])
    }

    #[test]
    fn serial_schedules_commit_everything() {
        let p = two_thread_program();
        let stm = Tl2Stm::new(2);
        // Thread 0 fully, then thread 1.
        let out = execute(&stm, &p, &[0, 0, 0, 1, 1, 1]);
        assert_eq!(out.commits(), 2);
        assert_eq!(out.txs[0].reads, vec![0, 0]);
    }

    #[test]
    fn schedule_count_is_multinomial() {
        // 3 + 3 actions: C(6,3) = 20 interleavings.
        let scheds = all_schedules(&[3, 3], 1000);
        assert_eq!(scheds.len(), 20);
        // 2+2+2: 6!/(2!2!2!) = 90.
        assert_eq!(all_schedules(&[2, 2, 2], 1000).len(), 90);
    }

    #[test]
    #[should_panic(expected = "exceeds limit")]
    fn enumeration_limit_guards() {
        all_schedules(&[8, 8], 100);
    }

    #[test]
    fn nonopaque_inconsistent_read_is_reproducible() {
        // The deterministic version of the Section 2 hazard: reader sees
        // r0 before the writer and r1 after it.
        let p = two_thread_program();
        let stm = NonOpaqueStm::new(2);
        // Reader reads r0; writer does everything and commits; reader
        // reads r1 (inconsistent!), then tries to commit (fails).
        let out = execute(&stm, &p, &[0, 1, 1, 1, 0, 0]);
        assert_eq!(out.txs[0].reads, vec![0, 4], "mixed snapshot expected");
        assert!(!out.txs[0].committed);
        assert!(out.txs[1].committed);
    }

    #[test]
    fn tl2_never_returns_inconsistent_reads_in_any_interleaving() {
        let p = two_thread_program();
        for sched in all_schedules(&p.action_counts(), 100) {
            let stm = Tl2Stm::new(2);
            let out = execute(&stm, &p, &sched);
            // Whatever happened, completed read pairs are consistent:
            // (0,0) or (4,4), never mixed.
            if out.txs[0].reads.len() == 2 {
                let r = &out.txs[0].reads;
                assert!(r == &vec![0, 0] || r == &vec![4, 4], "{sched:?}: {r:?}");
            }
        }
    }

    #[test]
    fn random_schedule_is_a_permutation_of_actions() {
        let p = two_thread_program();
        let s = random_schedule(&p, 42);
        assert_eq!(s.len(), 6);
        assert_eq!(s.iter().filter(|&&t| t == 0).count(), 3);
        // Seeded: reproducible.
        assert_eq!(s, random_schedule(&p, 42));
    }

    #[test]
    fn complete_schedule_finishes_everyone() {
        let p = two_thread_program();
        let stm = Tl2Stm::new(2);
        let sched = complete_schedule(&p, &[1, 0]);
        let out = execute(&stm, &p, &sched);
        assert_eq!(out.txs.len(), 2);
        assert!(out.txs.iter().all(|t| t.committed || !t.reads.is_empty()));
        assert_eq!(
            out.commits() + out.txs.iter().filter(|t| !t.committed).count(),
            2
        );
    }

    #[test]
    fn skipped_entries_for_finished_threads() {
        let p = Program::new(vec![TxScript::new().read(0)]);
        let stm = Tl2Stm::new(1);
        // Far more entries than actions: extras are ignored.
        let out = execute(&stm, &p, &[0; 10]);
        assert_eq!(out.commits(), 1);
    }
}

/// Counts inversions of `schedule` relative to the fully serial order
/// (all of thread 0's actions, then thread 1's, …): the number of action
/// pairs executed in the "wrong" (concurrent) order. A serial schedule has
/// 0 inversions; the count measures how much genuine interleaving remains.
pub fn inversions(schedule: &[usize]) -> usize {
    let mut count = 0;
    for i in 0..schedule.len() {
        for j in i + 1..schedule.len() {
            if schedule[i] > schedule[j] {
                count += 1;
            }
        }
    }
    count
}

/// Shrinks a failure-inducing schedule towards seriality while preserving
/// a property (greedy adjacent-swap hill climbing).
///
/// Given a schedule under which `violates` holds (e.g. "the recorded
/// history is not opaque"), repeatedly tries to swap adjacent actions of
/// different threads into serial order; a swap is kept iff the property
/// still holds. The fixpoint is locally minimal: undoing any single
/// remaining inversion destroys the violation, so the surviving
/// out-of-order pairs *are* the essential race — the first thing a TM
/// designer wants from a failing fuzz run.
///
/// `violates` must be deterministic (drive a fresh TM through the explorer
/// inside it). Cost: O(len²) in the worst case times the cost of one run.
pub fn shrink_schedule(schedule: &[usize], mut violates: impl FnMut(&[usize]) -> bool) -> Schedule {
    assert!(
        violates(schedule),
        "shrink_schedule needs a violating schedule"
    );
    let mut current = schedule.to_vec();
    loop {
        let mut improved = false;
        for i in 0..current.len().saturating_sub(1) {
            if current[i] > current[i + 1] {
                current.swap(i, i + 1);
                if violates(&current) {
                    improved = true;
                } else {
                    current.swap(i, i + 1); // revert
                }
            }
        }
        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod shrink_tests {
    use super::*;
    use crate::script::TxScript;
    use tm_stm::NonOpaqueStm;

    #[test]
    fn inversion_counting() {
        assert_eq!(inversions(&[0, 0, 1, 1]), 0);
        assert_eq!(inversions(&[1, 0]), 1);
        assert_eq!(inversions(&[1, 1, 0, 0]), 4);
    }

    #[test]
    fn shrinks_to_the_essential_race() {
        // Reader-vs-writer on the commit-time validator: find any violating
        // schedule, then shrink it. The §2 fracture needs the writer's
        // commit BETWEEN the two reads — at least one inversion must
        // survive, and the shrunk schedule must still violate.
        let p = Program::new(vec![
            TxScript::new().read(0).read(1),
            TxScript::new().write(0, 7).write(1, 7),
        ]);
        let violates = |sched: &[usize]| {
            let stm = NonOpaqueStm::new(2);
            tm_stm::run_tx(&stm, 0, |tx| {
                tx.write(0, 1)?;
                tx.write(1, 1)
            });
            execute(&stm, &p, sched);
            let h = stm.recorder().history();
            !tm_opacity::opacity::is_opaque(&h, &tm_model::SpecRegistry::registers())
                .unwrap()
                .opaque
        };
        let bad = all_schedules(&p.action_counts(), 100)
            .into_iter()
            .rev() // start from a maximally-interleaved one
            .find(|s| violates(s))
            .expect("some schedule violates");
        let shrunk = shrink_schedule(&bad, violates);
        assert!(violates(&shrunk), "shrinking must preserve the violation");
        assert!(
            inversions(&shrunk) <= inversions(&bad),
            "shrinking must not add interleaving"
        );
        // Local minimality: undoing any remaining inversion kills it.
        for i in 0..shrunk.len() - 1 {
            if shrunk[i] > shrunk[i + 1] {
                let mut undone = shrunk.clone();
                undone.swap(i, i + 1);
                assert!(
                    !violates(&undone),
                    "shrunk schedule is not locally minimal at {i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "needs a violating schedule")]
    fn rejects_non_violating_input() {
        shrink_schedule(&[0, 1], |_| false);
    }
}

#[cfg(test)]
mod reduction_tests {
    use super::*;
    use crate::script::TxScript;
    use std::collections::BTreeSet;
    use tm_stm::{NonOpaqueStm, Tl2Stm, VisibleStm};

    fn outcome_set(
        make: &dyn Fn() -> Box<dyn Stm>,
        program: &Program,
        schedules: &[Schedule],
    ) -> BTreeSet<Vec<(bool, Vec<i64>)>> {
        schedules
            .iter()
            .map(|sched| {
                let stm = make();
                let out = execute(stm.as_ref(), program, sched);
                out.txs
                    .into_iter()
                    .map(|t| (t.committed, t.reads))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn reduced_counts_are_pinned() {
        // Overlapping footprints from the first action: every adjacent pair
        // is dependent, nothing merges — the conservative mode costs zero
        // coverage on the conformance probes.
        let rw = Program::new(vec![
            TxScript::new().read(0).read(1),
            TxScript::new().write(0, 7).write(1, 7),
        ]);
        assert_eq!(all_schedules_reduced(&rw, true, 1000).len(), 20);

        // Disjoint registers: only the begin/commit real-time edges order
        // the threads, and 20 interleavings collapse to 3 classes (commit
        // before the peer begins, the mirror image, and "truly concurrent").
        let disjoint = Program::new(vec![
            TxScript::new().read(0).read(1),
            TxScript::new().write(2, 7).write(3, 7),
        ]);
        assert_eq!(all_schedules_reduced(&disjoint, true, 1000).len(), 3);

        // Three disjoint single-op transactions: 90 interleavings, 24
        // classes (the pairwise concurrent-or-ordered structure).
        let three = Program::new(vec![
            TxScript::new().write(0, 1),
            TxScript::new().write(1, 2),
            TxScript::new().read(2),
        ]);
        assert_eq!(all_schedules_reduced(&three, true, 1000).len(), 24);

        // With invisible reads the two leading reads of the rmw probe
        // commute; visible readers must keep them ordered.
        let rmw = Program::new(vec![
            TxScript::new().read(0).write(0, 100),
            TxScript::new().read(0).write(0, 200),
        ]);
        assert_eq!(all_schedules_reduced(&rmw, false, 1000).len(), 14);
        assert_eq!(all_schedules_reduced(&rmw, true, 1000).len(), 20);
    }

    #[test]
    fn reduced_schedules_are_a_subset_of_all() {
        let p = Program::new(vec![
            TxScript::new().read(0).write(1, 3),
            TxScript::new().write(0, 4).read(1),
        ]);
        let all: BTreeSet<Schedule> = all_schedules(&p.action_counts(), 1000)
            .into_iter()
            .collect();
        for vis in [false, true] {
            let reduced = all_schedules_reduced(&p, vis, 1000);
            assert!(reduced.iter().all(|s| all.contains(s)));
            assert!(!reduced.is_empty());
        }
    }

    #[test]
    fn reduction_preserves_the_outcome_set() {
        // The merged schedules were equivalent: sweeping only the class
        // representatives observes exactly the outcomes the full sweep
        // does. Checked on an invisible-read TM (reduction active), a
        // commit-time validator whose *anomalies* must not be lost, and a
        // visible-reader TM under the conservative mode.
        let programs = [
            Program::new(vec![
                TxScript::new().read(0).write(0, 100),
                TxScript::new().read(0).write(0, 200),
            ]),
            Program::new(vec![
                TxScript::new().read(0).read(1),
                TxScript::new().write(2, 7).write(3, 7),
            ]),
        ];
        type MakeStm = (&'static str, bool, fn() -> Box<dyn Stm>);
        let tms: [MakeStm; 3] = [
            ("tl2", false, || Box::new(Tl2Stm::new(4))),
            ("nonopaque", false, || Box::new(NonOpaqueStm::new(4))),
            ("visible", true, || Box::new(VisibleStm::new(4))),
        ];
        for program in &programs {
            let full = all_schedules(&program.action_counts(), 1000);
            for (name, visible_reads, make) in &tms {
                let reduced = all_schedules_reduced(program, *visible_reads, 1000);
                assert!(reduced.len() <= full.len());
                assert_eq!(
                    outcome_set(make, program, &reduced),
                    outcome_set(make, program, &full),
                    "{name}: reduction lost an outcome"
                );
            }
        }
    }
}
