//! A dependency-free scoped-thread worker pool with deterministic merging.
//!
//! The checking pipeline shards embarrassingly parallel work — schedule
//! sweeps, random-history cross-validation — across OS threads with
//! `std::thread::scope` (no extra crates, no unsafe). Determinism is the
//! design constraint: every item is computed by a pure function of its
//! index, workers take items in a fixed stride, and results are re-assembled
//! **in index order**, so the output of `jobs = N` is byte-identical to
//! `jobs = 1`.

/// Runs `f(0..n)` across up to `jobs` scoped threads and returns the results
/// in index order.
///
/// `f` must be deterministic per index (it is called exactly once per
/// index, on an unspecified thread). `jobs == 1` (or `n <= 1`) runs inline
/// on the caller's thread with no spawns, so the sequential path stays
/// allocation- and thread-free.
pub fn parallel_map<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs == 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for w in 0..jobs {
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                let mut i = w;
                while i < n {
                    out.push((i, f(i)));
                    i += jobs;
                }
                out
            }));
        }
        for h in handles {
            for (i, v) in h.join().expect("worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index computed exactly once"))
        .collect()
}

/// A sensible default worker count: the machine's available parallelism,
/// clamped to at least 1.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_index_order_for_any_job_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 64, 200] {
            assert_eq!(parallel_map(97, jobs, |i| i * i), expected, "jobs={jobs}");
        }
    }

    #[test]
    fn each_index_computed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = parallel_map(50, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 50);
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(parallel_map(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn jobs_one_runs_inline_without_spawning() {
        // The sequential path must stay thread-free: every item is computed
        // on the caller's own thread (no scope, no spawns). Pinned by
        // comparing thread ids — a spawned worker would report a different
        // one.
        let caller = std::thread::current().id();
        let ids = parallel_map(25, 1, |_| std::thread::current().id());
        assert!(
            ids.iter().all(|&id| id == caller),
            "jobs=1 spawned a thread"
        );
        // Single-item work inlines too, regardless of the jobs request.
        let ids = parallel_map(1, 16, |_| std::thread::current().id());
        assert_eq!(ids, vec![caller], "n=1 must not spawn");
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
