//! Vector-clock happens-before checking over base-object access traces.
//!
//! The stepper in [`crate::dpor`] records every instrumented base-object
//! access as a [`TraceEvent`]. This module replays such a trace through a
//! vector-clock engine and flags violations of the ordering discipline the
//! TM protocols promise their version clocks:
//!
//! * **Stamp uniqueness** — no two commits may publish the same write
//!   version. The sharded and deferred clocks earn uniqueness through
//!   residue arithmetic; dropping the residue (the seeded
//!   `DroppedResidue` mutant) makes two racing ticks collide.
//! * **Stamp monotonicity** — when one stamp *happens before* another, the
//!   earlier one must be strictly smaller. Happens-before here is program
//!   order plus release→acquire edges on modeled lock cells (commit
//!   locks); deliberately *not* data observation, because a correct
//!   deferred clock lets two unordered commits adopt numerically unordered
//!   stamps — flagging those would convict innocent protocols.
//! * **Publish-last** — a committer holding the global commit lock must
//!   finish installing its writes before publishing the new clock value;
//!   a record-cell write after the publish leaks a state where readers can
//!   see the new clock but stale data.
//! * **Lock pairing** — acquires and releases of modeled lock cells must
//!   nest sanely (no double acquire, no release by a non-holder).
//!
//! The checker is trace-level and protocol-agnostic: it never asks which TM
//! produced the events, only whether the events keep these promises.

use std::collections::BTreeMap;
use std::fmt;

use tm_stm::trace_cells::{AccessKind, CellId, TraceEvent};

/// One violated ordering invariant, with enough context to print a useful
/// diagnosis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaceViolation {
    /// Two commits published the same version stamp.
    DuplicateStamp {
        /// The colliding stamp value.
        ts: u64,
        /// The two publishing threads (first, second in trace order).
        threads: (usize, usize),
    },
    /// A happens-before-ordered pair of stamps is not strictly increasing.
    StampOrderInversion {
        /// The earlier (thread, stamp) pair.
        first: (usize, u64),
        /// The later (thread, stamp) pair — ordered after `first` by
        /// happens-before, yet numerically not greater.
        second: (usize, u64),
    },
    /// A committer wrote a record cell after publishing the clock while
    /// still holding the commit lock.
    PublishNotLast {
        /// The offending thread.
        thread: usize,
        /// The record cell written after the publish.
        cell: CellId,
    },
    /// An acquire of a held cell, or a release by a non-holder.
    LockMisuse {
        /// The offending thread.
        thread: usize,
        /// The lock cell involved.
        cell: CellId,
        /// `Acquire` or `Release`.
        kind: AccessKind,
    },
}

impl fmt::Display for RaceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceViolation::DuplicateStamp { ts, threads } => write!(
                f,
                "duplicate version stamp {ts} published by threads {} and {}",
                threads.0, threads.1
            ),
            RaceViolation::StampOrderInversion { first, second } => write!(
                f,
                "stamp order inversion: thread {} published {} happens-before \
                 thread {} publishing {}",
                first.0, first.1, second.0, second.1
            ),
            RaceViolation::PublishNotLast { thread, cell } => write!(
                f,
                "thread {thread} wrote {cell} after publishing the clock \
                 while holding the commit lock"
            ),
            RaceViolation::LockMisuse { thread, cell, kind } => {
                write!(f, "thread {thread}: {kind:?} misuse on {cell}")
            }
        }
    }
}

/// A published stamp with the vector clock of its publication point.
struct StampRecord {
    thread: usize,
    ts: u64,
    vc: Vec<u64>,
}

/// Did the event with clock `earlier` (from `thread`) happen before the
/// point with clock `later`?
fn happens_before(thread: usize, earlier: &[u64], later: &[u64]) -> bool {
    later[thread] >= earlier[thread]
}

/// Checks `events` (a trace from one complete stepped execution over
/// `nthreads` workers) against the clock-ordering invariants. Returns every
/// violation found, in trace order.
pub fn check(events: &[TraceEvent], nthreads: usize) -> Vec<RaceViolation> {
    let mut violations = Vec::new();
    // One vector clock per thread; component t counts thread t's events.
    let mut vc: Vec<Vec<u64>> = vec![vec![0; nthreads]; nthreads];
    // Clock of the last release per lock cell.
    let mut release_vc: BTreeMap<CellId, Vec<u64>> = BTreeMap::new();
    // Current holder of each lock cell.
    let mut held_by: BTreeMap<CellId, usize> = BTreeMap::new();
    // Per thread: has it published the clock inside the current
    // commit-lock span?
    let mut published_in_span: Vec<bool> = vec![false; nthreads];
    let mut holds_commit_lock: Vec<bool> = vec![false; nthreads];
    // All stamps seen, plus a value -> first publisher index for uniqueness.
    let mut stamps: Vec<StampRecord> = Vec::new();
    let mut first_by_value: BTreeMap<u64, usize> = BTreeMap::new();

    for ev in events {
        match *ev {
            TraceEvent::Access(a) => {
                let t = a.thread;
                if t >= nthreads {
                    continue; // foreign thread (e.g. setup); ignore
                }
                vc[t][t] += 1;
                match a.kind {
                    AccessKind::Acquire => {
                        if held_by.contains_key(&a.cell) {
                            violations.push(RaceViolation::LockMisuse {
                                thread: t,
                                cell: a.cell,
                                kind: AccessKind::Acquire,
                            });
                        }
                        held_by.insert(a.cell, t);
                        if let Some(rel) = release_vc.get(&a.cell) {
                            for (mine, theirs) in vc[t].iter_mut().zip(rel) {
                                *mine = (*mine).max(*theirs);
                            }
                        }
                        if a.cell == CellId::CommitLock {
                            holds_commit_lock[t] = true;
                            published_in_span[t] = false;
                        }
                    }
                    AccessKind::Release => {
                        if held_by.get(&a.cell) != Some(&t) {
                            violations.push(RaceViolation::LockMisuse {
                                thread: t,
                                cell: a.cell,
                                kind: AccessKind::Release,
                            });
                        }
                        held_by.remove(&a.cell);
                        release_vc.insert(a.cell, vc[t].clone());
                        if a.cell == CellId::CommitLock {
                            holds_commit_lock[t] = false;
                            published_in_span[t] = false;
                        }
                    }
                    AccessKind::Read | AccessKind::Write | AccessKind::Rmw => {
                        let is_clock_write = matches!(a.cell, CellId::Clock(_)) && a.kind.writes();
                        let is_record_write =
                            matches!(a.cell, CellId::Record(_)) && a.kind.writes();
                        if holds_commit_lock[t] {
                            if is_clock_write {
                                published_in_span[t] = true;
                            } else if is_record_write && published_in_span[t] {
                                violations.push(RaceViolation::PublishNotLast {
                                    thread: t,
                                    cell: a.cell,
                                });
                            }
                        }
                    }
                }
            }
            TraceEvent::Stamp { thread, ts } => {
                if thread >= nthreads {
                    continue;
                }
                vc[thread][thread] += 1;
                match first_by_value.get(&ts) {
                    Some(&first) => violations.push(RaceViolation::DuplicateStamp {
                        ts,
                        threads: (stamps[first].thread, thread),
                    }),
                    None => {
                        first_by_value.insert(ts, stamps.len());
                    }
                }
                let record = StampRecord {
                    thread,
                    ts,
                    vc: vc[thread].clone(),
                };
                for earlier in &stamps {
                    if happens_before(earlier.thread, &earlier.vc, &record.vc)
                        && earlier.ts >= record.ts
                    {
                        violations.push(RaceViolation::StampOrderInversion {
                            first: (earlier.thread, earlier.ts),
                            second: (record.thread, record.ts),
                        });
                    }
                }
                stamps.push(record);
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_stm::trace_cells::AccessEvent;

    fn access(thread: usize, cell: CellId, kind: AccessKind) -> TraceEvent {
        TraceEvent::Access(AccessEvent { thread, cell, kind })
    }

    fn stamp(thread: usize, ts: u64) -> TraceEvent {
        TraceEvent::Stamp { thread, ts }
    }

    #[test]
    fn clean_commit_lock_protocol_is_acquitted() {
        // Two committers serialized by the commit lock, installing before
        // publishing, stamps strictly increasing along the lock chain.
        let trace = vec![
            access(0, CellId::CommitLock, AccessKind::Acquire),
            access(0, CellId::Record(0), AccessKind::Write),
            stamp(0, 1),
            access(0, CellId::Clock(0), AccessKind::Rmw),
            access(0, CellId::CommitLock, AccessKind::Release),
            access(1, CellId::CommitLock, AccessKind::Acquire),
            access(1, CellId::Record(0), AccessKind::Write),
            stamp(1, 2),
            access(1, CellId::Clock(0), AccessKind::Rmw),
            access(1, CellId::CommitLock, AccessKind::Release),
        ];
        assert_eq!(check(&trace, 2), vec![]);
    }

    #[test]
    fn duplicate_stamps_are_convicted() {
        let trace = vec![stamp(0, 256), stamp(1, 256)];
        assert_eq!(
            check(&trace, 2),
            vec![RaceViolation::DuplicateStamp {
                ts: 256,
                threads: (0, 1),
            }]
        );
    }

    #[test]
    fn unordered_equal_stamps_from_one_thread_still_collide() {
        // Uniqueness is global, not per pair of threads. A same-thread pair
        // also trips monotonicity (program order, not strictly greater).
        let trace = vec![stamp(0, 7), stamp(0, 7)];
        let vs = check(&trace, 1);
        assert_eq!(
            vs.iter()
                .filter(|v| matches!(v, RaceViolation::DuplicateStamp { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn lock_ordered_stamp_inversion_is_convicted() {
        // Thread 0 publishes 5 inside the lock; thread 1, ordered after it
        // by the release->acquire edge, publishes 3.
        let trace = vec![
            access(0, CellId::CommitLock, AccessKind::Acquire),
            stamp(0, 5),
            access(0, CellId::CommitLock, AccessKind::Release),
            access(1, CellId::CommitLock, AccessKind::Acquire),
            stamp(1, 3),
            access(1, CellId::CommitLock, AccessKind::Release),
        ];
        assert_eq!(
            check(&trace, 2),
            vec![RaceViolation::StampOrderInversion {
                first: (0, 5),
                second: (1, 3),
            }]
        );
    }

    #[test]
    fn concurrent_unordered_stamps_may_invert_freely() {
        // No lock edge between the threads: the deferred clock is allowed
        // to hand numerically unordered stamps to unordered commits.
        let trace = vec![stamp(0, 5), stamp(1, 3)];
        assert_eq!(check(&trace, 2), vec![]);
    }

    #[test]
    fn program_order_alone_orders_stamps() {
        let trace = vec![stamp(0, 5), stamp(0, 5 /* not strictly greater */)];
        // Both a duplicate and an inversion: the same-value pair is caught
        // twice, once per invariant.
        let vs = check(&trace, 1);
        assert!(vs
            .iter()
            .any(|v| matches!(v, RaceViolation::DuplicateStamp { .. })));
        assert!(vs
            .iter()
            .any(|v| matches!(v, RaceViolation::StampOrderInversion { .. })));
    }

    #[test]
    fn record_write_after_publish_under_commit_lock_is_convicted() {
        let trace = vec![
            access(0, CellId::CommitLock, AccessKind::Acquire),
            stamp(0, 1),
            access(0, CellId::Clock(0), AccessKind::Rmw),
            access(0, CellId::Record(3), AccessKind::Write),
            access(0, CellId::CommitLock, AccessKind::Release),
        ];
        assert_eq!(
            check(&trace, 1),
            vec![RaceViolation::PublishNotLast {
                thread: 0,
                cell: CellId::Record(3),
            }]
        );
    }

    #[test]
    fn record_write_after_publish_without_the_lock_is_fine() {
        // TL2-style: no commit lock, lock-word stores after the tick are
        // the normal publication path.
        let trace = vec![
            stamp(0, 1),
            access(0, CellId::Clock(0), AccessKind::Rmw),
            access(0, CellId::Record(3), AccessKind::Write),
        ];
        assert_eq!(check(&trace, 1), vec![]);
    }

    #[test]
    fn lock_misuse_is_convicted_both_ways() {
        let double_acquire = vec![
            access(0, CellId::CommitLock, AccessKind::Acquire),
            access(1, CellId::CommitLock, AccessKind::Acquire),
        ];
        assert!(matches!(
            check(&double_acquire, 2)[..],
            [RaceViolation::LockMisuse {
                kind: AccessKind::Acquire,
                ..
            }]
        ));
        let stray_release = vec![access(1, CellId::CommitLock, AccessKind::Release)];
        assert!(matches!(
            check(&stray_release, 2)[..],
            [RaceViolation::LockMisuse {
                kind: AccessKind::Release,
                ..
            }]
        ));
    }
}
