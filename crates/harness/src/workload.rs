//! Multi-threaded workloads over real OS threads.
//!
//! Where the scheduler in [`crate::sched`] gives determinism, these
//! workloads give *realism*: genuinely concurrent threads hammering a TM,
//! with semantic invariants checked at the end. Used by the throughput
//! benchmark (E14) and the threaded opacity-validation tests (E11).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::objconformance::ObjectKind;
use tm_stm::objects::{run_typed_tx, TypedStm};
use tm_stm::{run_tx, Stm};

/// Aggregated results of a workload run.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkloadStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transaction attempts.
    pub aborts: u64,
}

impl WorkloadStats {
    /// Abort ratio `aborts / (commits + aborts)`.
    pub fn abort_rate(&self) -> f64 {
        let total = self.commits + self.aborts;
        if total == 0 {
            0.0
        } else {
            self.aborts as f64 / total as f64
        }
    }
}

/// The bank workload: `accounts` registers, initial balance `initial` each;
/// every thread performs `transfers` random transfers (read two accounts,
/// move a random amount).
///
/// Invariant: the total balance is conserved — checked on return.
///
/// # Panics
/// Panics if the conservation invariant is violated (a serializability bug
/// in the TM under test).
pub fn bank(
    stm: &dyn Stm,
    threads: usize,
    accounts: usize,
    transfers: usize,
    seed: u64,
) -> WorkloadStats {
    assert!(stm.k() >= accounts && accounts >= 2);
    let initial = 100i64;
    // Fund the accounts.
    run_tx(stm, 0, |tx| {
        for a in 0..accounts {
            tx.write(a, initial)?;
        }
        Ok(())
    });

    let stats = std::sync::Mutex::new(WorkloadStats::default());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let stats = &stats;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                let mut local = WorkloadStats::default();
                for _ in 0..transfers {
                    let from = rng.gen_range(0..accounts);
                    let mut to = rng.gen_range(0..accounts);
                    if to == from {
                        to = (to + 1) % accounts;
                    }
                    let amount: i64 = rng.gen_range(1..=10);
                    let (_, rs) = run_tx(stm, t, |tx| {
                        let a = tx.read(from)?;
                        let b = tx.read(to)?;
                        tx.write(from, a - amount)?;
                        tx.write(to, b + amount)
                    });
                    local.commits += rs.commits;
                    local.aborts += rs.aborts;
                }
                let mut s = stats.lock().unwrap();
                s.commits += local.commits;
                s.aborts += local.aborts;
            });
        }
    });

    // Conservation check.
    let (total, _) = run_tx(stm, 0, |tx| {
        let mut sum = 0;
        for a in 0..accounts {
            sum += tx.read(a)?;
        }
        Ok(sum)
    });
    assert_eq!(
        total,
        initial * accounts as i64,
        "{}: bank conservation violated",
        stm.name()
    );
    stats.into_inner().unwrap()
}

/// The counter workload: every thread increments register 0 `increments`
/// times (read + write — the read/write encoding of Section 3.4, where at
/// most one of any set of concurrent increments can commit per round).
///
/// Invariant: the final value equals `threads × increments` — checked on
/// return.
pub fn counter(stm: &dyn Stm, threads: usize, increments: usize) -> WorkloadStats {
    let stats = std::sync::Mutex::new(WorkloadStats::default());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let stats = &stats;
            scope.spawn(move || {
                let mut local = WorkloadStats::default();
                for _ in 0..increments {
                    let (_, rs) = run_tx(stm, t, |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    });
                    local.commits += rs.commits;
                    local.aborts += rs.aborts;
                }
                let mut s = stats.lock().unwrap();
                s.commits += local.commits;
                s.aborts += local.aborts;
            });
        }
    });
    let (v, _) = run_tx(stm, 0, |tx| tx.read(0));
    assert_eq!(
        v,
        (threads * increments) as i64,
        "{}: lost updates detected",
        stm.name()
    );
    stats.into_inner().unwrap()
}

/// The commit storm: every thread repeatedly commits a tiny update
/// transaction on its *own* register, so data conflicts are impossible and
/// the only shared hot spot is the TM's commit path — for the
/// timestamp-based TMs, the global version clock. This is the
/// discriminating workload for the pluggable clock schemes
/// (`tm_stm::ClockScheme`): a `single` clock serializes every commit on one
/// cache line, a `sharded` clock spreads the ticks across home shards, and
/// a `deferred` clock never re-contends after a lost CAS.
///
/// Invariant: no aborts can occur (disjoint write sets; on TL2-style TMs a
/// read of the own register never observes a foreign version) — every
/// register must end at `txs_per_thread` and every attempt must commit.
///
/// # Panics
/// Panics if any update is lost or any transaction aborted.
pub fn commit_storm(stm: &dyn Stm, threads: usize, txs_per_thread: usize) -> WorkloadStats {
    assert!(stm.k() >= threads, "one register per thread required");
    let stats = std::sync::Mutex::new(WorkloadStats::default());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let stats = &stats;
            scope.spawn(move || {
                let mut local = WorkloadStats::default();
                for i in 0..txs_per_thread {
                    let (_, rs) = run_tx(stm, t, |tx| tx.write(t, (i + 1) as i64));
                    local.commits += rs.commits;
                    local.aborts += rs.aborts;
                }
                let mut s = stats.lock().unwrap();
                s.commits += local.commits;
                s.aborts += local.aborts;
            });
        }
    });
    for t in 0..threads {
        let (v, _) = run_tx(stm, 0, |tx| tx.read(t));
        assert_eq!(
            v,
            txs_per_thread as i64,
            "{}: thread {t}'s commits were lost",
            stm.name()
        );
    }
    stats.into_inner().unwrap()
}

/// A read-dominated workload: each thread performs `txs` transactions; a
/// fraction `write_pct`/100 of them write one register, the rest read
/// `reads_per_tx` random registers.
pub fn read_mostly(
    stm: &dyn Stm,
    threads: usize,
    txs: usize,
    reads_per_tx: usize,
    write_pct: u32,
    seed: u64,
) -> WorkloadStats {
    let k = stm.k();
    let stats = std::sync::Mutex::new(WorkloadStats::default());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let stats = &stats;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0xDEAD_BEEF));
                let mut local = WorkloadStats::default();
                for i in 0..txs {
                    let (_, rs) = if rng.gen_ratio(write_pct, 100) {
                        let obj = rng.gen_range(0..k);
                        let v = (t * txs + i) as i64;
                        run_tx(stm, t, |tx| tx.write(obj, v))
                    } else {
                        let objs: Vec<usize> =
                            (0..reads_per_tx).map(|_| rng.gen_range(0..k)).collect();
                        run_tx(stm, t, |tx| {
                            for &o in &objs {
                                tx.read(o)?;
                            }
                            Ok(())
                        })
                    };
                    local.commits += rs.commits;
                    local.aborts += rs.aborts;
                }
                let mut s = stats.lock().unwrap();
                s.commits += local.commits;
                s.aborts += local.aborts;
            });
        }
    });
    stats.into_inner().unwrap()
}

/// The typed-object storm: `threads` threads each perform `ops`
/// transactions against one typed object of the given kind (built with
/// [`ObjectKind::standard_space`] sized for `threads × ops` operations),
/// with a per-kind semantic invariant checked on return:
///
/// * **counter** — every thread increments; the final count must equal
///   `threads × ops` (the object-level lost-update check);
/// * **cas** — every thread reads and CASes the value one up (the CAS is
///   against the own read, so it succeeds within the transaction); final
///   value as for the counter;
/// * **queue / stack** — even threads produce, odd threads consume;
///   dequeued + drained-at-the-end must equal the number enqueued;
/// * **pqueue** — every thread inserts; draining at the end must yield
///   exactly `threads × ops` elements in non-decreasing priority order;
/// * **log** — every thread appends; the final log length must equal
///   `threads × ops`;
/// * **set / map / register** — threads mutate disjoint-ish slots; the
///   final observation must match the last committed mutation.
///
/// # Panics
/// Panics if the invariant is violated (a semantic bug in the TM under
/// test).
pub fn typed_storm(
    typed: &TypedStm,
    kind: ObjectKind,
    threads: usize,
    ops: usize,
) -> WorkloadStats {
    use std::sync::atomic::{AtomicU64, Ordering};
    let o = typed.handle("o");
    let stats = std::sync::Mutex::new(WorkloadStats::default());
    // Successful consumer removals (queue/stack), for exact conservation.
    let consumed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let stats = &stats;
            let consumed = &consumed;
            scope.spawn(move || {
                let mut local = WorkloadStats::default();
                for i in 0..ops {
                    let (_, rs) = match kind {
                        ObjectKind::Counter => run_typed_tx(typed, t, |tx| tx.inc(o)),
                        ObjectKind::Cas => run_typed_tx(typed, t, |tx| {
                            let v = tx.read_reg(o)?;
                            tx.cas(o, v, v + 1).map(|_| ())
                        }),
                        ObjectKind::Queue => {
                            if t % 2 == 0 {
                                run_typed_tx(typed, t, |tx| tx.enq(o, (t * ops + i) as i64))
                            } else {
                                let (got, rs) = run_typed_tx(typed, t, |tx| tx.deq(o));
                                if got.is_some() {
                                    consumed.fetch_add(1, Ordering::Relaxed);
                                }
                                ((), rs)
                            }
                        }
                        ObjectKind::Stack => {
                            if t % 2 == 0 {
                                run_typed_tx(typed, t, |tx| tx.push(o, (t * ops + i) as i64))
                            } else {
                                let (got, rs) = run_typed_tx(typed, t, |tx| tx.pop(o));
                                if got.is_some() {
                                    consumed.fetch_add(1, Ordering::Relaxed);
                                }
                                ((), rs)
                            }
                        }
                        ObjectKind::Set => run_typed_tx(typed, t, |tx| {
                            let v = (i % 8) as i64;
                            tx.insert(o, v)?;
                            tx.contains(o, v)?;
                            tx.remove(o, v).map(|_| ())
                        }),
                        ObjectKind::Map => run_typed_tx(typed, t, |tx| {
                            let k = (t % 8) as i64;
                            tx.put(o, k, i as i64)?;
                            tx.map_get(o, k).map(|_| ())
                        }),
                        ObjectKind::PQueue => {
                            run_typed_tx(typed, t, |tx| tx.pq_insert(o, (i % 8) as i64))
                        }
                        ObjectKind::Log => {
                            run_typed_tx(typed, t, |tx| tx.append(o, (t * ops + i) as i64))
                        }
                        ObjectKind::Register => run_typed_tx(typed, t, |tx| {
                            tx.write_reg(o, (t * ops + i) as i64)?;
                            tx.read_reg(o).map(|_| ())
                        }),
                    };
                    local.commits += rs.commits;
                    local.aborts += rs.aborts;
                }
                let mut s = stats.lock().unwrap();
                s.commits += local.commits;
                s.aborts += local.aborts;
            });
        }
    });

    // Per-kind semantic invariants.
    let total = (threads * ops) as i64;
    match kind {
        ObjectKind::Counter => {
            let (v, _) = run_typed_tx(typed, 0, |tx| tx.get(o));
            assert_eq!(v, total, "{}: typed counter lost updates", typed.name());
        }
        ObjectKind::Cas => {
            let (v, _) = run_typed_tx(typed, 0, |tx| tx.read_reg(o));
            assert_eq!(v, total, "{}: typed cas lost updates", typed.name());
        }
        ObjectKind::Queue => {
            let producers = threads.div_ceil(2);
            let enqueued = (producers * ops) as u64;
            let (drained, _) = run_typed_tx(typed, 0, |tx| {
                let mut n = 0u64;
                while tx.deq(o)?.is_some() {
                    n += 1;
                }
                Ok(n)
            });
            let consumed = consumed.load(std::sync::atomic::Ordering::Relaxed);
            assert_eq!(
                consumed + drained,
                enqueued,
                "{}: queue conservation (consumed {consumed} + drained {drained} != enqueued {enqueued})",
                typed.name()
            );
        }
        ObjectKind::Stack => {
            let producers = threads.div_ceil(2);
            let pushed = (producers * ops) as u64;
            let (drained, _) = run_typed_tx(typed, 0, |tx| {
                let mut n = 0u64;
                while tx.pop(o)?.is_some() {
                    n += 1;
                }
                Ok(n)
            });
            let consumed = consumed.load(std::sync::atomic::Ordering::Relaxed);
            assert_eq!(
                consumed + drained,
                pushed,
                "{}: stack conservation (consumed {consumed} + drained {drained} != pushed {pushed})",
                typed.name()
            );
        }
        ObjectKind::PQueue => {
            let (order, _) = run_typed_tx(typed, 0, |tx| {
                let mut out = Vec::new();
                while let Some(v) = tx.extract_min(o)? {
                    out.push(v);
                }
                Ok(out)
            });
            assert_eq!(
                order.len() as i64,
                total,
                "{}: pqueue conservation",
                typed.name()
            );
            assert!(
                order.windows(2).all(|w| w[0] <= w[1]),
                "{}: pqueue drained out of order: {order:?}",
                typed.name()
            );
        }
        ObjectKind::Log => {
            let (contents, _) = run_typed_tx(typed, 0, |tx| tx.log_read(o));
            assert_eq!(
                contents.len() as i64,
                total,
                "{}: log conservation",
                typed.name()
            );
        }
        ObjectKind::Set => {
            let (leftover, _) = run_typed_tx(typed, 0, |tx| {
                let mut n = 0;
                for v in 0..8 {
                    if tx.contains(o, v)? {
                        n += 1;
                    }
                }
                Ok(n)
            });
            assert_eq!(leftover, 0, "{}: set storm must end empty", typed.name());
        }
        ObjectKind::Map | ObjectKind::Register => {
            // Last-committed-write wins: nothing stronger to assert, but the
            // read must succeed.
            run_typed_tx(typed, 0, |tx| match kind {
                ObjectKind::Map => tx.map_get(o, 0).map(|_| ()),
                _ => tx.read_reg(o).map(|_| ()),
            });
        }
    }
    stats.into_inner().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_conserves_money_on_every_stm() {
        for stm in tm_stm::all_stms(8) {
            stm.recorder().set_enabled(false);
            let s = bank(stm.as_ref(), 3, 8, 30, 42);
            assert!(s.commits >= 3 * 30, "{}", stm.name());
        }
    }

    #[test]
    fn counter_counts_on_every_stm() {
        for stm in tm_stm::all_stms(1) {
            stm.recorder().set_enabled(false);
            let s = counter(stm.as_ref(), 3, 25);
            assert_eq!(s.commits, (3 * 25), "{}", stm.name());
            assert!(s.abort_rate() < 1.0);
        }
    }

    #[test]
    fn read_mostly_completes() {
        for stm in tm_stm::all_stms(16) {
            stm.recorder().set_enabled(false);
            let s = read_mostly(stm.as_ref(), 2, 40, 5, 10, 7);
            assert!(s.commits >= 80, "{}", stm.name());
        }
    }

    #[test]
    fn commit_storm_commits_every_attempt_on_disjoint_registers() {
        // The clock-bench workload: zero aborts by construction, on every
        // clocked TM × scheme (and on the clockless TMs for good measure).
        let reg = tm_stm::TmRegistry::suite();
        for spec in [
            "tl2",
            "tl2+sharded:4",
            "tl2+deferred",
            "mvstm+sharded:4",
            "dstm",
        ] {
            let stm = reg.build(spec, 4).expect("valid spec");
            stm.recorder().set_enabled(false);
            let s = commit_storm(stm.as_ref(), 4, 50);
            assert_eq!(s.commits, 200, "{spec}");
            assert_eq!(s.aborts, 0, "{spec}: disjoint writes must not conflict");
        }
    }

    #[test]
    fn typed_storm_invariants_hold_on_every_stm_and_kind() {
        let threads = 3;
        let ops = 12;
        let reg = tm_stm::TmRegistry::suite();
        for kind in ObjectKind::ALL {
            for stm in tm_stm::all_stms(1) {
                let name = stm.name();
                drop(stm);
                let typed = TypedStm::new(
                    kind.standard_space(threads * ops),
                    reg.factory(name).expect("suite TM name"),
                );
                typed.stm().recorder().set_enabled(false);
                let s = typed_storm(&typed, kind, threads, ops);
                assert!(
                    s.commits >= (threads * ops) as u64,
                    "{name}/{kind}: {} commits",
                    s.commits
                );
            }
        }
    }

    #[test]
    fn abort_rate_math() {
        let s = WorkloadStats {
            commits: 75,
            aborts: 25,
        };
        assert!((s.abort_rate() - 0.25).abs() < 1e-9);
        assert_eq!(WorkloadStats::default().abort_rate(), 0.0);
    }
}
