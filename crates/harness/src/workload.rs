//! Multi-threaded workloads over real OS threads.
//!
//! Where the scheduler in [`crate::sched`] gives determinism, these
//! workloads give *realism*: genuinely concurrent threads hammering a TM,
//! with semantic invariants checked at the end. Used by the throughput
//! benchmark (E14) and the threaded opacity-validation tests (E11).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tm_stm::{run_tx, Stm};

/// Aggregated results of a workload run.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkloadStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transaction attempts.
    pub aborts: u64,
}

impl WorkloadStats {
    /// Abort ratio `aborts / (commits + aborts)`.
    pub fn abort_rate(&self) -> f64 {
        let total = self.commits + self.aborts;
        if total == 0 {
            0.0
        } else {
            self.aborts as f64 / total as f64
        }
    }
}

/// The bank workload: `accounts` registers, initial balance `initial` each;
/// every thread performs `transfers` random transfers (read two accounts,
/// move a random amount).
///
/// Invariant: the total balance is conserved — checked on return.
///
/// # Panics
/// Panics if the conservation invariant is violated (a serializability bug
/// in the TM under test).
pub fn bank(
    stm: &dyn Stm,
    threads: usize,
    accounts: usize,
    transfers: usize,
    seed: u64,
) -> WorkloadStats {
    assert!(stm.k() >= accounts && accounts >= 2);
    let initial = 100i64;
    // Fund the accounts.
    run_tx(stm, 0, |tx| {
        for a in 0..accounts {
            tx.write(a, initial)?;
        }
        Ok(())
    });

    let stats = std::sync::Mutex::new(WorkloadStats::default());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let stats = &stats;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                let mut local = WorkloadStats::default();
                for _ in 0..transfers {
                    let from = rng.gen_range(0..accounts);
                    let mut to = rng.gen_range(0..accounts);
                    if to == from {
                        to = (to + 1) % accounts;
                    }
                    let amount: i64 = rng.gen_range(1..=10);
                    let (_, rs) = run_tx(stm, t, |tx| {
                        let a = tx.read(from)?;
                        let b = tx.read(to)?;
                        tx.write(from, a - amount)?;
                        tx.write(to, b + amount)
                    });
                    local.commits += rs.commits;
                    local.aborts += rs.aborts;
                }
                let mut s = stats.lock().unwrap();
                s.commits += local.commits;
                s.aborts += local.aborts;
            });
        }
    });

    // Conservation check.
    let (total, _) = run_tx(stm, 0, |tx| {
        let mut sum = 0;
        for a in 0..accounts {
            sum += tx.read(a)?;
        }
        Ok(sum)
    });
    assert_eq!(
        total,
        initial * accounts as i64,
        "{}: bank conservation violated",
        stm.name()
    );
    stats.into_inner().unwrap()
}

/// The counter workload: every thread increments register 0 `increments`
/// times (read + write — the read/write encoding of Section 3.4, where at
/// most one of any set of concurrent increments can commit per round).
///
/// Invariant: the final value equals `threads × increments` — checked on
/// return.
pub fn counter(stm: &dyn Stm, threads: usize, increments: usize) -> WorkloadStats {
    let stats = std::sync::Mutex::new(WorkloadStats::default());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let stats = &stats;
            scope.spawn(move || {
                let mut local = WorkloadStats::default();
                for _ in 0..increments {
                    let (_, rs) = run_tx(stm, t, |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    });
                    local.commits += rs.commits;
                    local.aborts += rs.aborts;
                }
                let mut s = stats.lock().unwrap();
                s.commits += local.commits;
                s.aborts += local.aborts;
            });
        }
    });
    let (v, _) = run_tx(stm, 0, |tx| tx.read(0));
    assert_eq!(
        v,
        (threads * increments) as i64,
        "{}: lost updates detected",
        stm.name()
    );
    stats.into_inner().unwrap()
}

/// A read-dominated workload: each thread performs `txs` transactions; a
/// fraction `write_pct`/100 of them write one register, the rest read
/// `reads_per_tx` random registers.
pub fn read_mostly(
    stm: &dyn Stm,
    threads: usize,
    txs: usize,
    reads_per_tx: usize,
    write_pct: u32,
    seed: u64,
) -> WorkloadStats {
    let k = stm.k();
    let stats = std::sync::Mutex::new(WorkloadStats::default());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let stats = &stats;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0xDEAD_BEEF));
                let mut local = WorkloadStats::default();
                for i in 0..txs {
                    let (_, rs) = if rng.gen_ratio(write_pct, 100) {
                        let obj = rng.gen_range(0..k);
                        let v = (t * txs + i) as i64;
                        run_tx(stm, t, |tx| tx.write(obj, v))
                    } else {
                        let objs: Vec<usize> =
                            (0..reads_per_tx).map(|_| rng.gen_range(0..k)).collect();
                        run_tx(stm, t, |tx| {
                            for &o in &objs {
                                tx.read(o)?;
                            }
                            Ok(())
                        })
                    };
                    local.commits += rs.commits;
                    local.aborts += rs.aborts;
                }
                let mut s = stats.lock().unwrap();
                s.commits += local.commits;
                s.aborts += local.aborts;
            });
        }
    });
    stats.into_inner().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_conserves_money_on_every_stm() {
        for stm in tm_stm::all_stms(8) {
            stm.recorder().set_enabled(false);
            let s = bank(stm.as_ref(), 3, 8, 30, 42);
            assert!(s.commits >= 3 * 30, "{}", stm.name());
        }
    }

    #[test]
    fn counter_counts_on_every_stm() {
        for stm in tm_stm::all_stms(1) {
            stm.recorder().set_enabled(false);
            let s = counter(stm.as_ref(), 3, 25);
            assert_eq!(s.commits, (3 * 25), "{}", stm.name());
            assert!(s.abort_rate() < 1.0);
        }
    }

    #[test]
    fn read_mostly_completes() {
        for stm in tm_stm::all_stms(16) {
            stm.recorder().set_enabled(false);
            let s = read_mostly(stm.as_ref(), 2, 40, 5, 10, 7);
            assert!(s.commits >= 80, "{}", stm.name());
        }
    }

    #[test]
    fn abort_rate_math() {
        let s = WorkloadStats {
            commits: 75,
            aborts: 25,
        };
        assert!((s.abort_rate() - 0.25).abs() < 1e-9);
        assert_eq!(WorkloadStats::default().abort_rate(), 0.0);
    }
}
