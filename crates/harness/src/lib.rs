//! # tm-harness — experiment substrate
//!
//! Everything needed to turn the `tm-stm` implementations and the
//! `tm-opacity` checkers into reproducible experiments:
//!
//! * [`script`] / [`sched`] — scripted transactions under deterministic,
//!   exhaustively enumerable interleavings (a miniature schedule explorer);
//! * [`objconformance`] — the typed-object conformance battery: rich
//!   probes (write-skew sets, producer/consumer queues, commutative
//!   counter storms) swept against any TM through `tm_stm::objects`;
//! * [`parallel`] — a dependency-free scoped-thread worker pool with
//!   deterministic index-order merging, powering the parallel checking
//!   pipeline ([`conformance_parallel`], [`cross_validate`],
//!   [`object_conformance`]);
//! * [`randhist`] — random well-formed register histories for the Theorem-2
//!   cross-validation;
//! * [`workload`] — real-thread workloads (bank, counter, read-mostly, and
//!   the per-object-kind typed storms) with semantic invariant checks;
//! * [`complexity`] — the Theorem-3 step-count experiments (E8/E9);
//! * [`dpor`] / [`race`] — step-granular exploration of the *real* TM
//!   implementations: a cooperative stepper yields at every instrumented
//!   base-object access, a sleep-set DFS enumerates interleavings up to
//!   commutation, and a vector-clock checker convicts clock-discipline
//!   violations with replayable schedules;
//! * [`stats`] — tables and ASCII charts for experiment output.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod complexity;
pub mod conformance;
pub mod dpor;
pub mod objconformance;
pub mod parallel;
pub mod race;
pub mod randhist;
pub mod sched;
pub mod script;
pub mod stats;
pub mod workload;

pub use complexity::{fraction_scenario, paper_scenario, solo_scan, sweep, ComplexityRow};
pub use conformance::{
    check_conformance, conformance_parallel, conformance_parallel_with,
    header as conformance_header, ConformanceReport,
};
pub use dpor::{
    committed_serializable, explore, probed_config, replay_schedule, Conviction, ConvictionKind,
    DporConfig, ExploreResult, LiveRun, RunResult, SharedStm, Step, StepTxOutcome, StmFactory,
};
pub use objconformance::{
    execute_objects, execute_objects_serially, object_conformance, object_conformance_with,
    object_header, ObjExecOutcome, ObjOp, ObjProgram, ObjScript, ObjTxOutcome,
    ObjectConformanceReport, ObjectKind, ObjectProbeReport,
};
pub use parallel::{default_jobs, parallel_map};
pub use race::{check as check_race_trace, RaceViolation};
pub use randhist::{batch, cross_validate, random_history, CrossValReport, GenConfig};
pub use sched::{
    all_schedules, all_schedules_reduced, complete_schedule, execute, inversions, random_schedule,
    shrink_schedule, ExecOutcome, Schedule, TxOutcome,
};
pub use script::{Program, ScriptOp, TxScript};
pub use stats::{ascii_chart, Table};
pub use workload::{bank, counter, read_mostly, typed_storm, WorkloadStats};
