//! Step-level race analysis: convictions, acquittals, and the POR
//! soundness check.
//!
//! The op-level mutation experiment (`tests/mutation_detection.rs`) ends
//! with a blind spot: the two seeded *concurrency* mutants are invisible to
//! any op-granular sweep, because an op-level schedule can never split a
//! clock tick between its load and its CAS. This suite is the other half
//! of that argument:
//!
//! * both concurrency mutants are **convicted** by the step-level explorer,
//!   each with a minimized, replayable schedule artifact;
//! * every real TM is **acquitted** on the same probes within the same
//!   budget — and `sistm`'s *documented* write skew is found (a true
//!   positive on a real TM, not a false alarm);
//! * the sleep-set reduction explores strictly fewer interleavings than
//!   naive enumeration while observing the **identical outcome set**, for
//!   every non-blocking TM — checked on fixed programs and on
//!   property-tested random tiny programs.

use std::sync::Arc;

use proptest::prelude::*;
use tm_harness::dpor::{
    explore, probed_config, replay_schedule, ConvictionKind, DporConfig, SharedStm,
};
use tm_harness::race::RaceViolation;
use tm_harness::{shrink_schedule, Program, TxScript};
use tm_stm::trace_cells::StepProbe;
use tm_stm::{
    AstmStm, ClockScheme, DstmStm, MutantStm, Mutation, MvStm, NonOpaqueStm, SiStm, Tl2Stm, TplStm,
    VisibleStm,
};

type Factory = Box<dyn Fn(Option<Arc<dyn StepProbe>>) -> SharedStm + Sync>;

/// Every non-blocking real TM, plus the TL2 clock variants that matter for
/// the clock-discipline checks. `glock` is excluded: it is blocking (a
/// worker would sit inside the global mutex across steps), and a global
/// lock admits no step-level interleaving to analyse in the first place.
fn real_tms(k: usize) -> Vec<(&'static str, Factory)> {
    vec![
        (
            "tl2",
            Box::new(move |p| Arc::new(Tl2Stm::with_config(&probed_config(k, p))) as SharedStm),
        ),
        (
            "tl2+sharded",
            Box::new(move |p| {
                Arc::new(Tl2Stm::with_config(
                    &probed_config(k, p).clock(ClockScheme::Sharded(2)),
                )) as SharedStm
            }),
        ),
        (
            "tl2+deferred",
            Box::new(move |p| {
                Arc::new(Tl2Stm::with_config(
                    &probed_config(k, p).clock(ClockScheme::Deferred),
                )) as SharedStm
            }),
        ),
        (
            "mvstm",
            Box::new(move |p| Arc::new(MvStm::with_config(&probed_config(k, p))) as SharedStm),
        ),
        (
            "sistm",
            Box::new(move |p| Arc::new(SiStm::with_config(&probed_config(k, p))) as SharedStm),
        ),
        (
            "dstm",
            Box::new(move |p| Arc::new(DstmStm::with_config(&probed_config(k, p))) as SharedStm),
        ),
        (
            "visible",
            Box::new(move |p| Arc::new(VisibleStm::with_config(&probed_config(k, p))) as SharedStm),
        ),
        (
            "tpl",
            Box::new(move |p| Arc::new(TplStm::with_config(&probed_config(k, p))) as SharedStm),
        ),
        (
            "astm",
            Box::new(move |p| Arc::new(AstmStm::with_config(&probed_config(k, p))) as SharedStm),
        ),
        (
            "nonopaque",
            Box::new(move |p| {
                Arc::new(NonOpaqueStm::with_config(&probed_config(k, p))) as SharedStm
            }),
        ),
        (
            "mutant-none",
            Box::new(move |p| {
                Arc::new(MutantStm::with_config(&probed_config(k, p), Mutation::None)) as SharedStm
            }),
        ),
    ]
}

fn mutant_factory(k: usize, mutation: Mutation) -> Factory {
    Box::new(move |p| Arc::new(MutantStm::with_config(&probed_config(k, p), mutation)) as SharedStm)
}

/// The §2 hazard shape at step granularity.
fn reader_vs_writer() -> Program {
    Program::new(vec![
        TxScript::new().read(0).read(1),
        TxScript::new().write(0, 7).write(1, 7),
    ])
}

/// Two read-modify-writes on one register.
fn rmw_vs_rmw() -> Program {
    Program::new(vec![
        TxScript::new().read(0).write(0, 100),
        TxScript::new().read(0).write(0, 200),
    ])
}

// ---------------------------------------------------------------------------
// Convictions
// ---------------------------------------------------------------------------

#[test]
fn dropped_residue_is_convicted_with_a_minimized_replayable_schedule() {
    // Two blind writers on disjoint registers: the only interaction is the
    // clock tick itself, which the broken clock cannot keep collision-free
    // once the tick is split between its load and its CAS.
    let program = Program::new(vec![
        TxScript::new().write(0, 1),
        TxScript::new().write(1, 2),
    ]);
    let factory = mutant_factory(2, Mutation::DroppedResidue);
    let res = explore(
        &factory,
        &program,
        &DporConfig {
            preemption_bound: Some(2),
            stop_on_violation: true,
            ..DporConfig::default()
        },
    );
    let conviction = res
        .violations
        .iter()
        .find(|c| {
            matches!(
                c.kind,
                ConvictionKind::Race(RaceViolation::DuplicateStamp { .. })
            )
        })
        .expect("the residue-dropping clock must duplicate a stamp");

    // The schedule is a replayable artifact: re-running it on a fresh TM
    // reproduces the duplicate stamp deterministically.
    let convicts = |sched: &[usize]| {
        let replayed = replay_schedule(&factory, &program, sched);
        tm_harness::race::check(&replayed.trace, program.threads.len())
            .iter()
            .any(|v| matches!(v, RaceViolation::DuplicateStamp { .. }))
    };
    assert!(convicts(&conviction.schedule), "conviction must replay");

    // Minimize it: greedy adjacent de-inversion keeps only the essential
    // race (the two ticks interleaved load/load/CAS/CAS).
    let minimized = shrink_schedule(&conviction.schedule, convicts);
    assert!(
        convicts(&minimized),
        "minimized schedule must still convict"
    );
    assert!(
        tm_harness::inversions(&minimized) <= tm_harness::inversions(&conviction.schedule),
        "shrinking must not add disorder"
    );

    // And the fix is exactly the residue: the same schedule on the real
    // deferred clock is clean.
    let fixed = real_tms(2)
        .into_iter()
        .find(|(name, _)| *name == "tl2+deferred")
        .expect("battery contains tl2+deferred")
        .1;
    let replayed = replay_schedule(&fixed, &program, &minimized);
    assert_eq!(
        tm_harness::race::check(&replayed.trace, 2),
        vec![],
        "thread residues keep adopter stamps distinct"
    );
}

#[test]
fn unlicensed_fast_path_is_convicted_of_write_skew() {
    // Two transactions with crossing read/write sets plus one blind
    // count-mover. Both crossers adopt the mover's tick (their tick-loads
    // read the old count, their CASes fail), see "the clock advanced
    // exactly once", skip read validation — and miss each other's write
    // locks. Both commit: a write skew no serial order explains.
    let program = Program::new(vec![
        TxScript::new().read(0).write(1, 5),
        TxScript::new().read(1).write(0, 7),
        TxScript::new().write(2, 1),
    ]);
    let factory = mutant_factory(3, Mutation::UnlicensedFastPath);
    let res = explore(
        &factory,
        &program,
        &DporConfig {
            max_interleavings: 200_000,
            preemption_bound: Some(3),
            check_races: false, // the real deferred clock is innocent here
            stop_on_violation: true,
            ..DporConfig::default()
        },
    );
    let conviction = res
        .violations
        .iter()
        .find(|c| matches!(c.kind, ConvictionKind::NonSerializableOutcome))
        .expect("the unlicensed fast path must commit a write skew");

    // Replay the witness and inspect it: both crossing transactions
    // committed having read the *old* value of the other's write target.
    let convicts = |sched: &[usize]| {
        let r = replay_schedule(&factory, &program, sched);
        !tm_harness::dpor::committed_serializable(&factory, &program, &r.outcomes, &r.final_state)
    };
    assert!(convicts(&conviction.schedule), "conviction must replay");
    let witness = replay_schedule(&factory, &program, &conviction.schedule);
    assert!(witness.outcomes[0].committed && witness.outcomes[1].committed);
    assert_eq!(witness.outcomes[0].reads, vec![0], "skew: read pre-state");
    assert_eq!(witness.outcomes[1].reads, vec![0], "skew: read pre-state");

    let minimized = shrink_schedule(&conviction.schedule, convicts);
    assert!(
        convicts(&minimized),
        "minimized schedule must still convict"
    );

    // The licensed protocol (same clock, same schedule) refuses the skew:
    // at least one crosser validates, sees the other's lock or version,
    // and aborts.
    let baseline = mutant_factory(3, Mutation::None);
    let replayed = replay_schedule(&baseline, &program, &minimized);
    assert!(
        tm_harness::dpor::committed_serializable(
            &baseline,
            &program,
            &replayed.outcomes,
            &replayed.final_state
        ),
        "the licensed protocol stays serializable on the convicting schedule"
    );
}

// ---------------------------------------------------------------------------
// Acquittals
// ---------------------------------------------------------------------------

#[test]
fn every_real_tm_is_acquitted_on_the_probe_programs() {
    // The same budget that convicts the mutants finds nothing to flag on
    // any real TM: no clock-discipline violation, no non-serializable
    // committed outcome. (`sistm` is acquitted here because neither probe
    // has the write-skew shape; see the dedicated test below.)
    for (name, factory) in real_tms(2) {
        for (pname, program) in [
            ("reader-vs-writer", reader_vs_writer()),
            ("rmw-vs-rmw", rmw_vs_rmw()),
        ] {
            let res = explore(
                &factory,
                &program,
                &DporConfig {
                    max_interleavings: 1_500,
                    preemption_bound: Some(2),
                    ..DporConfig::default()
                },
            );
            assert!(res.interleavings > 0, "{name}/{pname}: nothing explored");
            assert!(
                res.violations.is_empty(),
                "{name}/{pname}: false conviction: {}",
                res.violations
                    .iter()
                    .map(|c| c.kind.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
    }
}

#[test]
fn snapshot_isolation_write_skew_is_a_true_positive() {
    // `sistm` documents its own anomaly: snapshot reads plus write-set-only
    // validation commit write skew. The explorer finds exactly that — which
    // is evidence the serializability oracle has teeth on *real* TMs, and
    // that the acquittals above are not vacuous.
    let program = Program::new(vec![
        TxScript::new().read(0).write(1, 5),
        TxScript::new().read(1).write(0, 7),
    ]);
    let factory: Factory =
        Box::new(move |p| Arc::new(SiStm::with_config(&probed_config(2, p))) as SharedStm);
    let res = explore(
        &factory,
        &program,
        &DporConfig {
            preemption_bound: Some(2),
            check_races: false,
            stop_on_violation: true,
            ..DporConfig::default()
        },
    );
    assert!(
        res.violations
            .iter()
            .any(|c| matches!(c.kind, ConvictionKind::NonSerializableOutcome)),
        "snapshot isolation's write skew must be found"
    );
}

// ---------------------------------------------------------------------------
// POR soundness: reduced exploration, identical outcomes
// ---------------------------------------------------------------------------

/// Explores `program` twice — naive and sleep-set — and checks the
/// reduction is sound (same outcomes) and effective (not more work).
fn naive_vs_reduced(name: &str, factory: &Factory, program: &Program) -> (usize, usize) {
    let quiet = DporConfig {
        max_interleavings: 60_000,
        check_races: false,
        check_serializability: false,
        ..DporConfig::default()
    };
    let naive = explore(
        factory,
        program,
        &DporConfig {
            sleep_sets: false,
            ..quiet.clone()
        },
    );
    let reduced = explore(factory, program, &quiet);
    assert!(
        !naive.truncated && !reduced.truncated,
        "{name}: budget too small for {program:?}"
    );
    assert_eq!(
        naive.outcomes, reduced.outcomes,
        "{name}: sleep sets must not lose an outcome on {program:?}"
    );
    assert!(
        reduced.interleavings <= naive.interleavings,
        "{name}: reduction cannot explore more"
    );
    (naive.interleavings, reduced.interleavings)
}

#[test]
fn sleep_sets_are_sound_and_strictly_reducing_on_every_tm() {
    // One-op-per-thread programs keep the naive side enumerable; across
    // them every dependence case (w/w, r/w, disjoint) is exercised.
    let programs = [
        Program::new(vec![
            TxScript::new().write(0, 1),
            TxScript::new().write(0, 2),
        ]),
        Program::new(vec![TxScript::new().read(0), TxScript::new().write(0, 7)]),
        Program::new(vec![
            TxScript::new().write(0, 1),
            TxScript::new().write(1, 2),
        ]),
    ];
    for (name, factory) in real_tms(2) {
        let mut naive_total = 0;
        let mut reduced_total = 0;
        for program in &programs {
            let (n, r) = naive_vs_reduced(name, &factory, program);
            naive_total += n;
            reduced_total += r;
        }
        assert!(
            reduced_total < naive_total,
            "{name}: sleep sets explored {reduced_total} of {naive_total} — no reduction at all"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On random tiny programs and a random TM, the reduced exploration
    /// observes exactly the naive outcome set.
    #[test]
    fn dpor_equals_naive_on_random_tiny_programs(
        tm_idx in 0usize..11,
        a_write in 0u8..2,
        a_obj in 0usize..2,
        b_write in 0u8..2,
        b_obj in 0usize..2,
    ) {
        let mk = |write: u8, obj: usize, v: i64| {
            if write == 1 {
                TxScript::new().write(obj, v)
            } else {
                TxScript::new().read(obj)
            }
        };
        let program = Program::new(vec![mk(a_write, a_obj, 3), mk(b_write, b_obj, 4)]);
        let tms = real_tms(2);
        let (name, factory) = &tms[tm_idx % tms.len()];
        naive_vs_reduced(name, factory, &program);
    }
}
