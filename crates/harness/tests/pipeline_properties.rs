//! Property tests for the resumable checking pipeline.
//!
//! Two contracts are pinned here, each over a large deterministic sample:
//!
//! 1. **The incremental monitor is observationally equivalent to batch
//!    re-checking.** For random well-formed histories, the monitor's verdict
//!    *and* first-violation prefix must equal what running the batch checker
//!    on every prefix reports — i.e. the resumable `SearchCore` (persistent
//!    memo, witness-biased DFS, in-place states) may never change an answer,
//!    only its cost.
//! 2. **The parallel conformance kit is byte-identical to the sequential
//!    one** for every in-tree TM and mutant: sharding the schedule sweep
//!    across worker threads must be invisible in the report.

use tm_harness::randhist::{random_history, GenConfig};
use tm_harness::{conformance_parallel, ConformanceReport};
use tm_model::SpecRegistry;
use tm_opacity::incremental::{MonitorVerdict, OpacityMonitor};
use tm_opacity::opacity::is_opaque;
use tm_stm::{MutantStm, Mutation};

/// Batch reference: index of the first event whose prefix is non-opaque.
fn first_violating_prefix(h: &tm_model::History, specs: &SpecRegistry) -> Option<usize> {
    (0..h.len()).find(|&i| !is_opaque(&h.prefix(i + 1), specs).unwrap().opaque)
}

#[test]
fn incremental_monitor_equals_batch_prefix_checks_on_random_histories() {
    let specs = SpecRegistry::registers();
    let configs = [
        GenConfig::default(),
        GenConfig {
            txs: 6,
            objs: 2,
            max_ops: 5,
            noise: 0.4,
            commit_pending: 0.3,
            abort: 0.2,
        },
        GenConfig {
            txs: 3,
            objs: 1,
            max_ops: 3,
            noise: 0.6,
            commit_pending: 0.0,
            abort: 0.5,
        },
    ];
    let mut violated = 0usize;
    let mut clean = 0usize;
    for (ci, config) in configs.iter().enumerate() {
        for seed in 0..120u64 {
            let h = random_history(config, seed);
            let expected = first_violating_prefix(&h, &specs);
            let mut monitor = OpacityMonitor::new(&specs);
            let got = monitor.feed_all(&h).unwrap();
            assert_eq!(
                got, expected,
                "config {ci} seed {seed}: monitor and batch disagree on {h}"
            );
            match got {
                Some(_) => violated += 1,
                None => clean += 1,
            }
            // The verdict stream must also match per prefix: a violation is
            // only reported at (and sticky after) the first bad prefix.
            let mut monitor = OpacityMonitor::new(&specs);
            for (i, e) in h.events().iter().enumerate() {
                let v = monitor.feed(e.clone()).unwrap();
                match expected {
                    Some(at) if i >= at => {
                        assert_eq!(
                            v,
                            MonitorVerdict::Violated { at },
                            "config {ci} seed {seed}"
                        )
                    }
                    _ => assert_ne!(
                        v,
                        MonitorVerdict::Violated { at: i },
                        "config {ci} seed {seed}: spurious violation at {i} of {h}"
                    ),
                }
            }
        }
    }
    // The sample must actually exercise both outcomes.
    assert!(violated > 20, "only {violated} violating histories sampled");
    assert!(clean > 20, "only {clean} clean histories sampled");
}

/// Masks the one probabilistic probe (real-thread lost updates) so the
/// comparison pins exactly the deterministic pipeline.
fn normalize(mut r: ConformanceReport) -> ConformanceReport {
    r.no_lost_updates = true;
    r.violations.retain(|v| !v.starts_with("counter:"));
    r
}

#[test]
fn conformance_parallel_is_identical_to_sequential_for_all_tms_and_mutants() {
    // The nine in-tree TMs…
    let names: Vec<&'static str> = tm_stm::all_stms(2).iter().map(|s| s.name()).collect();
    assert_eq!(names.len(), 9);
    for name in names {
        let factory = move |k: usize| -> Box<dyn tm_stm::Stm> {
            tm_stm::all_stms(k)
                .into_iter()
                .find(|s| s.name() == name)
                .expect("name stable")
        };
        let sequential = normalize(conformance_parallel(&factory, 1));
        let parallel = normalize(conformance_parallel(&factory, 4));
        assert_eq!(sequential, parallel, "{name}: jobs=4 diverged");
        assert_eq!(sequential.row(), parallel.row(), "{name}: rendered row");
    }
    // …and the three mutants.
    for mutation in [
        Mutation::None,
        Mutation::SkipReadValidation,
        Mutation::SkipCommitValidation,
    ] {
        let factory =
            move |k: usize| -> Box<dyn tm_stm::Stm> { Box::new(MutantStm::new(k, mutation)) };
        let sequential = normalize(conformance_parallel(&factory, 1));
        let parallel = normalize(conformance_parallel(&factory, 4));
        assert_eq!(sequential, parallel, "{mutation:?}: jobs=4 diverged");
    }
}
