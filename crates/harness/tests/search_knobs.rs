//! The conformance batteries are invariant under the serialization
//! search's performance knobs: parallel workers (`search_jobs`), the
//! bounded dead-end memo (`memo_capacity`), and the depth-adaptive
//! splitting discipline (`split_depth`/`split_granularity`) may change how
//! fast a history is judged, never what the judgment is — pinned here for
//! the full register battery and the typed-object battery.

use tm_harness::{
    conformance_parallel, conformance_parallel_with, object_conformance, object_conformance_with,
    ConformanceReport, ObjectKind,
};
use tm_model::SpecRegistry;
use tm_opacity::{CheckSession, SearchConfig, SearchMode};
use tm_stm::{MutantStm, Mutation, TmRegistry};

/// Masks the one probabilistic component (real-thread lost-update probe)
/// so comparisons pin exactly the deterministic sweep.
fn normalize(mut r: ConformanceReport) -> ConformanceReport {
    r.no_lost_updates = true;
    r.violations.retain(|v| !v.starts_with("counter:"));
    r
}

#[test]
fn register_battery_is_invariant_under_parallel_search() {
    // A clean TM and a convicted mutant: both the passing rows and the
    // violation lists (content and order) must survive intra-history
    // parallelism.
    let reg = TmRegistry::suite();
    for tm in ["tl2", "sistm"] {
        let factory = reg.factory(tm).expect("suite TM");
        let baseline = normalize(conformance_parallel(&factory, 1));
        for jobs in [2usize, 4, 8] {
            let search = SearchConfig {
                search_jobs: jobs,
                ..SearchConfig::default()
            };
            let parallel = normalize(conformance_parallel_with(&factory, 2, search));
            assert_eq!(baseline, parallel, "{tm} under search_jobs={jobs}");
        }
    }
}

#[test]
fn register_battery_is_invariant_under_split_knobs() {
    // The splitting discipline — disabled, maximally eager, coarse — may
    // redistribute subtrees across workers but never change a row of the
    // battery, clean TM and convicted mutant alike.
    type Factory<'a> = &'a (dyn Fn(usize) -> Box<dyn tm_stm::Stm> + Sync);
    let tl2 = TmRegistry::suite().factory("tl2").expect("suite TM");
    let mutant = |k: usize| -> Box<dyn tm_stm::Stm> {
        Box::new(MutantStm::new(k, Mutation::SkipReadValidation))
    };
    let factories: [(&str, Factory); 2] = [("tl2", &tl2), ("mutant", &mutant)];
    for (name, factory) in factories {
        let baseline = normalize(conformance_parallel(factory, 1));
        for (split_depth, split_granularity) in [(0usize, 1usize), (1, 1), (4, 2), (64, 3)] {
            let search = SearchConfig {
                search_jobs: 4,
                split_depth,
                split_granularity,
                ..SearchConfig::default()
            };
            let split = normalize(conformance_parallel_with(factory, 2, search));
            assert_eq!(
                baseline, split,
                "{name} under split_depth={split_depth} split_granularity={split_granularity}"
            );
        }
    }
}

#[test]
fn register_battery_is_invariant_under_tiny_memo_capacity() {
    // Eviction soundness: with an 8-entry table every verdict — including
    // the mutant's convictions — is unchanged.
    let search = SearchConfig {
        memo_capacity: Some(8),
        ..SearchConfig::default()
    };
    let reg = TmRegistry::suite();
    for tm in ["tl2", "nonopaque"] {
        let factory = reg.factory(tm).expect("suite TM");
        let baseline = normalize(conformance_parallel(&factory, 1));
        let bounded = normalize(conformance_parallel_with(&factory, 1, search));
        assert_eq!(baseline, bounded, "{tm} under memo_capacity=8");
    }
    let mutant = |k: usize| -> Box<dyn tm_stm::Stm> {
        Box::new(MutantStm::new(k, Mutation::SkipReadValidation))
    };
    let baseline = normalize(conformance_parallel(&mutant, 1));
    assert!(!baseline.opaque, "the mutant must be convicted");
    let bounded = normalize(conformance_parallel_with(&mutant, 1, search));
    assert_eq!(baseline, bounded, "mutant conviction under memo_capacity=8");
}

#[test]
fn typed_object_battery_is_invariant_under_search_knobs() {
    // The rich-semantics battery (incl. SI-STM's object-level write-skew
    // conviction) under combined parallel + bounded search.
    let reg = TmRegistry::suite();
    let kinds = [ObjectKind::Set, ObjectKind::Counter, ObjectKind::Queue];
    for tm in ["tl2", "sistm"] {
        let factory = reg.factory(tm).expect("suite TM");
        let baseline = object_conformance(&factory, &kinds, 1);
        for (jobs, cap) in [(4usize, None), (1, Some(8)), (2, Some(16))] {
            let search = SearchConfig {
                search_jobs: jobs,
                memo_capacity: cap,
                ..SearchConfig::default()
            };
            let knobs = object_conformance_with(&factory, &kinds, 2, search);
            assert_eq!(
                baseline, knobs,
                "{tm} typed battery under search_jobs={jobs} memo_cap={cap:?}"
            );
        }
    }
}

#[test]
fn session_eviction_counter_is_reported_and_monotone() {
    // SearchStats.evictions: zero while unbounded, positive once the cap
    // binds, and the session's lifetime counter never decreases.
    let specs = SpecRegistry::registers();
    let h = tm_harness::random_history(
        &tm_harness::GenConfig {
            txs: 7,
            objs: 2,
            max_ops: 5,
            noise: 0.3,
            commit_pending: 0.2,
            abort: 0.2,
        },
        42,
    );
    let mut unbounded = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
    let mut bounded = CheckSession::new(
        &specs,
        SearchMode::OPACITY,
        SearchConfig {
            memo_capacity: Some(4),
            ..SearchConfig::default()
        },
    );
    let mut last = 0usize;
    for e in h.events() {
        unbounded.extend(e).unwrap();
        bounded.extend(e).unwrap();
        let u = unbounded.check().unwrap();
        let b = bounded.check().unwrap();
        assert_eq!(u.holds(), b.holds(), "verdicts diverge at {e}");
        assert_eq!(u.stats.evictions, 0, "unbounded session must not evict");
        let lifetime = bounded.lifetime_stats().evictions;
        assert!(lifetime >= last, "lifetime evictions must be monotone");
        assert_eq!(
            lifetime,
            bounded.memo_evictions(),
            "stats and accessor must agree"
        );
        last = lifetime;
    }
}

#[test]
fn session_split_counters_are_monotone_and_consistent() {
    // SearchStats.splits / donated_tasks: a split-disabled parallel session
    // reports zero forever; an aggressive-splitting session's lifetime
    // counters never decrease and every split donates at least one task.
    let specs = SpecRegistry::registers();
    let h = tm_harness::random_history(
        &tm_harness::GenConfig {
            txs: 7,
            objs: 2,
            max_ops: 5,
            noise: 0.3,
            commit_pending: 0.2,
            abort: 0.2,
        },
        42,
    );
    let mut disabled = CheckSession::new(
        &specs,
        SearchMode::OPACITY,
        SearchConfig {
            search_jobs: 4,
            split_depth: 0,
            ..SearchConfig::default()
        },
    );
    let mut splitting = CheckSession::new(
        &specs,
        SearchMode::OPACITY,
        SearchConfig {
            search_jobs: 4,
            split_depth: 2,
            split_granularity: 1,
            ..SearchConfig::default()
        },
    );
    let (mut last_splits, mut last_donated) = (0usize, 0usize);
    for e in h.events() {
        disabled.extend(e).unwrap();
        splitting.extend(e).unwrap();
        let d = disabled.check().unwrap();
        let s = splitting.check().unwrap();
        assert_eq!(d.holds(), s.holds(), "verdicts diverge at {e}");
        assert_eq!(d.stats.splits, 0, "split_depth=0 must never split");
        assert_eq!(d.stats.donated_tasks, 0, "split_depth=0 must never donate");
        assert!(
            s.stats.donated_tasks >= s.stats.splits,
            "every split donates at least one task: {:?}",
            s.stats
        );
        let life = splitting.lifetime_stats();
        assert!(
            life.splits >= last_splits,
            "lifetime splits must be monotone"
        );
        assert!(
            life.donated_tasks >= last_donated,
            "lifetime donated_tasks must be monotone"
        );
        last_splits = life.splits;
        last_donated = life.donated_tasks;
    }
}
