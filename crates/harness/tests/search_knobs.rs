//! The conformance batteries are invariant under the serialization
//! search's performance knobs: parallel workers (`search_jobs`) and the
//! bounded dead-end memo (`memo_capacity`) may change how fast a history
//! is judged, never what the judgment is — pinned here for the full
//! register battery and the typed-object battery.

use tm_harness::{
    conformance_parallel, conformance_parallel_with, object_conformance, object_conformance_with,
    ConformanceReport, ObjectKind,
};
use tm_model::SpecRegistry;
use tm_opacity::{CheckSession, SearchConfig, SearchMode};
use tm_stm::{MutantStm, Mutation, TmRegistry};

/// Masks the one probabilistic component (real-thread lost-update probe)
/// so comparisons pin exactly the deterministic sweep.
fn normalize(mut r: ConformanceReport) -> ConformanceReport {
    r.no_lost_updates = true;
    r.violations.retain(|v| !v.starts_with("counter:"));
    r
}

#[test]
fn register_battery_is_invariant_under_parallel_search() {
    // A clean TM and a convicted mutant: both the passing rows and the
    // violation lists (content and order) must survive intra-history
    // parallelism.
    let reg = TmRegistry::suite();
    for tm in ["tl2", "sistm"] {
        let factory = reg.factory(tm).expect("suite TM");
        let baseline = normalize(conformance_parallel(&factory, 1));
        for jobs in [2usize, 4, 8] {
            let search = SearchConfig {
                search_jobs: jobs,
                ..SearchConfig::default()
            };
            let parallel = normalize(conformance_parallel_with(&factory, 2, search));
            assert_eq!(baseline, parallel, "{tm} under search_jobs={jobs}");
        }
    }
}

#[test]
fn register_battery_is_invariant_under_tiny_memo_capacity() {
    // Eviction soundness: with an 8-entry table every verdict — including
    // the mutant's convictions — is unchanged.
    let search = SearchConfig {
        memo_capacity: Some(8),
        ..SearchConfig::default()
    };
    let reg = TmRegistry::suite();
    for tm in ["tl2", "nonopaque"] {
        let factory = reg.factory(tm).expect("suite TM");
        let baseline = normalize(conformance_parallel(&factory, 1));
        let bounded = normalize(conformance_parallel_with(&factory, 1, search));
        assert_eq!(baseline, bounded, "{tm} under memo_capacity=8");
    }
    let mutant = |k: usize| -> Box<dyn tm_stm::Stm> {
        Box::new(MutantStm::new(k, Mutation::SkipReadValidation))
    };
    let baseline = normalize(conformance_parallel(&mutant, 1));
    assert!(!baseline.opaque, "the mutant must be convicted");
    let bounded = normalize(conformance_parallel_with(&mutant, 1, search));
    assert_eq!(baseline, bounded, "mutant conviction under memo_capacity=8");
}

#[test]
fn typed_object_battery_is_invariant_under_search_knobs() {
    // The rich-semantics battery (incl. SI-STM's object-level write-skew
    // conviction) under combined parallel + bounded search.
    let reg = TmRegistry::suite();
    let kinds = [ObjectKind::Set, ObjectKind::Counter, ObjectKind::Queue];
    for tm in ["tl2", "sistm"] {
        let factory = reg.factory(tm).expect("suite TM");
        let baseline = object_conformance(&factory, &kinds, 1);
        for (jobs, cap) in [(4usize, None), (1, Some(8)), (2, Some(16))] {
            let search = SearchConfig {
                search_jobs: jobs,
                memo_capacity: cap,
                ..SearchConfig::default()
            };
            let knobs = object_conformance_with(&factory, &kinds, 2, search);
            assert_eq!(
                baseline, knobs,
                "{tm} typed battery under search_jobs={jobs} memo_cap={cap:?}"
            );
        }
    }
}

#[test]
fn session_eviction_counter_is_reported_and_monotone() {
    // SearchStats.evictions: zero while unbounded, positive once the cap
    // binds, and the session's lifetime counter never decreases.
    let specs = SpecRegistry::registers();
    let h = tm_harness::random_history(
        &tm_harness::GenConfig {
            txs: 7,
            objs: 2,
            max_ops: 5,
            noise: 0.3,
            commit_pending: 0.2,
            abort: 0.2,
        },
        42,
    );
    let mut unbounded = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
    let mut bounded = CheckSession::new(
        &specs,
        SearchMode::OPACITY,
        SearchConfig {
            memo_capacity: Some(4),
            ..SearchConfig::default()
        },
    );
    let mut last = 0usize;
    for e in h.events() {
        unbounded.extend(e).unwrap();
        bounded.extend(e).unwrap();
        let u = unbounded.check().unwrap();
        let b = bounded.check().unwrap();
        assert_eq!(u.holds(), b.holds(), "verdicts diverge at {e}");
        assert_eq!(u.stats.evictions, 0, "unbounded session must not evict");
        let lifetime = bounded.lifetime_stats().evictions;
        assert!(lifetime >= last, "lifetime evictions must be monotone");
        assert_eq!(
            lifetime,
            bounded.memo_evictions(),
            "stats and accessor must agree"
        );
        last = lifetime;
    }
}
